//! Fig. 8 — test accuracy with a fraction `p` of subgroups contributing
//! per round (N = 20, n = 5, p ∈ {0.5, 1}).
//!
//! Paper claim to reproduce (shape): p = 0.5 loses only a couple of
//! accuracy points versus p = 1 (paper: mean gap 2.18% over the three
//! distributions), so slow subgroups can be timed out safely.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig08_fraction -- --rounds 1000`.

use p2pfl::experiment::{final_accuracy, fraction_sweep, SweepSpec};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_ml::data::Partition;
use p2pfl_ml::metrics::MovingAverage;

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("rounds", 200);
    let seed = args.get_u64("seed", 42);
    let window = args.get_usize("window", 20);

    banner(
        "Fig. 8: test accuracy vs subgroup fraction p (N = 20, n = 5)",
        "p = 0.5 costs ~2% accuracy vs p = 1 (paper: average gap 2.18%)",
    );
    let spec = SweepSpec {
        n_total: 20,
        rounds,
        seed,
        ..SweepSpec::default()
    };
    let partitions = [Partition::Iid, Partition::NON_IID_5, Partition::NON_IID_0];
    let series = fraction_sweep(&spec, 5, &[0.5, 1.0], &partitions);

    let mut rows = Vec::new();
    for s in &series {
        let smooth = MovingAverage::smooth(
            window,
            &s.records
                .iter()
                .map(|r| r.test_accuracy)
                .collect::<Vec<_>>(),
        );
        for (r, acc) in s.records.iter().zip(&smooth) {
            rows.push(format!("{},{},{:.4}", s.label, r.round, acc));
        }
    }
    print_csv("series,round,test_accuracy_ma", rows);

    println!("\n# final smoothed accuracy and p=1 vs p=0.5 gaps:");
    let mut gaps = Vec::new();
    for pair in series.chunks(2) {
        let half = final_accuracy(&pair[0]);
        let full = final_accuracy(&pair[1]);
        gaps.push(full - half);
        println!(
            "#   {:<22} p=0.5: {half:.4}  p=1: {full:.4}  gap: {:+.4}",
            pair[1].label,
            full - half
        );
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!(
        "#   mean gap over distributions: {:.2}% (paper: 2.18%)",
        mean_gap * 100.0
    );
}
