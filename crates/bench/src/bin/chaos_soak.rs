//! Chaos soak — randomized fault plans driven through full two-layer
//! rounds (election → SAC → FedAvg), cycling the four crash cases of the
//! paper's Sec. V and asserting each is hit *and recovered* at least once:
//!
//! * C1 — subgroup follower crash (k-out-of-n SAC absorbs the dropout);
//! * C2 — subgroup leader crash (the subgroup re-elects, the replacement
//!   rejoins the FedAvg layer);
//! * C3 — FedAvg leader crash (double election + rebuild);
//! * C4 — crash + restart: the restarted peer rejoins training.
//!
//! Every epoch runs a lossy randomized [`FaultPlan`] (link chaos) with the
//! case's crash/restart events spliced in, applied to the simulator-backed
//! [`ResilientSession`]. A final TCP leg replays a plan's crash/restart
//! schedule against real `PeerRuntime` peers with on-disk Raft storage and
//! verifies recovery from the files alone.
//!
//! Run: `cargo run -rp p2pfl-bench --bin chaos_soak -- --seed 7`
//! Smoke: `cargo run -rp p2pfl-bench --bin chaos_soak -- --smoke --seed 7`
//! Churn: `cargo run -rp p2pfl-bench --bin chaos_soak -- --churn --seed 7`
//! (kill/wait/restart a random follower every round; the final model must
//! match a crash-free twin bit-for-bit, and detector-driven roster
//! evictions must all heal). Each epoch prints its seed; replay one with
//! `--seed <n> --epochs 1`.
//! Byzantine: `cargo run -rp p2pfl-bench --bin chaos_soak -- --byzantine
//! --seed 7` (one SAC peer runs the commit-then-skew attack on both the
//! simulator and real TCP transports; both leaders must finish with the
//! attacker excluded and the honest mean intact).
//! Flash crowd: `cargo run -rp p2pfl-bench --bin chaos_soak --
//! --flash-crowd --seed 7` (burst-join to 3x the population then mass
//! leave; the elastic planner must split and merge, every subgroup must
//! end in band with nobody orphaned, no mask domain may repeat across
//! re-keys, the run must match an identically-scheduled twin bit for
//! bit, and a re-keyed SAC round per converged roster must produce the
//! same digest over real TCP as on the simulator).

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_fed::Client;
use p2pfl_hierraft::{
    ElasticBounds, FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner, SubCmd,
};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Dataset, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_net::PeerRuntime;
use p2pfl_raft::FileStorage;
use p2pfl_secagg::{
    RingMsg, RingSacActor, SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme,
    WeightVector,
};
use p2pfl_simnet::{FaultPlan, NodeId, ProcessFault, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CrashCase {
    /// C1: a subgroup follower dies mid-round.
    Follower,
    /// C2: a subgroup leader (FedAvg member) dies.
    SubLeader,
    /// C3: the FedAvg-layer leader dies.
    FedLeader,
    /// C4: a peer dies and later restarts, rejoining training.
    Rejoin,
}

const CASES: [CrashCase; 4] = [
    CrashCase::Follower,
    CrashCase::SubLeader,
    CrashCase::FedLeader,
    CrashCase::Rejoin,
];

impl CrashCase {
    fn name(self) -> &'static str {
        match self {
            CrashCase::Follower => "C1-follower",
            CrashCase::SubLeader => "C2-sub-leader",
            CrashCase::FedLeader => "C3-fed-leader",
            CrashCase::Rejoin => "C4-rejoin",
        }
    }
}

fn session(seed: u64, engine: SacEngine) -> (ResilientSession, Dataset) {
    let mut cfg = ResilientConfig::small(seed);
    cfg.deployment.engine = engine;
    let n_total = cfg.deployment.total_peers();
    let (train, test) =
        train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), test)
}

/// Picks the case's victim from the live Raft state.
fn pick_victim(s: &ResilientSession, case: CrashCase) -> NodeId {
    match case {
        CrashCase::Follower | CrashCase::Rejoin => {
            let leader0 = s.dep.sub_leader_of(0).expect("subgroup 0 leaderless");
            *s.dep.subgroups[0]
                .iter()
                .find(|&&m| m != leader0)
                .expect("subgroup 0 has a follower")
        }
        CrashCase::SubLeader => s.dep.sub_leader_of(1).expect("subgroup 1 leaderless"),
        CrashCase::FedLeader => s.dep.fed_leader().expect("no FedAvg leader"),
    }
}

/// One chaos epoch: lossy link chaos + the case's crash (and restart, so
/// the peer pool recovers for the next epoch). Returns (min groups used
/// during chaos, recovered).
fn run_epoch(
    s: &mut ResilientSession,
    test: &Dataset,
    case: CrashCase,
    epoch_seed: u64,
    round0: usize,
    chaos_rounds: usize,
    settle_rounds: usize,
) -> (usize, bool) {
    let nodes: Vec<NodeId> = s.dep.subgroups.iter().flatten().copied().collect();
    let victim = pick_victim(s, case);
    let plan = FaultPlan::randomized(epoch_seed, &nodes, SimTime::from_secs(3), true)
        .crash(SimTime::from_millis(300), victim)
        .restart(SimTime::from_millis(2300), victim);
    s.apply_fault_plan(&plan);

    let mut round = round0;
    let mut min_groups = usize::MAX;
    for _ in 0..chaos_rounds {
        let r = s.run_round(round, test);
        min_groups = min_groups.min(r.record.groups_used);
        round += 1;
    }
    s.clear_fault_plan();
    let mut last = None;
    for _ in 0..settle_rounds.max(1) {
        last = Some(s.run_round(round, test));
        round += 1;
    }
    let last = last.unwrap();

    let num_groups = s.dep.subgroups.len();
    let mut recovered = last.record.groups_used == num_groups && last.fed_leader.is_some();
    match case {
        CrashCase::FedLeader => {
            // The FedAvg layer must have moved on from the dead leader
            // during the chaos window (it restarts as a plain peer).
            recovered &= last.fed_leader.is_some();
        }
        CrashCase::Rejoin => {
            // The restarted peer itself is back in the round.
            recovered &= !s.dep.sim.is_crashed(victim);
        }
        _ => {}
    }
    (min_groups, recovered)
}

/// Churn leg: every round, kill a random follower, hold it down across the
/// failure detector's suspect window (every 10th round: across the confirm
/// window, forcing a roster eviction + re-admission), restart it before
/// aggregation, and finally compare the global model bit-for-bit against a
/// crash-free twin — churn that never removes a contributor at aggregation
/// time must be invisible in the aggregate.
fn churn_leg(seed: u64, rounds: usize, engine: SacEngine) {
    let settle = SimDuration::from_millis(600); // ResilientConfig::small
    println!("# churn leg: {rounds} rounds, seed {seed} (replay with --churn --seed {seed})");
    let (mut clean, test) = session(seed, engine);
    let (mut churned, _) = session(seed, engine);
    let mut pick = StdRng::seed_from_u64(seed ^ 0xc0411);
    let wall = Instant::now();

    for round in 1..=rounds {
        let g = pick.random_range(0..churned.dep.subgroups.len());
        let leader = churned
            .dep
            .sub_leader_of(g)
            .expect("subgroup leaderless at pick time");
        let followers: Vec<NodeId> = churned.dep.subgroups[g]
            .iter()
            .copied()
            .filter(|&m| m != leader)
            .collect();
        let victim = followers[pick.random_range(0..followers.len())];
        let down_ms = if round % 10 == 0 { 350 } else { 150 };
        churned.crash(victim);
        churned.dep.sim.run_for(SimDuration::from_millis(down_ms));
        churned.restart(victim);

        let t0 = churned.dep.sim.now();
        let r = churned.run_round(round, &test);
        assert!(
            churned.dep.sim.now() <= t0 + settle + SimDuration::from_millis(10),
            "round {round}: churn round exceeded the settle window"
        );
        assert_eq!(
            r.record.groups_used,
            churned.dep.subgroups.len(),
            "round {round}: churn excluded a subgroup (leaders {:?})",
            r.leaders
        );
        clean.run_round(round, &test);
    }

    let clean_bits: Vec<u64> = clean.global().iter().map(|x| x.to_bits()).collect();
    let churn_bits: Vec<u64> = churned.global().iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        clean_bits, churn_bits,
        "churn with full recovery changed the global model (seed {seed})"
    );

    let mut evictions = 0usize;
    let mut readmissions = 0usize;
    for g in 0..churned.dep.subgroups.len() {
        for &m in &churned.dep.subgroups[g].clone() {
            let a = churned.dep.sim.actor::<HierActor>(m);
            evictions += a.roster_changes.iter().filter(|(_, _, e)| *e).count();
            readmissions += a.roster_changes.iter().filter(|(_, _, e)| !*e).count();
        }
        let leader = churned.dep.sub_leader_of(g).expect("leader after churn");
        let roster = churned
            .dep
            .sim
            .actor::<HierActor>(leader)
            .live_sub_members();
        assert_eq!(
            roster,
            &churned.dep.subgroups[g][..],
            "subgroup {g}: roster did not heal"
        );
    }
    assert!(
        evictions >= rounds / 10,
        "deep-churn rounds triggered too few evictions ({evictions})"
    );
    assert_eq!(
        evictions, readmissions,
        "an evicted member was never re-admitted"
    );
    println!(
        "# churn leg passed: {rounds} rounds, {evictions} evictions healed, \
         digest matches crash-free twin ({:.1}s)",
        wall.elapsed().as_secs_f64()
    );
}

// ---------------------------------------------------------------------
// Flash-crowd leg: elastic split/merge under burst join + mass leave
// ---------------------------------------------------------------------

const FC_GROUPS: usize = 4;
const FC_SIZE: usize = 3;

/// Builds one elastic session sized for the flash crowd: the dataset is
/// partitioned for the initial peers *and* the joiners, so the burst
/// brings real training clients. Returns the session, the joiner clients,
/// and the test split.
fn elastic_session(
    seed: u64,
    engine: SacEngine,
    bounds: ElasticBounds,
) -> (ResilientSession, Vec<Client>, Dataset) {
    let mut cfg = ResilientConfig::small(seed);
    cfg.deployment.num_subgroups = FC_GROUPS;
    cfg.deployment.subgroup_size = FC_SIZE;
    cfg.deployment.engine = engine;
    cfg.deployment.elastic = Some(bounds);
    let n_initial = cfg.deployment.total_peers();
    let n_all = 3 * n_initial; // the burst triples the population
    let (train, test) = train_test_split(&features_like(16, n_all * 40 + 300, seed), n_all * 40);
    let parts = partition_dataset(&train, n_all, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let mut clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let joiners = clients.split_off(n_initial);
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), joiners, test)
}

/// Asserts the elastic safety claims on a session's final state and
/// returns the converged rosters with their re-key domains for the
/// reactor leg: layout in band, nobody orphaned, and — oracle-checked —
/// no mask domain reused across any re-key.
fn assert_elastic_safe(
    s: &ResilientSession,
    bounds: ElasticBounds,
    n_all: usize,
) -> Vec<(u64, Vec<NodeId>)> {
    let t = s.dep.latest_topology();
    for g in &t.groups {
        assert!(
            bounds.admits(g.members.len()),
            "subgroup {} ended out of band with {} members",
            g.gid,
            g.members.len()
        );
    }
    for i in 0..n_all {
        let id = NodeId(i as u32);
        if s.dep.sim.is_crashed(id) {
            continue;
        }
        let homes = t.groups.iter().filter(|g| g.members.contains(&id)).count();
        assert_eq!(homes, 1, "peer {id:?} lives in {homes} subgroups");
    }
    let actors: Vec<(NodeId, &HierActor)> = (0..n_all)
        .map(|i| {
            let id = NodeId(i as u32);
            (id, s.dep.sim.actor::<HierActor>(id))
        })
        .collect();
    if let Err(v) = p2pfl_check::oracles::no_mask_reuse_across_rekey(actors.iter().copied()) {
        panic!("{}: {}", v.oracle, v.detail);
    }
    t.groups
        .iter()
        .map(|g| {
            let key = t.roster_key(g.gid).expect("group just listed");
            (key, g.members.clone())
        })
        .collect()
}

/// Flash-crowd leg (simulator): from 4 subgroups, burst-join peers until
/// the population triples, then mass-leave back down. The replicated
/// planner must split on the way up and merge on the way down, every
/// subgroup must end inside `[n_min, n_max]` with nobody orphaned, no
/// mask domain may repeat across the re-keys, and the whole run must be
/// bit-reproducible: a twin session fed the identical schedule ends with
/// the identical global model. Returns the converged rosters + re-key
/// domains for the TCP leg.
fn flash_crowd_leg(seed: u64, engine: SacEngine) -> Vec<(u64, Vec<NodeId>)> {
    let bounds = ElasticBounds::new(3, 6);
    let (mut s, joiners, test) = elastic_session(seed, engine, bounds);
    let (mut twin, twin_joiners, _) = elastic_session(seed, engine, bounds);
    let n_initial = FC_GROUPS * FC_SIZE;
    let n_all = 3 * n_initial;
    let wall = Instant::now();
    println!(
        "# flash-crowd leg: {n_initial} peers, burst to {n_all}, bounds [{}, {}], seed {seed}",
        bounds.n_min, bounds.n_max
    );

    s.run(2, &test);
    twin.run(2, &test);
    assert_eq!(s.supervisor.splits, 0, "no split before the burst");

    // Burst: every joiner rendezvouses in; 36 peers cannot fit in groups
    // of <= 6 without at least one split.
    for (c, ct) in joiners.into_iter().zip(twin_joiners) {
        s.add_peer(c);
        twin.add_peer(ct);
    }
    let mut round = 3usize;
    for _ in 0..10 {
        s.run_round(round, &test);
        twin.run_round(round, &test);
        round += 1;
        let placed = (n_initial..n_all)
            .all(|i| s.dep.latest_topology().group_of(NodeId(i as u32)).is_some());
        if placed && s.supervisor.splits >= 1 && s.dep.latest_topology().converged(bounds) {
            break;
        }
    }
    assert!(s.supervisor.splits >= 1, "join burst never forced a split");
    println!(
        "# flash-crowd: burst absorbed ({} splits, {} groups, {} rekeys)",
        s.supervisor.splits,
        s.dep.latest_topology().groups.len(),
        s.supervisor.rekeys
    );

    // Mass leave: every joiner departs again (same schedule on the twin).
    for i in n_initial..n_all {
        s.remove_peer(NodeId(i as u32));
        twin.remove_peer(NodeId(i as u32));
    }
    for _ in 0..6 {
        s.run_round(round, &test);
        twin.run_round(round, &test);
        round += 1;
        let t = s.dep.latest_topology();
        let sizes: Vec<usize> = t.groups.iter().map(|g| g.members.len()).collect();
        println!(
            "# flash-crowd leave round {}: v{} groups {:?}, {} merges, fed leader {:?}",
            round - 1,
            t.version,
            sizes,
            s.supervisor.merges,
            s.dep.fed_leader()
        );
        if s.supervisor.merges >= 1 && t.converged(bounds) {
            break;
        }
    }
    // The exodus usually leaves a runt behind; if every surviving group
    // landed in band by luck, decay one below the floor so the merge path
    // is exercised deterministically (same picks on the twin).
    if s.supervisor.merges == 0 {
        let t = s.dep.latest_topology();
        let small = t
            .groups
            .iter()
            .min_by_key(|g| (g.members.len(), g.gid))
            .expect("layout has groups")
            .clone();
        let spare: Vec<NodeId> = small
            .members
            .iter()
            .copied()
            .filter(|&m| Some(m) != s.dep.fed_leader())
            .take((small.members.len() + 1).saturating_sub(bounds.n_min))
            .collect();
        for m in spare {
            s.remove_peer(m);
            twin.remove_peer(m);
        }
        for _ in 0..6 {
            s.run_round(round, &test);
            twin.run_round(round, &test);
            round += 1;
            if s.supervisor.merges >= 1 && s.dep.latest_topology().converged(bounds) {
                break;
            }
        }
    }
    assert!(s.supervisor.merges >= 1, "mass leave never forced a merge");

    // Post-convergence round, then the digest check: the twin saw the
    // identical schedule, so the global models must match bit for bit.
    let r = s.run_round(round, &test);
    let rt = twin.run_round(round, &test);
    assert!(r.fed_leader.is_some(), "no FedAvg leader after the churn");
    assert!(r.record.groups_used >= 1, "training wedged after the churn");
    let s_bits: Vec<u64> = s.global().iter().map(|x| x.to_bits()).collect();
    let t_bits: Vec<u64> = twin.global().iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        s_bits, t_bits,
        "flash-crowd run diverged from its twin (seed {seed})"
    );
    assert_eq!(rt.record.groups_used, r.record.groups_used);

    let rosters = assert_elastic_safe(&s, bounds, n_all);
    println!(
        "# flash-crowd leg passed: {} splits, {} merges, {} rekeys, {} final groups, \
         twin digest matches ({:.1}s)",
        s.supervisor.splits,
        s.supervisor.merges,
        s.supervisor.rekeys,
        rosters.len(),
        wall.elapsed().as_secs_f64()
    );
    rosters
}

/// Flash-crowd TCP leg: replays one secure-aggregation round per
/// converged roster on the reactor runtime, with every SAC actor re-keyed
/// into the roster's mask domain (the same `roster_key` the simulator
/// peers adopted), and checks the result bit-for-bit against a simulator
/// twin of the identical round — and against the plain mean.
fn flash_crowd_reactor_leg(rosters: &[(u64, Vec<NodeId>)], seed: u64) {
    use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
    let wall = Instant::now();
    for (gi, (roster_key, roster)) in rosters.iter().enumerate() {
        let n = roster.len();
        let k = n.div_ceil(2);
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ roster_key);
        let models: Vec<WeightVector> = (0..n)
            .map(|_| WeightVector::random(16, 1.0, &mut rng))
            .collect();
        let mut plain = WeightVector::zeros(16);
        for m in &models {
            plain.add_assign(m);
        }
        plain.scale(1.0 / n as f64);
        let cfg = |pos: usize, deadline: SimDuration| SacConfig {
            group: ids.clone(),
            position: pos,
            leader_pos: 0,
            k,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: deadline,
            collect_deadline: deadline,
            round_deadline: None,
            seed: seed ^ (pos as u64 * 0x9e37_79b9),
        };
        let rekeyed = |pos: usize, deadline: SimDuration| {
            let mut a = SacPeerActor::new(cfg(pos, deadline), models[pos].clone());
            assert!(
                a.rekey(ids.clone(), ids[0], k, *roster_key),
                "re-key rejected for subgroup {gi} position {pos}"
            );
            assert_eq!(a.mask_keys().len(), 2, "construction domain + re-key");
            a
        };

        // Simulator twin of the round.
        let mut sim: Sim<SacMsg> = Sim::new(seed ^ roster_key);
        for pos in 0..n {
            sim.add_node(rekeyed(pos, SimDuration::from_millis(100)));
        }
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(
            leader.phase,
            SacPhase::Done,
            "sim twin of subgroup {gi}: {:?}",
            leader.phase
        );
        let sim_result = leader.result.clone().expect("sim twin result");
        assert!(
            sim_result.linf_distance(&plain) < 1e-9,
            "subgroup {gi}: re-keyed masks failed to cancel on the simulator"
        );

        // The same round over real sockets on the reactor runtime.
        let reactor: Reactor<SacMsg, SacPeerActor> =
            Reactor::start(ReactorConfig::default()).expect("bind reactor");
        let handles: Vec<PeerHandle<SacMsg, SacPeerActor>> = (0..n)
            .map(|pos| {
                reactor
                    .spawn_peer(ids[pos], rekeyed(pos, SimDuration::from_secs(2)))
                    .expect("spawn peer")
            })
            .collect();
        let addr = reactor.local_addr();
        for a in &handles {
            for b in &handles {
                if a.node_id() != b.node_id() {
                    a.add_peer(b.node_id(), addr);
                }
            }
        }
        handles[0].with(|a, ctx| a.start_round(ctx, 1));
        wait_for(
            &format!("flash-crowd tcp round, subgroup {gi}"),
            Duration::from_secs(60),
            || handles[0].with(|a, _| a.result.is_some() || matches!(a.phase, SacPhase::Failed(_))),
        );
        let (phase, tcp_result) = handles[0].with(|a, _| (a.phase.clone(), a.result.clone()));
        assert_eq!(phase, SacPhase::Done, "tcp subgroup {gi}: {phase:?}");
        let tcp_result = tcp_result.expect("tcp result");
        assert_eq!(
            tcp_result.digest(),
            sim_result.digest(),
            "subgroup {gi}: reactor round diverged from the simulator twin"
        );
        drop(reactor);
    }
    println!(
        "# flash-crowd tcp leg passed: {} re-keyed rosters, reactor digests match the \
         simulator twin ({:.1}s)",
        rosters.len(),
        wall.elapsed().as_secs_f64()
    );
}

// ---------------------------------------------------------------------
// TCP leg: plan-scheduled crash/restart against on-disk Raft state
// ---------------------------------------------------------------------

const TCP_GROUPS: usize = 2;
const TCP_SIZE: usize = 3;

type HierRt = PeerRuntime<HierMsg, HierActor>;

fn hier_cfg(
    id: NodeId,
    subgroups: &[Vec<NodeId>],
    founding: &[NodeId],
    seed: u64,
    engine: SacEngine,
) -> HierPeerConfig {
    let gi = (id.0 as usize) / TCP_SIZE;
    HierPeerConfig {
        id,
        subgroup: subgroups[gi].clone(),
        subgroup_index: gi,
        founding_fed: founding.to_vec(),
        t: SimDuration::from_millis(300),
        heartbeat: SimDuration::from_millis(60),
        config_commit_interval: SimDuration::from_millis(200),
        join_poll_interval: SimDuration::from_millis(100),
        probe_interval: SimDuration::from_millis(60),
        suspect_after: SimDuration::from_millis(300),
        dead_after: SimDuration::from_millis(900),
        engine,
        combiner: RobustCombiner::FedAvg,
        seed: seed ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
        elastic: None,
    }
}

fn storage_actor(dir: &Path, cfg: HierPeerConfig) -> HierActor {
    let sub: PathBuf = dir.join(format!("n{}-sub.raft", cfg.id.0));
    let fed: PathBuf = dir.join(format!("n{}-fed.raft", cfg.id.0));
    HierActor::with_storage(
        cfg,
        Box::new(FileStorage::<SubCmd>::open(sub).expect("open sub storage")),
        Box::new(FileStorage::<FedCmd>::open(fed).expect("open fed storage")),
    )
}

fn wait_for(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn tcp_stable(rts: &HashMap<NodeId, HierRt>, subgroups: &[Vec<NodeId>]) -> bool {
    let fed_leaders = rts
        .values()
        .filter(|rt| rt.with(|a, _| a.is_fed_leader()))
        .count();
    fed_leaders == 1
        && subgroups.iter().all(|g| {
            let leaders: Vec<&HierRt> = g
                .iter()
                .filter_map(|id| rts.get(id))
                .filter(|rt| rt.with(|a, _| a.is_sub_leader()))
                .collect();
            leaders.len() == 1 && leaders[0].with(|a, _| a.is_fed_member())
        })
}

fn commit_marker(rts: &HashMap<NodeId, HierRt>, subgroups: &[Vec<NodeId>], marker: u64) {
    let fl = rts
        .values()
        .find(|rt| rt.with(|a, _| a.is_fed_leader()))
        .expect("fed leader");
    fl.with(move |a, ctx| a.propose_fed(ctx, FedCmd::Round(marker)).unwrap());
    wait_for(
        &format!("marker {marker} at every subgroup leader"),
        Duration::from_secs(30),
        || {
            subgroups.iter().all(|g| {
                g.iter().filter_map(|id| rts.get(id)).any(|rt| {
                    rt.with(move |a, _| {
                        a.is_sub_leader() && a.fed_rounds_applied().contains(&marker)
                    })
                })
            })
        },
    );
}

/// The soak's TCP leg: a plan's crash/restart schedule kills a real peer
/// and recovery comes from its on-disk Raft record alone.
fn tcp_crash_restart_leg(seed: u64, engine: SacEngine) {
    let dir = std::env::temp_dir().join(format!("p2pfl-chaos-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let subgroups: Vec<Vec<NodeId>> = (0..TCP_GROUPS)
        .map(|g| {
            (0..TCP_SIZE)
                .map(|i| NodeId((g * TCP_SIZE + i) as u32))
                .collect()
        })
        .collect();
    let founding: Vec<NodeId> = subgroups.iter().map(|g| g[0]).collect();
    let all: Vec<NodeId> = subgroups.iter().flatten().copied().collect();

    let mut rts: HashMap<NodeId, HierRt> = all
        .iter()
        .map(|&id| {
            let actor = storage_actor(&dir, hier_cfg(id, &subgroups, &founding, seed, engine));
            let rt = PeerRuntime::start(id, "127.0.0.1:0", &[], actor).expect("bind");
            (id, rt)
        })
        .collect();
    for a in &all {
        for b in &all {
            if a != b {
                rts[a].add_peer(*b, rts[b].local_addr());
            }
        }
    }
    wait_for(
        "initial TCP two-layer stability",
        Duration::from_secs(30),
        || tcp_stable(&rts, &subgroups),
    );
    commit_marker(&rts, &subgroups, 1);

    let victim = founding[0];
    let plan = FaultPlan::new(seed ^ 0xdead)
        .crash(SimTime::from_millis(10), victim)
        .restart(SimTime::from_millis(2000), victim);
    let origin = Instant::now();
    let (pre_term, pre_last) = rts[&victim].with(|a, _| {
        let r = a.sub_raft();
        (r.term(), r.log().last_index())
    });
    for ev in plan.process_events() {
        let due = origin + Duration::from_nanos(ev.at.as_nanos());
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match ev.fault {
            ProcessFault::Crash => {
                rts.remove(&ev.node).expect("victim running").kill();
            }
            ProcessFault::Restart => {
                let actor =
                    storage_actor(&dir, hier_cfg(ev.node, &subgroups, &founding, seed, engine));
                assert!(actor.sub_raft().term() >= pre_term, "term lost on restart");
                assert!(
                    actor.sub_raft().log().last_index() >= pre_last,
                    "log entries lost on restart"
                );
                assert!(actor.is_fed_member(), "fed seat not restored from disk");
                let peers: Vec<(NodeId, std::net::SocketAddr)> =
                    rts.iter().map(|(&id, rt)| (id, rt.local_addr())).collect();
                let rt = PeerRuntime::start(ev.node, "127.0.0.1:0", &peers, actor).expect("rebind");
                for other in rts.values() {
                    other.add_peer(ev.node, rt.local_addr());
                }
                rts.insert(ev.node, rt);
            }
        }
    }
    wait_for(
        "post-restart TCP stability",
        Duration::from_secs(60),
        || tcp_stable(&rts, &subgroups),
    );
    commit_marker(&rts, &subgroups, 2);
    for (_, rt) in rts.drain() {
        drop(rt.stop());
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("# tcp leg: crash/restart recovered from on-disk Raft state, marker committed");
}

/// Ring-engine leg: a dedicated mid-round crash against the Ring-SAC
/// actor itself. A follower dies after its shares have entered the ring
/// but before the round closes; the leader must still finish with all n
/// contributors by pulling the victim's blocks out of stage replicas.
fn ring_crash_leg(seed: u64) {
    const N: usize = 8;
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let mut sim: Sim<RingMsg> = Sim::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1219);
    for i in 0..N {
        let cfg = SacConfig {
            group: ids.clone(),
            position: i,
            leader_pos: 0,
            k: N.div_ceil(2),
            scheme: ShareScheme::Masked,
            engine: SacEngine::Ring,
            share_deadline: SimDuration::from_millis(100),
            collect_deadline: SimDuration::from_millis(100),
            round_deadline: None,
            seed: seed + i as u64,
        };
        let model = WeightVector::random(64, 1.0, &mut rng);
        sim.add_node(RingSacActor::new(cfg, model));
    }
    let victim = NodeId(5);
    let plan = FaultPlan::new(seed ^ 0x51de).crash(SimTime::from_millis(40), victim);
    sim.apply_fault_plan(&plan);
    sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let leader = sim.actor::<RingSacActor>(ids[0]);
    assert_eq!(leader.phase, SacPhase::Done, "ring leg: {:?}", leader.phase);
    assert!(
        leader.recoveries >= 1,
        "mid-round crash did not exercise replica recovery"
    );
    assert!(
        leader.contributors.contains(&(victim.0 as usize)),
        "victim's update was lost despite stage replicas"
    );
    println!(
        "# ring leg: mid-round crash recovered from stage replicas \
         ({} recoveries), all {N} contributors kept",
        leader.recoveries
    );
}

// ---------------------------------------------------------------------
// Byzantine leg: commit-then-skew attack on both transports
// ---------------------------------------------------------------------

const BYZ_N: usize = 5;
const BYZ_K: usize = 3;
const BYZ_POS: usize = 3;
const BYZ_SKEW: f64 = 6.0;
const BYZ_DIM: usize = 32;

fn byz_sac_cfg(ids: &[NodeId], pos: usize, deadline: SimDuration, seed: u64) -> SacConfig {
    SacConfig {
        group: ids.to_vec(),
        position: pos,
        leader_pos: 0,
        k: BYZ_K,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: seed ^ (pos as u64 * 0x9e37_79b9),
    }
}

/// The checks both transports must pass: round done, the attacker caught
/// and excluded, and the published result equal to the honest plain mean.
fn assert_byz_defended(
    transport: &str,
    phase: &SacPhase,
    contributors: &[usize],
    rejected: u64,
    detected: &std::collections::BTreeSet<usize>,
    result: &WeightVector,
    honest_mean: &WeightVector,
) {
    assert_eq!(*phase, SacPhase::Done, "{transport}: {phase:?}");
    let honest: Vec<usize> = (0..BYZ_N).filter(|&p| p != BYZ_POS).collect();
    assert_eq!(
        contributors, honest,
        "{transport}: attacker not excluded from contributors"
    );
    assert!(rejected >= 1, "{transport}: no shares rejected");
    assert!(
        detected.contains(&BYZ_POS),
        "{transport}: attacker not in byzantine_detected ({detected:?})"
    );
    let d = result.linf_distance(honest_mean);
    assert!(
        d < 1e-9,
        "{transport}: result drifted {d} from the honest mean"
    );
}

/// Byzantine leg: peer 3 of a 5-peer, k=3 SAC subgroup runs the
/// commit-then-skew attack — honest hash commitments, then every share
/// block scaled by [`BYZ_SKEW`]. The simulator and a real TCP deployment
/// must interpret the fault identically: on both transports every honest
/// receiver's digest check rejects the blocks, the leader finishes the
/// round over the honest four, and the published average equals the plain
/// mean of the honest models (the adversary-free twin, computed directly).
fn byzantine_leg(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb12a);
    let models: Vec<WeightVector> = (0..BYZ_N)
        .map(|_| WeightVector::random(BYZ_DIM, 1.0, &mut rng))
        .collect();
    let mut honest_mean = WeightVector::zeros(BYZ_DIM);
    for (pos, m) in models.iter().enumerate() {
        if pos != BYZ_POS {
            honest_mean.add_assign(m);
        }
    }
    honest_mean.scale(1.0 / (BYZ_N - 1) as f64);
    let ids: Vec<NodeId> = (0..BYZ_N as u32).map(NodeId).collect();

    // Simulator sub-leg.
    let mut sim: Sim<SacMsg> = Sim::new(seed);
    for (pos, model) in models.iter().enumerate() {
        sim.add_node(SacPeerActor::new(
            byz_sac_cfg(&ids, pos, SimDuration::from_millis(100), seed),
            model.clone(),
        ));
    }
    sim.actor_mut::<SacPeerActor>(ids[BYZ_POS]).byz_share_skew = Some(BYZ_SKEW);
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(SimTime::from_secs(5));
    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_byz_defended(
        "sim",
        &leader.phase,
        &leader.contributors,
        leader.shares_rejected,
        &leader.byzantine_detected,
        leader.result.as_ref().expect("sim result"),
        &honest_mean,
    );
    for pos in (0..BYZ_N).filter(|&p| p != BYZ_POS) {
        assert!(
            sim.actor::<SacPeerActor>(ids[pos]).shares_rejected >= 1,
            "sim: honest peer {pos} accepted a skewed block"
        );
    }
    println!("# byzantine leg (sim): attacker detected by all honest peers, honest mean intact");

    // TCP sub-leg: same attack over real sockets.
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..BYZ_N)
        .map(|pos| {
            let mut actor = SacPeerActor::new(
                byz_sac_cfg(&ids, pos, SimDuration::from_secs(2), seed),
                models[pos].clone(),
            );
            if pos == BYZ_POS {
                actor.byz_share_skew = Some(BYZ_SKEW);
            }
            PeerRuntime::start(ids[pos], "127.0.0.1:0", &[], actor).expect("bind")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }
    runtimes[0].with(|a, ctx| a.start_round(ctx, 1));
    wait_for("tcp byzantine round", Duration::from_secs(30), || {
        runtimes[0].with(|a, _| a.result.is_some() || matches!(a.phase, SacPhase::Failed(_)))
    });
    let (phase, contributors, rejected, detected, result) = runtimes[0].with(|a, _| {
        (
            a.phase.clone(),
            a.contributors.clone(),
            a.shares_rejected,
            a.byzantine_detected.clone(),
            a.result.clone().expect("tcp result"),
        )
    });
    assert_byz_defended(
        "tcp",
        &phase,
        &contributors,
        rejected,
        &detected,
        &result,
        &honest_mean,
    );
    for rt in runtimes {
        drop(rt.stop());
    }
    println!("# byzantine leg (tcp): attacker detected over real sockets, honest mean intact");
}

fn main() {
    let args = Args::parse();
    let smoke = args.get_flag("smoke") || args.get_flag("quick");
    let seed = args.get_u64("seed", 7);
    let engine = match args.get_str("engine").as_deref() {
        None | Some("pairwise") => SacEngine::Pairwise,
        Some("ring") => SacEngine::Ring,
        Some(other) => {
            eprintln!("unknown --engine '{other}' (expected ring or pairwise)");
            std::process::exit(2);
        }
    };

    if args.get_flag("byzantine") {
        banner(
            "Chaos soak: commit-then-skew Byzantine attack on both transports",
            "honest receivers reject the skewed shares; the round survives with the honest mean",
        );
        byzantine_leg(seed);
        println!("# byzantine soak passed");
        return;
    }

    if args.get_flag("flash-crowd") {
        banner(
            "Chaos soak: flash-crowd churn over the elastic topology",
            "burst join to 3x then mass leave; split+merge in band, safe re-keys, twin digest match",
        );
        let rosters = flash_crowd_leg(seed, engine);
        if !args.get_flag("skip-tcp") {
            flash_crowd_reactor_leg(&rosters, seed);
        } else {
            println!("# --skip-tcp: reactor replay of the converged rosters skipped");
        }
        println!("# flash-crowd soak passed");
        return;
    }

    if args.get_flag("churn") {
        banner(
            "Chaos soak: per-round membership churn vs crash-free twin",
            "kill/wait/restart a random follower each round; digest must match",
        );
        churn_leg(
            seed,
            args.get_usize("rounds", if smoke { 20 } else { 50 }),
            engine,
        );
        return;
    }

    let epochs = args.get_usize("epochs", if smoke { 4 } else { 8 });
    let chaos_rounds = args.get_usize("rounds", if smoke { 2 } else { 4 });
    let settle_rounds = args.get_usize("settle", if smoke { 2 } else { 3 });
    let skip_tcp = args.get_flag("skip-tcp");

    banner(
        "Chaos soak: randomized fault plans over full two-layer rounds",
        "Sec. V crash cases C1-C4 each hit and recovered; faults never wedge a round",
    );
    println!("# seed {seed} (replay with --seed {seed}); engine={engine:?} epochs={epochs} chaos_rounds={chaos_rounds} settle_rounds={settle_rounds}");

    let (mut s, test) = session(seed, engine);
    s.run(2, &test); // healthy warm-up establishes both layers

    let mut hit: HashMap<CrashCase, usize> = HashMap::new();
    let mut recovered_count: HashMap<CrashCase, usize> = HashMap::new();
    let mut rows = Vec::new();
    let mut round = 3usize;
    for e in 0..epochs {
        let case = CASES[e % CASES.len()];
        let epoch_seed = seed.wrapping_add(1 + e as u64);
        println!("# epoch {e}: {} (epoch seed {epoch_seed})", case.name());
        let (min_groups, recovered) = run_epoch(
            &mut s,
            &test,
            case,
            epoch_seed,
            round,
            chaos_rounds,
            settle_rounds,
        );
        round += chaos_rounds + settle_rounds.max(1);
        *hit.entry(case).or_default() += 1;
        if recovered {
            *recovered_count.entry(case).or_default() += 1;
        }
        rows.push(format!(
            "{e},{},{epoch_seed},{min_groups},{recovered}",
            case.name()
        ));
    }
    print_csv(
        "epoch,case,epoch_seed,min_groups_during_chaos,recovered",
        rows,
    );

    println!("\n# summary:");
    let mut failed = false;
    for case in CASES {
        let h = hit.get(&case).copied().unwrap_or(0);
        let r = recovered_count.get(&case).copied().unwrap_or(0);
        println!("#   {}: hit {h}, recovered {r}", case.name());
        if h == 0 || r == 0 {
            failed = true;
        }
    }
    assert!(
        !failed,
        "a Sec. V crash case was never hit or never recovered (replay with --seed {seed})"
    );

    if engine == SacEngine::Ring {
        ring_crash_leg(seed);
    }
    if skip_tcp {
        println!("# tcp leg skipped (--skip-tcp)");
    } else {
        tcp_crash_restart_leg(seed, engine);
    }
    println!("# chaos soak passed");
}
