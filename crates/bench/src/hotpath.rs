//! Timing harness and regression gate behind the `hotpath` binary.
//!
//! A deliberately small, dependency-free benchmark core: each benchmark
//! runs a fixed, seeded workload for a fixed iteration count, recording
//! per-iteration wall-clock nanoseconds and allocation counts (via
//! [`crate::alloc`]). Results serialize to the flat JSON trajectory file
//! `BENCH_hotpath.json`; [`check_regressions`] compares a fresh run
//! against a checked-in baseline and reports benchmarks whose median
//! exceeded the allowed factor — the perf gate `ci.sh` enforces.

use crate::alloc::allocations;
use std::time::Instant;

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark name (the regression-gate join key).
    pub name: String,
    /// Measured iterations (after one untimed warmup).
    pub iters: usize,
    /// Median per-iteration wall clock, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile per-iteration wall clock, nanoseconds.
    pub p95_ns: u64,
    /// Mean per-iteration wall clock, nanoseconds.
    pub mean_ns: u64,
    /// Payload bytes one iteration processes (0 when not meaningful).
    pub bytes_per_iter: u64,
    /// Derived throughput, bytes/second (0 when `bytes_per_iter` is 0).
    pub bytes_per_sec: u64,
    /// Mean allocation calls per iteration (counting allocator).
    pub allocs_per_iter: u64,
}

/// Collects [`BenchResult`]s and renders the JSON report.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
}

impl Harness {
    /// An empty harness.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Runs `f` for `iters` timed iterations (plus one warmup) and
    /// records the result. `bytes_per_iter` annotates throughput-style
    /// benchmarks; pass 0 where bytes are not the natural unit.
    pub fn bench(&mut self, name: &str, iters: usize, bytes_per_iter: u64, mut f: impl FnMut()) {
        assert!(iters > 0, "need at least one iteration");
        f(); // warmup: page in buffers, warm caches, JIT nothing (it's Rust)
        let mut samples_ns = Vec::with_capacity(iters);
        let allocs_before = allocations();
        for _ in 0..iters {
            let t = Instant::now();
            f();
            samples_ns.push(t.elapsed().as_nanos() as u64);
        }
        let allocs = allocations() - allocs_before;
        samples_ns.sort_unstable();
        let median_ns = samples_ns[samples_ns.len() / 2];
        let p95_ns = samples_ns[((samples_ns.len() * 95).div_ceil(100)).saturating_sub(1)];
        let mean_ns = samples_ns.iter().sum::<u64>() / iters as u64;
        let bytes_per_sec = if bytes_per_iter > 0 && median_ns > 0 {
            (bytes_per_iter as f64 * 1e9 / median_ns as f64) as u64
        } else {
            0
        };
        let r = BenchResult {
            name: name.to_string(),
            iters,
            median_ns,
            p95_ns,
            mean_ns,
            bytes_per_iter,
            bytes_per_sec,
            allocs_per_iter: allocs / iters as u64,
        };
        println!(
            "{:<24} median {:>12} ns   p95 {:>12} ns   {:>8} allocs/iter{}",
            r.name,
            r.median_ns,
            r.p95_ns,
            r.allocs_per_iter,
            if r.bytes_per_sec > 0 {
                format!("   {:.1} MB/s", r.bytes_per_sec as f64 / 1e6)
            } else {
                String::new()
            }
        );
        self.results.push(r);
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Median of the named benchmark, if it ran.
    pub fn median_of(&self, name: &str) -> Option<u64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    /// Renders the machine-readable report. `extra` lines are injected
    /// verbatim as top-level fields (already-formatted `"key": value`
    /// pairs, e.g. derived speedups).
    pub fn to_json(&self, quick: bool, extra: &[String]) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"p2pfl-bench/hotpath/v1\",\n");
        s.push_str(&format!("  \"quick\": {quick},\n"));
        for line in extra {
            s.push_str(&format!("  {line},\n"));
        }
        s.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p95_ns\": {}, \
                 \"mean_ns\": {}, \"bytes_per_iter\": {}, \"bytes_per_sec\": {}, \
                 \"allocs_per_iter\": {}}}{}\n",
                r.name,
                r.iters,
                r.median_ns,
                r.p95_ns,
                r.mean_ns,
                r.bytes_per_iter,
                r.bytes_per_sec,
                r.allocs_per_iter,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Extracts `(name, median_ns)` pairs from a hotpath JSON report. A tiny
/// purpose-built scanner (the workspace has no JSON parser): it walks
/// `"name": "..."` / `"median_ns": N` key orders as `to_json` emits them,
/// which is also stable across hand edits that preserve the field order.
pub fn parse_baseline(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(j) = rest.find("\"median_ns\": ") else {
            break;
        };
        rest = &rest[j + 13..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(v) = digits.parse() {
            out.push((name, v));
        }
    }
    out
}

/// Compares fresh medians against a baseline: returns one line per
/// benchmark whose median grew by more than `factor`. Benchmarks present
/// on only one side are ignored (new benchmarks must not fail the gate;
/// retired ones must not block baseline refreshes).
pub fn check_regressions(
    current: &[BenchResult],
    baseline: &[(String, u64)],
    factor: f64,
) -> Vec<String> {
    let mut offenders = Vec::new();
    for r in current {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            continue;
        };
        if *base > 0 && r.median_ns as f64 > *base as f64 * factor {
            offenders.push(format!(
                "{}: median {} ns vs baseline {} ns ({:.2}x > {factor}x allowed)",
                r.name,
                r.median_ns,
                base,
                r.median_ns as f64 / *base as f64
            ));
        }
    }
    offenders
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, median: u64) -> BenchResult {
        BenchResult {
            name: name.into(),
            iters: 3,
            median_ns: median,
            p95_ns: median,
            mean_ns: median,
            bytes_per_iter: 0,
            bytes_per_sec: 0,
            allocs_per_iter: 0,
        }
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let mut h = Harness::new();
        h.bench("spin", 3, 128, || {
            std::hint::black_box(1 + 1);
        });
        h.bench("spin2", 3, 0, || {
            std::hint::black_box(2 + 2);
        });
        let json = h.to_json(true, &["\"matmul_speedup_256\": 4.5".into()]);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "spin");
        assert_eq!(parsed[0].1, h.results()[0].median_ns);
        assert!(json.contains("\"matmul_speedup_256\": 4.5"));
        assert!(json.contains("\"bytes_per_iter\": 128"));
    }

    #[test]
    fn regression_gate_flags_only_true_regressions() {
        let current = vec![result("a", 1000), result("b", 4000), result("new", 9)];
        let baseline = vec![
            ("a".to_string(), 900),
            ("b".to_string(), 1000),
            ("retired".to_string(), 5),
        ];
        let bad = check_regressions(&current, &baseline, 2.0);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("b:"), "{}", bad[0]);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = Harness::new();
        h.bench("t", 20, 0, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        let r = &h.results()[0];
        assert!(r.median_ns <= r.p95_ns);
        assert_eq!(r.iters, 20);
    }
}
