//! A counting global allocator for allocation-budget measurements.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps process-wide
//! tallies of allocation calls and bytes requested. The `hotpath` binary
//! and the allocation-budget tests install it with `#[global_allocator]`
//! and read deltas around the region under measurement — a cheap,
//! dependency-free way to (a) publish allocs/iteration in
//! `BENCH_hotpath.json` and (b) assert that steady-state aggregation
//! loops stay allocation-free.
//!
//! Counters are monotonically increasing atomics; concurrent allocations
//! from other threads during a measured region show up in the delta, so
//! measured regions should run single-threaded (the bench harness does).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation.
pub struct CountingAlloc;

// SAFETY: pure passthrough to `System`; the only extra work is two
// relaxed atomic increments, which allocate nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still reserves new capacity: count it.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation calls since process start (monotonic).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start (monotonic; not live bytes).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(result, allocation calls during f)`. Only
/// meaningful when [`CountingAlloc`] is installed as the global allocator
/// and no other thread allocates concurrently.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}
