//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper and prints it as a small CSV-ish report to stdout, so
//! `cargo run -rp p2pfl-bench --bin figNN_...` is the whole reproduction
//! recipe. Binaries accept `--key value` flags (see [`Args`]) to scale up
//! to the paper's full round/trial counts.

pub mod alloc;
pub mod hotpath;

use std::collections::HashMap;

/// Minimal `--key value` argument parser (no external dependencies).
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable form).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    it.next().unwrap()
                } else {
                    "true".to_string()
                };
                values.insert(key.to_string(), val);
            }
        }
        Args { values }
    }

    /// An integer flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// A u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// A float flag with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number"))
            })
            .unwrap_or(default)
    }

    /// A boolean switch.
    pub fn get_flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A string flag, `None` when absent.
    pub fn get_str(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }
}

/// Prints a CSV header and rows through one writer lock.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = String>) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "{header}").unwrap();
    for r in rows {
        writeln!(lock, "{r}").unwrap();
    }
}

/// A figure banner with the paper reference, so output is self-describing.
pub fn banner(figure: &str, claim: &str) {
    println!("# {figure}");
    println!("# paper reference: {claim}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = args(&["--rounds", "100", "--full", "--seed", "7"]);
        assert_eq!(a.get_usize("rounds", 1), 100);
        assert_eq!(a.get_u64("seed", 0), 7);
        assert!(a.get_flag("full"));
        assert!(!a.get_flag("other"));
        assert_eq!(a.get_f64("missing", 2.5), 2.5);
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get_usize("rounds", 150), 150);
    }
}
