//! Property tests for the robust FedAvg-layer combiners: permutation
//! invariance, reduction to plain FedAvg without adversaries, and the
//! bounded-influence guarantee — `f` arbitrary (Byzantine) inputs cannot
//! push the aggregate outside the honest inputs' per-coordinate envelope.
//! This is the unit-level statement of the `ByzantineBoundedInfluence`
//! oracle's bound `B`.

use p2pfl_fed::{
    combine, coordinate_median, fedavg, norm_clip, spread_linf, trim_count, trimmed_mean,
    RobustCombiner,
};
use proptest::prelude::*;

const COMBINERS: [RobustCombiner; 4] = [
    RobustCombiner::FedAvg,
    RobustCombiner::TrimmedMean,
    RobustCombiner::Median,
    RobustCombiner::NormClip,
];

fn arb_models(n: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim..=dim), n)
}

/// Deterministically permutes `items` by a seed (Fisher–Yates on a simple
/// LCG) so proptest shrinks the seed, not the permutation.
fn permuted<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn combiners_are_permutation_invariant(
        models in arb_models(1..8, 4),
        counts_seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let n = models.len();
        let counts: Vec<usize> = (0..n).map(|i| {
            (counts_seed.rotate_left(i as u32 * 7) % 50) as usize + 1
        }).collect();
        // Permute models and counts with the same permutation.
        let paired: Vec<(Vec<f64>, usize)> =
            models.iter().cloned().zip(counts.iter().copied()).collect();
        let shuffled = permuted(&paired, perm_seed);
        let (pm, pc): (Vec<Vec<f64>>, Vec<usize>) = shuffled.into_iter().unzip();
        for c in COMBINERS {
            let a = combine(c, &models, &counts);
            let b = combine(c, &pm, &pc);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                    "{c:?} not permutation-invariant: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn identical_inputs_reduce_to_that_model(
        model in prop::collection::vec(-100.0f64..100.0, 1..6),
        n in 1usize..7,
    ) {
        // Zero adversaries and zero disagreement: every combiner must
        // return the common model exactly — the degenerate case where all
        // of them coincide with plain FedAvg.
        let models = vec![model.clone(); n];
        let counts = vec![3usize; n];
        for c in COMBINERS {
            let out = combine(c, &models, &counts);
            for (o, m) in out.iter().zip(&model) {
                prop_assert!((o - m).abs() <= 1e-12, "{c:?} moved a unanimous input");
            }
        }
    }

    #[test]
    fn trimmed_mean_and_median_stay_in_honest_envelope(
        honest in arb_models(3..8, 3),
        adversarial_scale in 1.0f64..1e12,
        sign in any::<bool>(),
    ) {
        // f Byzantine inputs with f <= trim_count(n) (and f < n/2 for the
        // median): the output must stay inside the honest per-coordinate
        // [min, max] envelope, i.e. within bound B of the honest mean.
        let n_honest = honest.len();
        let dim = honest[0].len();
        let f = trim_count(n_honest + 1).min((n_honest - 1) / 2).max(
            // At least one adversary whenever the combined set tolerates it.
            usize::from(trim_count(n_honest + 1) >= 1),
        );
        let s = if sign { adversarial_scale } else { -adversarial_scale };
        let mut all = honest.clone();
        for _ in 0..f {
            all.push(vec![s; dim]);
        }
        if f > trim_count(all.len()) {
            continue;
        }
        let b = spread_linf(&honest);
        let honest_mean = fedavg(&honest, &vec![1; n_honest]);
        for out in [trimmed_mean(&all), coordinate_median(&all)] {
            for j in 0..dim {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for h in &honest {
                    lo = lo.min(h[j]);
                    hi = hi.max(h[j]);
                }
                prop_assert!(
                    out[j] >= lo - 1e-9 && out[j] <= hi + 1e-9,
                    "coordinate {j} escaped honest envelope: {} not in [{lo}, {hi}]",
                    out[j]
                );
                prop_assert!(
                    (out[j] - honest_mean[j]).abs() <= b + 1e-9,
                    "shift beyond bound B={b}"
                );
            }
        }
    }

    #[test]
    fn norm_clip_bounds_output_norm(
        honest in arb_models(3..8, 3),
        boost in 1e3f64..1e9,
    ) {
        // A minority of norm-boosted inputs cannot push the aggregate's
        // norm beyond the clip threshold, which f < n/2 adversaries cannot
        // control (the median norm is bracketed by honest norms).
        let n_honest = honest.len();
        let f = (n_honest - 1) / 2;
        if f < 1 {
            continue;
        }
        let mut all = honest.clone();
        let mut counts = vec![1usize; n_honest];
        for _ in 0..f {
            all.push(vec![boost; honest[0].len()]);
            counts.push(1);
        }
        let out = norm_clip(&all, &counts);
        let l2 = |m: &[f64]| m.iter().map(|x| x * x).sum::<f64>().sqrt();
        let max_honest_norm = honest.iter().map(|m| l2(m)).fold(0.0, f64::max);
        prop_assert!(
            l2(&out) <= max_honest_norm + 1e-9,
            "|out| = {} exceeds the max honest norm {max_honest_norm}",
            l2(&out)
        );
    }
}
