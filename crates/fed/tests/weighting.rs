//! Sample-count weighting through the full FedAvg session — the `n_k / n`
//! factor of the paper's Sec. III-A update law, verified end-to-end with
//! uneven client datasets.

use p2pfl_fed::{fedavg, Client, FedAvgSession, LocalTrainConfig};
use p2pfl_ml::data::{features_like, train_test_split, Dataset};
use p2pfl_ml::models::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shard(d: &Dataset, from: usize, count: usize) -> Dataset {
    let idx: Vec<usize> = (from..from + count).collect();
    d.subset(&idx)
}

#[test]
fn global_model_is_the_sample_weighted_mean_of_locals() {
    // Three clients with 30 / 60 / 90 samples: after one round the global
    // parameters must equal Σ (n_k / n) w_k over the *post-training*
    // locals, not the unweighted mean.
    let (train, test) = train_test_split(&features_like(8, 480, 1), 180);
    let mut rng = StdRng::seed_from_u64(2);
    let counts = [30usize, 60, 90];
    let mut from = 0;
    let mut clients = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        clients.push(Client::new(
            i,
            mlp(&[8, 6, 10], &mut rng),
            shard(&train, from, c),
            5e-3,
            3 + i as u64,
        ));
        from += c;
    }
    let eval = mlp(&[8, 6, 10], &mut rng);
    let cfg = LocalTrainConfig {
        epochs: 1,
        batch_size: 16,
    };
    let mut session = FedAvgSession::new(clients, eval, cfg, 4);

    // Reference run: replicate the exact same training with twin clients.
    let mut rng = StdRng::seed_from_u64(2);
    let mut from = 0;
    let mut twins = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        twins.push(Client::new(
            i,
            mlp(&[8, 6, 10], &mut rng),
            shard(&train, from, c),
            5e-3,
            3 + i as u64,
        ));
        from += c;
    }
    let eval_twin = mlp(&[8, 6, 10], &mut rng);
    let init = eval_twin.params_flat();
    for t in &mut twins {
        t.set_params(&init);
        t.local_update(cfg);
    }
    let locals: Vec<Vec<f64>> = twins.iter().map(|t| t.params()).collect();
    let expected = fedavg(&locals, &counts);

    session.run_round(1, &test);
    let max_err = session
        .global()
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-9, "weighted-mean mismatch: {max_err}");

    // Sanity: the unweighted mean differs, so the test has teeth.
    let unweighted = fedavg(&locals, &[1, 1, 1]);
    let diff = expected
        .iter()
        .zip(&unweighted)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(diff > 1e-6, "weighting did not matter; test is vacuous");
}

#[test]
fn session_with_uneven_shards_still_learns() {
    let (train, test) = train_test_split(&features_like(16, 700, 5), 400);
    let mut rng = StdRng::seed_from_u64(6);
    let counts = [40usize, 120, 240];
    let mut from = 0;
    let mut clients = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        clients.push(Client::new(
            i,
            mlp(&[16, 24, 10], &mut rng),
            shard(&train, from, c),
            5e-3,
            7 + i as u64,
        ));
        from += c;
    }
    let eval = mlp(&[16, 24, 10], &mut rng);
    let mut session = FedAvgSession::new(
        clients,
        eval,
        LocalTrainConfig {
            epochs: 1,
            batch_size: 32,
        },
        8,
    );
    let records = session.run(25, &test);
    let first = records.first().unwrap().test_accuracy;
    let last = records.last().unwrap().test_accuracy;
    assert!(last > first + 0.15, "accuracy {first:.3} -> {last:.3}");
}
