//! Parallel per-peer local training.
//!
//! One aggregation round trains every peer's model independently — the
//! single most expensive step of a sweep — so the peers are fanned out
//! over scoped OS threads. Every [`Client`] owns its RNG (seeded per peer
//! at construction), its optimizer state, and its dataset, so the result
//! of a round is a pure function of each client's state: the fan-out is
//! **bit-identical** to the serial loop regardless of thread count or
//! scheduling, which `tests/determinism.rs` locks in.
//!
//! The `parallel` cargo feature (default on) selects the default mode;
//! [`set_parallel`] overrides it at runtime so benchmarks and the
//! determinism suite can compare both paths in one binary.

use crate::client::{Client, LocalTrainConfig};
use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = follow the compiled-in feature default, 1 = force on, 2 = force off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether local updates currently fan out over threads.
pub fn parallel_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => cfg!(feature = "parallel"),
    }
}

/// Whether the fan-out was explicitly forced on via [`set_parallel`]. A
/// forced fan-out spawns worker threads even on a single-core host, so
/// the determinism suite exercises the real threaded path everywhere.
fn parallel_forced() -> bool {
    OVERRIDE.load(Ordering::Relaxed) == 1
}

/// Forces the training fan-out on or off at runtime, overriding the
/// `parallel` feature default. Intended for benchmarks and determinism
/// tests; call [`reset_parallel`] to restore the default.
pub fn set_parallel(enabled: bool) {
    OVERRIDE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Restores the compiled-in `parallel` feature default.
pub fn reset_parallel() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// Worker-thread count for a given task count: one thread per hardware
/// core, capped at 8 (memory-bandwidth-bound past that) and at the task
/// count itself. When the fan-out is forced, ignore the core count so the
/// threaded path runs even on single-core hosts.
fn thread_count(tasks: usize) -> usize {
    let cores = if parallel_forced() {
        8
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    };
    cores.min(8).min(tasks)
}

/// Runs `local_update` on every client — over scoped threads when
/// [`parallel_enabled`], serially otherwise — returning per-client
/// training losses in client order. The two paths are bit-identical.
pub fn local_updates(clients: &mut [Client], cfg: LocalTrainConfig) -> Vec<f64> {
    let threads = thread_count(clients.len());
    if !parallel_enabled() || threads <= 1 {
        return clients.iter_mut().map(|c| c.local_update(cfg).0).collect();
    }
    let chunk = clients.len().div_ceil(threads);
    let mut losses = vec![0.0f64; clients.len()];
    std::thread::scope(|s| {
        for (cs, ls) in clients.chunks_mut(chunk).zip(losses.chunks_mut(chunk)) {
            s.spawn(move || {
                for (c, l) in cs.iter_mut().zip(ls.iter_mut()) {
                    *l = c.local_update(cfg).0;
                }
            });
        }
    });
    losses
}

/// [`local_updates`] restricted to clients whose `active` flag is set
/// (e.g. peers the simulator reports alive); inactive clients are left
/// untouched and report `None`. Losses come back in client order.
pub fn local_updates_masked(
    clients: &mut [Client],
    active: &[bool],
    cfg: LocalTrainConfig,
) -> Vec<Option<f64>> {
    assert_eq!(clients.len(), active.len(), "one flag per client");
    let live = active.iter().filter(|&&a| a).count();
    let threads = thread_count(live);
    if !parallel_enabled() || threads <= 1 {
        return clients
            .iter_mut()
            .zip(active)
            .map(|(c, &a)| a.then(|| c.local_update(cfg).0))
            .collect();
    }
    let mut losses: Vec<Option<f64>> = vec![None; clients.len()];
    // Chunk by client index (not by live index): contiguous chunks keep
    // the borrow checker happy and the imbalance is negligible at the
    // peer counts the sweeps use.
    let chunk = clients.len().div_ceil(threads);
    std::thread::scope(|s| {
        for ((cs, fs), ls) in clients
            .chunks_mut(chunk)
            .zip(active.chunks(chunk))
            .zip(losses.chunks_mut(chunk))
        {
            s.spawn(move || {
                for ((c, &a), l) in cs.iter_mut().zip(fs).zip(ls.iter_mut()) {
                    if a {
                        *l = Some(c.local_update(cfg).0);
                    }
                }
            });
        }
    });
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_ml::data::{features_like, partition_dataset, Partition};
    use p2pfl_ml::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global override.
    static LOCK: Mutex<()> = Mutex::new(());

    fn make_clients(n: usize, seed: u64) -> Vec<Client> {
        let data = features_like(8, n * 30, seed);
        let parts = partition_dataset(&data, n, Partition::Iid, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| Client::new(i, mlp(&[8, 8, 10], &mut rng), d, 5e-3, seed + 10 + i as u64))
            .collect()
    }

    fn digest(clients: &[Client]) -> Vec<Vec<f64>> {
        clients.iter().map(|c| c.params()).collect()
    }

    #[test]
    fn parallel_and_serial_paths_are_bit_identical() {
        let _g = LOCK.lock().unwrap();
        let cfg = LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
        };
        let mut a = make_clients(6, 42);
        let mut b = make_clients(6, 42);
        set_parallel(false);
        let la = local_updates(&mut a, cfg);
        set_parallel(true);
        let lb = local_updates(&mut b, cfg);
        reset_parallel();
        assert_eq!(la, lb, "losses diverged");
        assert_eq!(digest(&a), digest(&b), "models diverged");
    }

    #[test]
    fn masked_updates_skip_inactive_clients() {
        let _g = LOCK.lock().unwrap();
        let cfg = LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
        };
        let mut clients = make_clients(4, 7);
        let before = clients[2].params();
        let active = [true, true, false, true];
        set_parallel(true);
        let losses = local_updates_masked(&mut clients, &active, cfg);
        reset_parallel();
        assert!(losses[0].is_some() && losses[1].is_some() && losses[3].is_some());
        assert!(losses[2].is_none());
        assert_eq!(
            clients[2].params(),
            before,
            "inactive client must not train"
        );
    }

    #[test]
    fn override_toggles_and_resets() {
        let _g = LOCK.lock().unwrap();
        set_parallel(false);
        assert!(!parallel_enabled());
        set_parallel(true);
        assert!(parallel_enabled());
        reset_parallel();
        assert_eq!(parallel_enabled(), cfg!(feature = "parallel"));
    }
}
