//! FedAvg — sample-weighted model averaging (paper Sec. III-A) — plus the
//! robust combiners that bound Byzantine influence at the FedAvg layer
//! (trimmed mean, coordinate-wise median, norm clipping).
//!
//! The robust rules defend against *poisoned* group averages: a malicious
//! peer whose shares pass the SAC commitment checks can still contribute an
//! arbitrary model, contaminating its whole subgroup's average. With `f`
//! contaminated inputs out of `n`, [`coordinate_median`] (for `f < n/2`)
//! and [`trimmed_mean`] (for `f <= trim_count(n)`) keep every output
//! coordinate inside the honest inputs' `[min, max]` range, so the shift
//! from the honest-only aggregate is bounded by the honest spread — the
//! bound `B` the `ByzantineBoundedInfluence` oracle checks. [`norm_clip`]
//! instead caps each input's L2 norm at the median norm before weighting,
//! defusing norm-boost attacks while preserving sample weighting.

/// The FedAvg-layer combining rule, selected through the replicated
/// `FedConfig` (same dispatch path as the SAC engine selector) and applied
/// per round to the subgroup averages.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum RobustCombiner {
    /// Plain sample-weighted FedAvg — no Byzantine tolerance.
    #[default]
    FedAvg,
    /// Coordinate-wise trimmed mean: drop the [`trim_count`] lowest and
    /// highest values per coordinate, average the rest (unweighted).
    TrimmedMean,
    /// Coordinate-wise median (unweighted).
    Median,
    /// Clip every input to the median L2 norm, then sample-weighted FedAvg.
    NormClip,
}

/// Computes the FedAvg aggregate `Σ (n_k / n) w_k` over flat parameter
/// vectors, weighting each client's model by its sample count.
///
/// When every sample count is zero — which can legitimately happen after a
/// Byzantine eviction leaves only zero-weighted survivors — the weighting
/// is undefined and the function falls back to the unweighted mean instead
/// of panicking.
///
/// Panics if inputs are empty or lengths mismatch.
pub fn fedavg(models: &[Vec<f64>], sample_counts: &[usize]) -> Vec<f64> {
    assert!(!models.is_empty(), "fedavg over zero models");
    assert_eq!(models.len(), sample_counts.len(), "count mismatch");
    let dim = models[0].len();
    assert!(models.iter().all(|m| m.len() == dim), "dimension mismatch");
    let total: usize = sample_counts.iter().sum();
    let mut out = vec![0.0f64; dim];
    for (m, &c) in models.iter().zip(sample_counts) {
        // All-zero counts degrade to the unweighted mean.
        let w = if total > 0 {
            c as f64 / total as f64
        } else {
            1.0 / models.len() as f64
        };
        for (o, &v) in out.iter_mut().zip(m) {
            *o += w * v;
        }
    }
    out
}

/// Unweighted mean of flat parameter vectors (FedAvg with equal counts).
pub fn mean(models: &[Vec<f64>]) -> Vec<f64> {
    let counts = vec![1usize; models.len()];
    fedavg(models, &counts)
}

/// How many values [`trimmed_mean`] discards from *each* end per
/// coordinate: `min(ceil(n/4), floor((n-1)/2))`. The combiner tolerates up
/// to this many arbitrary (Byzantine) inputs; at least one value always
/// survives the trim.
pub fn trim_count(n: usize) -> usize {
    n.div_ceil(4).min(n.saturating_sub(1) / 2)
}

/// Coordinate-wise trimmed mean: per coordinate, sort, drop the
/// [`trim_count`] lowest and highest values, and average the remainder
/// (unweighted — sample weights would let a Byzantine input buy influence).
///
/// With `f <= trim_count(n)` arbitrary inputs, every surviving sorted
/// position is bracketed by honest values, so each output coordinate lies
/// within the honest inputs' `[min, max]`.
pub fn trimmed_mean(models: &[Vec<f64>]) -> Vec<f64> {
    assert!(!models.is_empty(), "trimmed_mean over zero models");
    let dim = models[0].len();
    assert!(models.iter().all(|m| m.len() == dim), "dimension mismatch");
    let t = trim_count(models.len());
    let mut column = vec![0.0f64; models.len()];
    (0..dim)
        .map(|j| {
            for (c, m) in column.iter_mut().zip(models) {
                *c = m[j];
            }
            column.sort_by(f64::total_cmp);
            let kept = &column[t..models.len() - t];
            kept.iter().sum::<f64>() / kept.len() as f64
        })
        .collect()
}

/// Coordinate-wise median (unweighted; even counts average the two middle
/// values). Robust to any `f < n/2` arbitrary inputs: each output
/// coordinate lies within the honest inputs' `[min, max]`.
pub fn coordinate_median(models: &[Vec<f64>]) -> Vec<f64> {
    assert!(!models.is_empty(), "median over zero models");
    let dim = models[0].len();
    assert!(models.iter().all(|m| m.len() == dim), "dimension mismatch");
    let n = models.len();
    let mut column = vec![0.0f64; n];
    (0..dim)
        .map(|j| {
            for (c, m) in column.iter_mut().zip(models) {
                *c = m[j];
            }
            column.sort_by(f64::total_cmp);
            if n % 2 == 1 {
                column[n / 2]
            } else {
                (column[n / 2 - 1] + column[n / 2]) / 2.0
            }
        })
        .collect()
}

/// Norm clipping: scale every model whose L2 norm exceeds the median norm
/// down to it, then sample-weighted [`fedavg`]. A norm-boosted Byzantine
/// input is capped at the median norm (which, for `f < n/2` adversaries,
/// is itself bracketed by honest norms), so the aggregate's norm never
/// exceeds the clip threshold. Reduces to plain FedAvg when all input
/// norms are equal (no clipping triggers).
pub fn norm_clip(models: &[Vec<f64>], sample_counts: &[usize]) -> Vec<f64> {
    assert!(!models.is_empty(), "norm_clip over zero models");
    let l2 = |m: &[f64]| m.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut norms: Vec<f64> = models.iter().map(|m| l2(m)).collect();
    norms.sort_by(f64::total_cmp);
    let n = norms.len();
    let tau = if n % 2 == 1 {
        norms[n / 2]
    } else {
        (norms[n / 2 - 1] + norms[n / 2]) / 2.0
    };
    let clipped: Vec<Vec<f64>> = models
        .iter()
        .map(|m| {
            let norm = l2(m);
            if norm > tau && norm > 0.0 {
                let s = tau / norm;
                m.iter().map(|x| x * s).collect()
            } else {
                m.clone()
            }
        })
        .collect();
    fedavg(&clipped, sample_counts)
}

/// Dispatches on the replicated combiner selection. The robust rules
/// ignore sample counts by design (see [`trimmed_mean`]).
pub fn combine(combiner: RobustCombiner, models: &[Vec<f64>], sample_counts: &[usize]) -> Vec<f64> {
    match combiner {
        RobustCombiner::FedAvg => fedavg(models, sample_counts),
        RobustCombiner::TrimmedMean => trimmed_mean(models),
        RobustCombiner::Median => coordinate_median(models),
        RobustCombiner::NormClip => norm_clip(models, sample_counts),
    }
}

/// Collapses per-peer models into per-group sample-weighted means plus
/// group sample totals — the shape the FedAvg layer aggregates after an
/// elastic split or merge re-groups the peers. Weighting each group mean
/// by its sample total makes [`fedavg`] grouping-invariant: any partition
/// of the same peer set yields the same global model (up to float
/// rounding), so a topology transition only rebalances the weights
/// through the sample counts the new rosters already carry — no explicit
/// correction term exists to forget.
pub fn regroup(
    models: &[Vec<f64>],
    sample_counts: &[usize],
    groups: &[Vec<usize>],
) -> (Vec<Vec<f64>>, Vec<usize>) {
    assert_eq!(models.len(), sample_counts.len());
    let mut group_models = Vec::with_capacity(groups.len());
    let mut group_counts = Vec::with_capacity(groups.len());
    for g in groups {
        assert!(!g.is_empty(), "regroup over an empty subgroup");
        let members: Vec<Vec<f64>> = g.iter().map(|&i| models[i].clone()).collect();
        let counts: Vec<usize> = g.iter().map(|&i| sample_counts[i]).collect();
        group_models.push(fedavg(&members, &counts));
        group_counts.push(counts.iter().sum());
    }
    (group_models, group_counts)
}

/// The per-coordinate spread `max - min` of a model set, reduced to its
/// maximum over coordinates — the bound `B` on how far a robust combiner's
/// output can sit from the honest-only aggregate (both lie inside the
/// honest per-coordinate envelope).
pub fn spread_linf(models: &[Vec<f64>]) -> f64 {
    assert!(!models.is_empty(), "spread of zero models");
    let dim = models[0].len();
    (0..dim)
        .map(|j| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for m in models {
                lo = lo.min(m[j]);
                hi = hi.max(m[j]);
            }
            hi - lo
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_counts_is_plain_mean() {
        let models = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(fedavg(&models, &[5, 5]), vec![2.0, 3.0]);
        assert_eq!(mean(&models), vec![2.0, 3.0]);
    }

    #[test]
    fn weighting_follows_sample_counts() {
        let models = vec![vec![0.0], vec![10.0]];
        // 1:3 weighting -> 7.5
        assert_eq!(fedavg(&models, &[1, 3]), vec![7.5]);
    }

    #[test]
    fn single_model_is_identity() {
        let models = vec![vec![1.5, -2.5]];
        assert_eq!(fedavg(&models, &[42]), models[0]);
    }

    #[test]
    fn zero_count_model_is_ignored() {
        let models = vec![vec![100.0], vec![2.0]];
        assert_eq!(fedavg(&models, &[0, 1]), vec![2.0]);
    }

    #[test]
    fn all_zero_counts_fall_back_to_mean() {
        // Byzantine eviction can zero-weight every survivor; the aggregate
        // must degrade to the unweighted mean, not panic.
        assert_eq!(fedavg(&[vec![1.0]], &[0]), vec![1.0]);
        let models = vec![vec![2.0, 8.0], vec![4.0, 0.0]];
        assert_eq!(fedavg(&models, &[0, 0]), vec![3.0, 4.0]);
    }

    #[test]
    fn trim_count_keeps_at_least_one() {
        assert_eq!(trim_count(1), 0);
        assert_eq!(trim_count(2), 0);
        assert_eq!(trim_count(3), 1);
        assert_eq!(trim_count(4), 1);
        assert_eq!(trim_count(5), 2);
        assert_eq!(trim_count(8), 2);
        for n in 1..64 {
            assert!(n - 2 * trim_count(n) >= 1, "n={n} trims everything");
        }
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // One huge outlier among four: trim_count(4) = 1 discards it.
        let models = vec![vec![1.0], vec![2.0], vec![3.0], vec![1e9]];
        assert_eq!(trimmed_mean(&models), vec![2.5]);
    }

    #[test]
    fn median_odd_and_even() {
        let odd = vec![vec![1.0], vec![9.0], vec![2.0]];
        assert_eq!(coordinate_median(&odd), vec![2.0]);
        let even = vec![vec![1.0], vec![3.0], vec![9.0], vec![2.0]];
        assert_eq!(coordinate_median(&even), vec![2.5]);
    }

    #[test]
    fn norm_clip_caps_boosted_inputs() {
        // Three unit-norm honest models and one boosted 100x: the clipped
        // aggregate's norm stays at or under the median norm.
        let models = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![100.0, 0.0],
        ];
        let out = norm_clip(&models, &[1, 1, 1, 1]);
        let norm = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-12, "clip failed: |out| = {norm}");
    }

    #[test]
    fn norm_clip_with_equal_norms_is_fedavg() {
        let models = vec![vec![3.0, 4.0], vec![-4.0, 3.0], vec![0.0, 5.0]];
        assert_eq!(norm_clip(&models, &[1, 2, 3]), fedavg(&models, &[1, 2, 3]));
    }

    #[test]
    fn combine_dispatches() {
        let models = vec![vec![1.0], vec![2.0], vec![30.0]];
        let counts = [1, 1, 1];
        assert_eq!(
            combine(RobustCombiner::FedAvg, &models, &counts),
            vec![11.0]
        );
        assert_eq!(combine(RobustCombiner::Median, &models, &counts), vec![2.0]);
        assert_eq!(
            combine(RobustCombiner::TrimmedMean, &models, &counts),
            vec![2.0],
            "trim_count(3)=1 leaves the median"
        );
    }

    #[test]
    fn regroup_is_grouping_invariant() {
        // Any partition of the peers — including the re-partitions an
        // elastic split or merge produces — yields the same FedAvg global
        // model, because group means are re-weighted by group sample
        // totals. This is the weight-rebalance guarantee the elastic
        // supervisor relies on.
        let models: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                vec![
                    i as f64 * 1.7 - 2.0,
                    (i * i) as f64 * 0.3,
                    1.0 / (i + 1) as f64,
                ]
            })
            .collect();
        let counts = [7usize, 1, 12, 3, 5];
        let flat = fedavg(&models, &counts);
        for groups in [
            vec![vec![0, 1], vec![2, 3, 4]],       // pre-split layout
            vec![vec![0], vec![1, 2], vec![3, 4]], // post-split layout
            vec![vec![0, 1, 2, 3, 4]],             // post-merge layout
        ] {
            let (gm, gc) = regroup(&models, &counts, &groups);
            let global = fedavg(&gm, &gc);
            for (a, b) in global.iter().zip(&flat) {
                assert!((a - b).abs() < 1e-12, "grouping changed the model");
            }
        }
    }

    #[test]
    fn spread_is_max_coordinate_range() {
        let models = vec![vec![1.0, 10.0], vec![2.0, 4.0]];
        assert_eq!(spread_linf(&models), 6.0);
    }
}
