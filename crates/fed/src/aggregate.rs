//! FedAvg — sample-weighted model averaging (paper Sec. III-A).

/// Computes the FedAvg aggregate `Σ (n_k / n) w_k` over flat parameter
/// vectors, weighting each client's model by its sample count.
///
/// Panics if inputs are empty, lengths mismatch, or all counts are zero.
pub fn fedavg(models: &[Vec<f64>], sample_counts: &[usize]) -> Vec<f64> {
    assert!(!models.is_empty(), "fedavg over zero models");
    assert_eq!(models.len(), sample_counts.len(), "count mismatch");
    let dim = models[0].len();
    assert!(models.iter().all(|m| m.len() == dim), "dimension mismatch");
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "all sample counts are zero");
    let mut out = vec![0.0f64; dim];
    for (m, &c) in models.iter().zip(sample_counts) {
        let w = c as f64 / total as f64;
        for (o, &v) in out.iter_mut().zip(m) {
            *o += w * v;
        }
    }
    out
}

/// Unweighted mean of flat parameter vectors (FedAvg with equal counts).
pub fn mean(models: &[Vec<f64>]) -> Vec<f64> {
    let counts = vec![1usize; models.len()];
    fedavg(models, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_counts_is_plain_mean() {
        let models = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(fedavg(&models, &[5, 5]), vec![2.0, 3.0]);
        assert_eq!(mean(&models), vec![2.0, 3.0]);
    }

    #[test]
    fn weighting_follows_sample_counts() {
        let models = vec![vec![0.0], vec![10.0]];
        // 1:3 weighting -> 7.5
        assert_eq!(fedavg(&models, &[1, 3]), vec![7.5]);
    }

    #[test]
    fn single_model_is_identity() {
        let models = vec![vec![1.5, -2.5]];
        assert_eq!(fedavg(&models, &[42]), models[0]);
    }

    #[test]
    fn zero_count_model_is_ignored() {
        let models = vec![vec![100.0], vec![2.0]];
        assert_eq!(fedavg(&models, &[0, 1]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "all sample counts are zero")]
    fn all_zero_counts_panics() {
        fedavg(&[vec![1.0]], &[0]);
    }
}
