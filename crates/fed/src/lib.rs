//! # p2pfl-fed — federated averaging substrate
//!
//! Classic FedAvg (paper Sec. III-A): sample-weighted model averaging
//! ([`fedavg`]), a [`Client`] abstraction holding a private dataset and an
//! Adam optimizer, and a centralized [`FedAvgSession`] round loop that the
//! two-layer system composes and benchmarks against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod client;
pub mod parallel;
mod round;

pub use aggregate::{
    combine, coordinate_median, fedavg, mean, norm_clip, regroup, spread_linf, trim_count,
    trimmed_mean, RobustCombiner,
};
pub use client::{Client, LocalTrainConfig};
pub use round::{FedAvgSession, RoundRecord};
