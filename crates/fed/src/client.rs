//! A federated-learning client: local model + private data + optimizer.

use p2pfl_ml::data::Dataset;
use p2pfl_ml::metrics::evaluate;
use p2pfl_ml::optim::Adam;
use p2pfl_ml::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters of a local update (paper Sec. VI-A1: 1 epoch, batch 50,
/// Adam with lr 1e-4).
#[derive(Debug, Clone, Copy)]
pub struct LocalTrainConfig {
    /// Epochs per round.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig {
            epochs: 1,
            batch_size: 50,
        }
    }
}

/// One peer's learning state.
pub struct Client {
    /// Stable client id (used for reporting only).
    pub id: usize,
    model: Sequential,
    data: Dataset,
    opt: Adam,
    rng: StdRng,
}

impl Client {
    /// Creates a client with its private dataset and an Adam optimizer with
    /// the given learning rate.
    pub fn new(id: usize, model: Sequential, data: Dataset, lr: f32, seed: u64) -> Self {
        Client {
            id,
            model,
            data,
            opt: Adam::new(lr),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of local training samples (`n_k` in the FedAvg update law).
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// Flat view of the current local model parameters.
    pub fn params(&self) -> Vec<f64> {
        self.model.params_flat()
    }

    /// Installs the new global model.
    pub fn set_params(&mut self, flat: &[f64]) {
        self.model.set_params_flat(flat);
    }

    /// Runs the local update (paper "local update" step) and returns the
    /// mean `(loss, accuracy)` over the processed batches.
    pub fn local_update(&mut self, cfg: LocalTrainConfig) -> (f64, f64) {
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for _ in 0..cfg.epochs {
            for idx in self.data.minibatch_indices(cfg.batch_size, &mut self.rng) {
                let (x, y) = self.data.gather(&idx);
                let (loss, acc) = self.model.train_batch(&x, &y, &mut self.opt);
                loss_sum += loss as f64;
                acc_sum += acc;
                batches += 1;
            }
        }
        if batches == 0 {
            return (0.0, 0.0);
        }
        (loss_sum / batches as f64, acc_sum / batches as f64)
    }

    /// Evaluates the local model on an external dataset.
    pub fn evaluate_on(&mut self, data: &Dataset, batch_size: usize) -> (f64, f64) {
        evaluate(&mut self.model, data, batch_size)
    }

    /// Read access to the local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Mutable access to the model (used by tests and examples).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_ml::data::{features_like, train_test_split};
    use p2pfl_ml::models::mlp;

    fn make_client(seed: u64) -> (Client, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = mlp(&[16, 24, 10], &mut rng);
        // Train and test must share class prototypes: draw one pool.
        let (data, test) = train_test_split(&features_like(16, 320, 100), 120);
        (Client::new(0, model, data, 5e-3, seed), test)
    }

    #[test]
    fn local_update_reduces_loss() {
        let (mut c, test) = make_client(1);
        let (before, _) = c.evaluate_on(&test, 64);
        for _ in 0..30 {
            c.local_update(LocalTrainConfig {
                epochs: 1,
                batch_size: 32,
            });
        }
        let (after, acc) = c.evaluate_on(&test, 64);
        assert!(after < before, "loss {before} -> {after}");
        assert!(acc > 0.2, "accuracy {acc}");
    }

    #[test]
    fn params_round_trip() {
        let (c, _) = make_client(2);
        let p = c.params();
        let (mut c2, _) = make_client(3);
        c2.set_params(&p);
        assert_eq!(c2.params(), p);
    }

    #[test]
    fn sample_count_reflects_data() {
        let (c, _) = make_client(4);
        assert_eq!(c.num_samples(), 120);
    }
}
