//! Centralized FedAvg round loop — the classic server-based FL baseline and
//! the building block the two-layer system composes.

use crate::aggregate::fedavg;
use crate::client::{Client, LocalTrainConfig};
use p2pfl_ml::data::Dataset;
use p2pfl_ml::metrics::evaluate;
use p2pfl_ml::Sequential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-round record of the global model's quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round number (1-based).
    pub round: usize,
    /// Mean training loss reported by the participating clients.
    pub train_loss: f64,
    /// Test loss of the aggregated global model.
    pub test_loss: f64,
    /// Test accuracy of the aggregated global model.
    pub test_accuracy: f64,
}

/// A FedAvg training session over a set of clients.
pub struct FedAvgSession {
    clients: Vec<Client>,
    global: Vec<f64>,
    eval_model: Sequential,
    cfg: LocalTrainConfig,
    rng: StdRng,
    /// Fraction of clients sampled each round (1.0 = all).
    pub client_fraction: f64,
}

impl FedAvgSession {
    /// Creates a session. `eval_model` is an architecture twin used to
    /// evaluate the global parameters; its initial parameters become the
    /// initial global model that is pushed to every client.
    pub fn new(
        clients: Vec<Client>,
        eval_model: Sequential,
        cfg: LocalTrainConfig,
        seed: u64,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        let global = eval_model.params_flat();
        let mut s = FedAvgSession {
            clients,
            global,
            eval_model,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            client_fraction: 1.0,
        };
        s.push_global();
        s
    }

    /// The current global parameters.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn push_global(&mut self) {
        for c in &mut self.clients {
            c.set_params(&self.global);
        }
    }

    /// Samples the participating clients for one round.
    fn sample_round(&mut self) -> Vec<usize> {
        let n = self.clients.len();
        let take = ((n as f64 * self.client_fraction).round() as usize).clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(take);
        idx.sort_unstable();
        idx
    }

    /// Runs one round: local updates on the sampled clients, FedAvg, global
    /// distribution, evaluation on `test`.
    pub fn run_round(&mut self, round: usize, test: &Dataset) -> RoundRecord {
        let selected = self.sample_round();
        let mut models = Vec::with_capacity(selected.len());
        let mut counts = Vec::with_capacity(selected.len());
        let mut train_loss = 0.0f64;
        for &i in &selected {
            let c = &mut self.clients[i];
            let (loss, _) = c.local_update(self.cfg);
            train_loss += loss;
            models.push(c.params());
            counts.push(c.num_samples());
        }
        train_loss /= selected.len() as f64;
        self.global = fedavg(&models, &counts);
        self.push_global();
        self.eval_model.set_params_flat(&self.global);
        let (test_loss, test_accuracy) = evaluate(&mut self.eval_model, test, 128);
        RoundRecord {
            round,
            train_loss,
            test_loss,
            test_accuracy,
        }
    }

    /// Runs `rounds` rounds, returning the per-round records.
    pub fn run(&mut self, rounds: usize, test: &Dataset) -> Vec<RoundRecord> {
        (1..=rounds).map(|r| self.run_round(r, test)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
    use p2pfl_ml::models::mlp;

    fn session(num_clients: usize, partition: Partition, seed: u64) -> (FedAvgSession, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Train and test share prototypes (single draw, then split).
        let (train, test) = train_test_split(&features_like(16, 900, seed), 600);
        let parts = partition_dataset(&train, num_clients, partition, seed + 2);
        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let model = mlp(&[16, 24, 10], &mut rng);
                Client::new(i, model, d, 5e-3, seed + 10 + i as u64)
            })
            .collect();
        let eval = mlp(&[16, 24, 10], &mut rng);
        let cfg = LocalTrainConfig {
            epochs: 1,
            batch_size: 32,
        };
        (FedAvgSession::new(clients, eval, cfg, seed + 50), test)
    }

    #[test]
    fn fedavg_learns_iid() {
        let (mut s, test) = session(4, Partition::Iid, 1);
        let records = s.run(25, &test);
        let first = records.first().unwrap();
        let last = records.last().unwrap();
        assert!(
            last.test_accuracy > first.test_accuracy + 0.15,
            "accuracy {:.3} -> {:.3}",
            first.test_accuracy,
            last.test_accuracy
        );
        assert!(last.test_loss < first.test_loss);
    }

    #[test]
    fn global_model_is_shared_after_round() {
        let (mut s, test) = session(3, Partition::Iid, 2);
        s.run_round(1, &test);
        let g = s.global().to_vec();
        for c in &s.clients {
            // Clients store f32, so compare up to the quantization error.
            let max_err = c
                .params()
                .iter()
                .zip(&g)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-6, "client diverged from global by {max_err}");
        }
    }

    #[test]
    fn client_fraction_samples_subset() {
        let (mut s, _) = session(10, Partition::Iid, 3);
        s.client_fraction = 0.3;
        let picked = s.sample_round();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "no duplicates");
    }

    #[test]
    fn non_iid_converges_slower_than_iid() {
        let rounds = 20;
        let (mut iid, test) = session(4, Partition::Iid, 4);
        let (mut skew, _) = session(4, Partition::NON_IID_0, 4);
        let a_iid = iid.run(rounds, &test).last().unwrap().test_accuracy;
        let a_skew = skew.run(rounds, &test).last().unwrap().test_accuracy;
        assert!(
            a_iid >= a_skew,
            "IID {a_iid:.3} should beat Non-IID(0%) {a_skew:.3}"
        );
    }
}
