//! Durable two-layer Raft state: a storage-backed peer rebuilt purely from
//! its persisted record recovers both its subgroup Raft state and (if it
//! held one) its FedAvg-layer seat.

use p2pfl_hierraft::{FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner, SubCmd};
use p2pfl_raft::MemStorage;
use p2pfl_secagg::SacEngine;
use p2pfl_simnet::{Latency, LatencyConfig, NodeId, Sim, SimDuration, SimTime};

const SUBGROUPS: usize = 2;
const SIZE: usize = 3;

fn peer_cfg(id: NodeId, subgroup: Vec<NodeId>, gi: usize, founding: Vec<NodeId>) -> HierPeerConfig {
    HierPeerConfig {
        id,
        subgroup,
        subgroup_index: gi,
        founding_fed: founding,
        t: SimDuration::from_millis(100),
        heartbeat: SimDuration::from_millis(20),
        config_commit_interval: SimDuration::from_millis(200),
        join_poll_interval: SimDuration::from_millis(100),
        probe_interval: SimDuration::from_millis(20),
        suspect_after: SimDuration::from_millis(100),
        dead_after: SimDuration::from_millis(300),
        engine: SacEngine::Pairwise,
        combiner: RobustCombiner::FedAvg,
        seed: 0x9e37 + id.0 as u64 * 0x85eb_ca6b,
        elastic: None,
    }
}

#[test]
fn storage_backed_peer_recovers_both_layers() {
    let mut sim: Sim<HierMsg> = Sim::new(42);
    sim.set_latency(LatencyConfig::uniform_default(Latency::Constant(
        SimDuration::from_millis(15),
    )));
    let subgroups: Vec<Vec<NodeId>> = (0..SUBGROUPS)
        .map(|g| (0..SIZE).map(|i| NodeId((g * SIZE + i) as u32)).collect())
        .collect();
    let founding: Vec<NodeId> = subgroups.iter().map(|g| g[0]).collect();

    let sub_stores: Vec<MemStorage<SubCmd>> =
        (0..SUBGROUPS * SIZE).map(|_| MemStorage::new()).collect();
    let fed_stores: Vec<MemStorage<FedCmd>> =
        (0..SUBGROUPS * SIZE).map(|_| MemStorage::new()).collect();

    for (gi, members) in subgroups.iter().enumerate() {
        for &id in members {
            let cfg = peer_cfg(id, members.clone(), gi, founding.clone());
            let actor = HierActor::with_storage(
                cfg,
                Box::new(sub_stores[id.0 as usize].clone()),
                Box::new(fed_stores[id.0 as usize].clone()),
            );
            assert_eq!(sim.add_node(actor), id);
        }
    }

    sim.run_until(SimTime::from_secs(5));
    let rep = founding[0];
    {
        let a = sim.actor::<HierActor>(rep);
        assert!(a.is_sub_leader(), "founding member should lead subgroup 0");
        assert!(a.is_fed_member(), "subgroup leader should hold a fed seat");
    }

    // Commit traffic on both layers so there is real state to recover.
    sim.exec::<HierActor, _, _>(rep, |a, ctx| {
        a.propose_sub(ctx, 7).unwrap();
    });
    let fed_leader = (0..SUBGROUPS * SIZE)
        .map(|i| NodeId(i as u32))
        .find(|&id| sim.actor::<HierActor>(id).is_fed_leader())
        .expect("fed layer should have a leader");
    sim.exec::<HierActor, _, _>(fed_leader, |a, ctx| {
        a.propose_fed(ctx, FedCmd::Round(999)).unwrap();
    });
    sim.run_for(SimDuration::from_secs(2));

    let (sub_term, sub_last, fed_term, fed_last) = {
        let a = sim.actor::<HierActor>(rep);
        assert!(a.sub_cmds_applied.contains(&7));
        assert!(a.fed_rounds_applied().contains(&999));
        let fed = a.fed_raft().expect("rep holds a fed seat");
        (
            a.sub_raft().term(),
            a.sub_raft().log().last_index(),
            fed.term(),
            fed.log().last_index(),
        )
    };
    assert!(sub_last > 0 && fed_last > 0);

    // Rebuild the representative purely from its storage handles — the
    // simulated process is gone; only the persisted record survives.
    let rebuilt = HierActor::with_storage(
        peer_cfg(rep, subgroups[0].clone(), 0, founding.clone()),
        Box::new(sub_stores[rep.0 as usize].clone()),
        Box::new(fed_stores[rep.0 as usize].clone()),
    );
    assert_eq!(rebuilt.sub_raft().term(), sub_term);
    assert_eq!(rebuilt.sub_raft().log().last_index(), sub_last);
    assert!(
        rebuilt.is_fed_member(),
        "restored rep must rejoin the FedAvg layer"
    );
    let fed = rebuilt.fed_raft().unwrap();
    assert_eq!(fed.term(), fed_term);
    assert_eq!(fed.log().last_index(), fed_last);
    assert!(!rebuilt.is_sub_leader(), "restarts as a follower");

    // A plain follower has no fed record: it restores without a fed seat.
    let follower = subgroups[0][1];
    let rebuilt = HierActor::with_storage(
        peer_cfg(follower, subgroups[0].clone(), 0, founding),
        Box::new(sub_stores[follower.0 as usize].clone()),
        Box::new(fed_stores[follower.0 as usize].clone()),
    );
    assert_eq!(rebuilt.sub_raft().term(), sub_term);
    assert!(!rebuilt.is_fed_member());
}
