//! Edge topologies for the two-layer Raft: degenerate shapes a downstream
//! user will eventually configure.

use p2pfl_hierraft::{Deployment, DeploymentSpec, HierActor};
use p2pfl_simnet::{SimDuration, SimTime};

fn spec(m: usize, n: usize, seed: u64) -> DeploymentSpec {
    let mut s = DeploymentSpec::paper(100, seed);
    s.num_subgroups = m;
    s.subgroup_size = n;
    s
}

#[test]
fn single_subgroup_deployment_stabilizes() {
    // m = 1: the FedAvg layer is a single-member Raft (the subgroup
    // leader), which must elect itself and stay stable.
    let mut d = Deployment::build(spec(1, 3, 1));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let leader = d.sub_leader_of(0).unwrap();
    assert_eq!(d.fed_leader(), Some(leader));
}

#[test]
fn two_peer_subgroups_have_no_follower_tolerance() {
    // n = 2: subgroup quorum is 2, so losing the follower stalls the
    // subgroup (the paper's reason for requiring n >= 3).
    let mut d = Deployment::build(spec(3, 2, 2));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let leader = d.sub_leader_of(0).unwrap();
    let follower = *d.subgroups[0].iter().find(|&&p| p != leader).unwrap();
    let at = d.sim.now() + SimDuration::from_millis(1);
    d.sim.schedule_crash(follower, at);
    d.sim.run_for(SimDuration::from_secs(2));
    // The leader cannot commit (no quorum) but also must not lose its
    // role to anyone — there is nobody left to elect.
    let a = d.sim.actor::<HierActor>(leader);
    assert!(a.is_sub_leader() || d.sub_leader_of(0).is_none());
    // The rest of the system keeps running.
    assert!(d.sub_leader_of(1).is_some());
    assert!(d.fed_leader().is_some());
}

#[test]
fn wide_flat_deployment_stabilizes() {
    // Many small subgroups: m = 8, n = 3 (24 peers, FedAvg layer of 8).
    let mut d = Deployment::build(spec(8, 3, 3));
    assert!(d.wait_stable(SimTime::from_secs(15)));
    for g in 0..8 {
        let l = d.sub_leader_of(g).unwrap();
        assert!(d.sim.actor::<HierActor>(l).is_fed_member(), "subgroup {g}");
    }
}

#[test]
fn config_commits_propagate_to_every_member() {
    // After stability plus a few config-commit intervals, every live peer
    // must know the *current* FedAvg-layer membership through its
    // subgroup log.
    let mut d = Deployment::build(spec(3, 3, 4));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    d.sim.run_for(SimDuration::from_secs(2)); // several commit ticks
    let fed_members: Vec<_> = (0..3).map(|g| d.sub_leader_of(g).unwrap()).collect();
    for g in 0..3 {
        for &m in &d.subgroups[g].clone() {
            let a = d.sim.actor::<HierActor>(m);
            for fm in &fed_members {
                assert!(
                    a.fed_config.current.contains(fm),
                    "peer {m} is missing {fm} in its replicated FedAvg config"
                );
            }
        }
    }
}

#[test]
fn deployments_with_different_timeouts_all_stabilize() {
    for (t, seed) in [(50u64, 10u64), (150, 11), (200, 12)] {
        let mut s = DeploymentSpec::paper(t, seed);
        s.num_subgroups = 3;
        s.subgroup_size = 3;
        let mut d = Deployment::build(s);
        assert!(
            d.wait_stable(SimTime::from_secs(20)),
            "T={t} failed to stabilize"
        );
    }
}
