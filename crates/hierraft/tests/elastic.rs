//! Elastic topology end-to-end on the simulator: replicated split/merge
//! transitions with re-keying, rendezvous admission of unplaced joiners,
//! and the idempotence of duplicate admissions.

use p2pfl_hierraft::{Deployment, DeploymentSpec, ElasticBounds, HierActor, Topology, TopologyCmd};
use p2pfl_simnet::{NodeId, SimDuration, SimTime};

fn elastic_spec(seed: u64) -> DeploymentSpec {
    let mut spec = DeploymentSpec::paper(100, seed);
    spec.num_subgroups = 2;
    spec.subgroup_size = 4;
    spec.elastic = Some(ElasticBounds::new(2, 6));
    spec
}

/// Runs in settle-sized steps until `pred` holds against the freshest
/// adopted layout, refreshing the deployment's subgroup view each step.
fn wait_elastic(
    d: &mut Deployment,
    deadline: SimTime,
    mut pred: impl FnMut(&Deployment, &Topology) -> bool,
) -> bool {
    loop {
        let t = d.refresh_subgroups();
        if pred(d, &t) {
            return true;
        }
        if d.sim.now() >= deadline {
            return false;
        }
        d.sim.run_for(SimDuration::from_millis(20));
    }
}

#[test]
fn split_transitions_every_member_and_restabilizes() {
    let mut d = Deployment::build(elastic_spec(21));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let t0 = d.latest_topology();
    let g0 = t0.groups[0].clone();
    let (left, right) = (g0.members[..2].to_vec(), g0.members[2..].to_vec());
    let fl = d.fed_leader().unwrap();
    d.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
        a.propose_topology(
            ctx,
            TopologyCmd::Split {
                gid: g0.gid,
                left: left.clone(),
                right: right.clone(),
            },
        )
        .unwrap();
    });
    // Every member of the parent adopts its half and re-keys exactly once.
    let deadline = d.sim.now() + SimDuration::from_secs(20);
    assert!(
        wait_elastic(&mut d, deadline, |d, t| {
            t.version == 1
                && g0.members.iter().all(|&m| {
                    let a = d.sim.actor::<HierActor>(m);
                    a.rekeys == 1 && a.topology.version == 1
                })
        }),
        "split never adopted everywhere"
    );
    let t = d.latest_topology();
    assert_eq!(t.groups.len(), 3);
    assert!(t.group(g0.gid).is_none(), "parent gid must be retired");
    for (half, members) in [(0, &left), (1, &right)] {
        let g = t
            .groups
            .iter()
            .find(|g| &g.members == members)
            .unwrap_or_else(|| panic!("half {half} missing from layout"));
        for &m in &g.members {
            assert_eq!(d.sim.actor::<HierActor>(m).subgroup(), &g.members[..]);
        }
    }
    // The split was counted where it was applied (the FedAvg members).
    let splits: u64 = (0..d.sim.node_count())
        .map(|i| d.sim.actor::<HierActor>(NodeId(i as u32)).splits)
        .sum();
    assert!(splits >= 1, "no fed member counted the split");
    // Both halves elect leaders that hold FedAvg seats again.
    let deadline = d.sim.now() + SimDuration::from_secs(30);
    assert!(
        wait_elastic(&mut d, deadline, |d, _| d.is_stable()),
        "post-split deployment never restabilized"
    );
}

#[test]
fn merge_reunites_and_rekeys_with_fresh_keys() {
    let mut d = Deployment::build(elastic_spec(22));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let t0 = d.latest_topology();
    let g0 = t0.groups[0].clone();
    let fl = d.fed_leader().unwrap();
    d.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
        a.propose_topology(
            ctx,
            TopologyCmd::Split {
                gid: g0.gid,
                left: g0.members[..2].to_vec(),
                right: g0.members[2..].to_vec(),
            },
        )
        .unwrap();
    });
    let deadline = d.sim.now() + SimDuration::from_secs(30);
    assert!(wait_elastic(&mut d, deadline, |d, t| {
        t.version == 1 && d.is_stable()
    }));
    // Merge the two halves back together.
    let t = d.latest_topology();
    let halves: Vec<u64> = t
        .groups
        .iter()
        .filter(|g| g.members.iter().all(|m| g0.members.contains(m)))
        .map(|g| g.gid)
        .collect();
    assert_eq!(halves.len(), 2);
    let fl = d.fed_leader().unwrap();
    let (into, from) = (halves[0], halves[1]);
    d.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
        a.propose_topology(ctx, TopologyCmd::Merge { into, from })
            .unwrap();
    });
    let deadline = d.sim.now() + SimDuration::from_secs(30);
    assert!(
        wait_elastic(&mut d, deadline, |d, t| {
            t.version == 2
                && g0.members.iter().all(|&m| {
                    let a = d.sim.actor::<HierActor>(m);
                    a.rekeys == 2 && a.subgroup() == &g0.members[..]
                })
                && d.is_stable()
        }),
        "merge never adopted everywhere"
    );
    let merges: u64 = (0..d.sim.node_count())
        .map(|i| d.sim.actor::<HierActor>(NodeId(i as u32)).merges)
        .sum();
    assert!(merges >= 1, "no fed member counted the merge");
    // NoMaskReuseAcrossRekey: even though the merged roster equals the
    // original one, every mask-domain key in every member's history is
    // fresh — the ordinal in the key derivation guarantees it.
    for &m in &g0.members {
        let hist = &d.sim.actor::<HierActor>(m).rekey_history;
        assert_eq!(hist.len(), 2);
        let mut dedup = hist.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hist.len(), "peer {m:?} reused a mask key");
    }
}

#[test]
fn rendezvous_joiner_is_admitted_into_smallest_group() {
    let mut d = Deployment::build(elastic_spec(23));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let joiner = d.spawn_joiner();
    let deadline = d.sim.now() + SimDuration::from_secs(30);
    assert!(
        wait_elastic(&mut d, deadline, |d, t| {
            t.group_of(joiner).is_some()
                && !d.sim.actor::<HierActor>(joiner).is_pending_rendezvous()
        }),
        "joiner never placed"
    );
    let t = d.latest_topology();
    let placed: Vec<u64> = t
        .groups
        .iter()
        .filter(|g| g.members.contains(&joiner))
        .map(|g| g.gid)
        .collect();
    assert_eq!(placed.len(), 1, "joiner must live in exactly one subgroup");
    let a = d.sim.actor::<HierActor>(joiner);
    assert!(a.subgroup().contains(&joiner));
    assert_eq!(a.rekeys, 1, "admission is a re-key for the joiner");
}

#[test]
fn duplicate_admit_is_idempotent() {
    // Regression: a stale rendezvous retry used to double-insert the
    // joiner into a second subgroup. A duplicate Admit — even one naming a
    // *different* group — must now be a no-op that bumps nothing.
    let mut d = Deployment::build(elastic_spec(24));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let joiner = d.spawn_joiner();
    let deadline = d.sim.now() + SimDuration::from_secs(30);
    assert!(wait_elastic(&mut d, deadline, |d, t| {
        t.group_of(joiner).is_some() && !d.sim.actor::<HierActor>(joiner).is_pending_rendezvous()
    }));
    let before = d.latest_topology();
    let home = before.group_of(joiner).unwrap().gid;
    let other = before
        .groups
        .iter()
        .map(|g| g.gid)
        .find(|&g| g != home)
        .unwrap();
    // Replay the admission twice: once toward the committed group, once
    // toward a different one (the stale-retry shape).
    for gid in [home, other] {
        let fl = d.fed_leader().unwrap();
        d.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
            a.propose_topology(ctx, TopologyCmd::Admit { peer: joiner, gid })
                .unwrap();
        });
        d.sim.run_for(SimDuration::from_millis(500));
    }
    let after = d.refresh_subgroups();
    assert_eq!(
        after.version, before.version,
        "duplicate admits must not bump the layout version"
    );
    let placed = after
        .groups
        .iter()
        .filter(|g| g.members.contains(&joiner))
        .count();
    assert_eq!(placed, 1, "joiner duplicated into {placed} subgroups");
    assert_eq!(
        d.sim.actor::<HierActor>(joiner).rekeys,
        1,
        "a no-op admit must not force a re-key"
    );
}
