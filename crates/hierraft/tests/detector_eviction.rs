//! Detector-driven self-healing of the aggregation roster, at deployment
//! level: confirmed-dead members are evicted from the replicated member
//! list, suspected-but-recovering members never are, and an eviction caused
//! by an asymmetric partition is undone once the link heals.

use p2pfl_hierraft::{Deployment, DeploymentSpec, HierActor, Liveness};
use p2pfl_simnet::{NodeId, SimDuration, SimTime};

/// The paper topology with `T` = 100 ms, which the deployment builder maps
/// to a 100 ms suspect window and a 300 ms confirm window.
fn stable_deployment(seed: u64) -> Deployment {
    let mut d = Deployment::build(DeploymentSpec::paper(100, seed));
    assert!(d.wait_stable(SimTime::from_secs(10)), "never stabilized");
    d
}

fn roster_of(d: &Deployment, peer: NodeId) -> Vec<NodeId> {
    d.sim.actor::<HierActor>(peer).live_sub_members().to_vec()
}

fn roster_changes_for(d: &Deployment, leader: NodeId, member: NodeId) -> Vec<bool> {
    d.sim
        .actor::<HierActor>(leader)
        .roster_changes
        .iter()
        .filter(|(_, m, _)| *m == member)
        .map(|&(_, _, evicted)| evicted)
        .collect()
}

#[test]
fn crashed_member_is_evicted_then_readmitted_on_restart() {
    let mut d = stable_deployment(11);
    let leader = d.sub_leader_of(0).expect("stable");
    let victim = d.subgroups[0][2];
    assert_ne!(leader, victim);

    let t0 = d.sim.now();
    d.sim
        .schedule_crash(victim, t0 + SimDuration::from_millis(1));
    d.sim.run_until(t0 + SimDuration::from_secs(1));

    assert!(
        !roster_of(&d, leader).contains(&victim),
        "confirmed-dead member still on the leader's roster"
    );
    // The roster is replicated, not leader-local: a surviving follower
    // applies the same member list through its subgroup log.
    let follower = d.subgroups[0]
        .iter()
        .copied()
        .find(|&p| p != leader && p != victim)
        .unwrap();
    assert!(!roster_of(&d, follower).contains(&victim));
    assert_eq!(roster_changes_for(&d, leader, victim), vec![true]);

    let t1 = d.sim.now();
    d.sim
        .schedule_restart(victim, t1 + SimDuration::from_millis(1));
    d.sim.run_until(t1 + SimDuration::from_secs(1));

    let roster = roster_of(&d, leader);
    assert!(roster.contains(&victim), "restarted member not re-admitted");
    // Re-admission restores subgroup order, not append order.
    assert_eq!(roster, d.subgroups[0]);
    assert_eq!(roster_changes_for(&d, leader, victim), vec![true, false]);
}

#[test]
fn suspected_member_that_recovers_is_never_evicted() {
    let mut d = stable_deployment(12);
    let leader = d.sub_leader_of(0).expect("stable");
    let victim = d.subgroups[0][3];
    assert_ne!(leader, victim);

    // One-way outage shorter than the confirm window: the leader stops
    // hearing the victim's heartbeat replies, but the victim stays up.
    let t0 = d.sim.now();
    d.sim.partition(victim, leader);
    d.sim.run_until(t0 + SimDuration::from_millis(140));
    assert_eq!(
        d.sim.actor::<HierActor>(leader).liveness_of(victim),
        Liveness::Suspected,
        "quiet past the suspect window should be suspected"
    );

    d.sim.heal(victim, leader);
    d.sim.run_until(t0 + SimDuration::from_secs(1));

    assert_eq!(
        d.sim.actor::<HierActor>(leader).liveness_of(victim),
        Liveness::Alive
    );
    assert!(roster_of(&d, leader).contains(&victim));
    assert_eq!(
        roster_changes_for(&d, leader, victim),
        Vec::<bool>::new(),
        "a recovering suspect must never be evicted"
    );
}

#[test]
fn asymmetric_partition_eviction_is_undone_after_heal() {
    let mut d = stable_deployment(13);
    let leader = d.sub_leader_of(0).expect("stable");
    let victim = d.subgroups[0][4];
    assert_ne!(leader, victim);

    // Outage longer than the confirm window: a false positive the detector
    // cannot avoid. The victim never crashes.
    let t0 = d.sim.now();
    d.sim.partition(victim, leader);
    d.sim.run_until(t0 + SimDuration::from_secs(1));
    assert!(!roster_of(&d, leader).contains(&victim), "not evicted");
    assert!(!d.sim.is_crashed(victim), "victim was alive the whole time");

    // Once its replies get through again (Raft heartbeat acks, probe acks,
    // or the ProbeAck refuting the Evict notice), the leader re-admits it.
    let t1 = d.sim.now();
    d.sim.heal(victim, leader);
    d.sim.run_until(t1 + SimDuration::from_secs(1));

    assert!(
        roster_of(&d, leader).contains(&victim),
        "healed member not re-admitted"
    );
    assert_eq!(roster_changes_for(&d, leader, victim), vec![true, false]);
}
