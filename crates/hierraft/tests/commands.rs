//! Application commands through both Raft layers of a live deployment:
//! subgroup logs replicate to subgroup members, FedAvg-layer logs
//! replicate to all subgroup leaders — the mechanism the aggregation
//! system uses to sequence rounds.

use p2pfl_hierraft::{Deployment, DeploymentSpec, FedCmd, HierActor};
use p2pfl_simnet::{SimDuration, SimTime};

fn small() -> DeploymentSpec {
    let mut spec = DeploymentSpec::paper(100, 5);
    spec.num_subgroups = 3;
    spec.subgroup_size = 3;
    spec
}

#[test]
fn subgroup_commands_replicate_to_members() {
    let mut d = Deployment::build(small());
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let leader = d.sub_leader_of(0).unwrap();
    for v in [11u64, 22, 33] {
        d.sim.exec::<HierActor, _, _>(leader, |a, ctx| {
            a.propose_sub(ctx, v).unwrap();
        });
    }
    d.sim.run_for(SimDuration::from_secs(1));
    for &m in &d.subgroups[0].clone() {
        let a = d.sim.actor::<HierActor>(m);
        assert_eq!(a.sub_cmds_applied, vec![11, 22, 33], "member {m}");
    }
    // Other subgroups never see it.
    for &m in &d.subgroups[1].clone() {
        assert!(d.sim.actor::<HierActor>(m).sub_cmds_applied.is_empty());
    }
}

#[test]
fn fed_commands_replicate_to_all_subgroup_leaders() {
    let mut d = Deployment::build(small());
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let fed_leader = d.fed_leader().unwrap();
    for round in [1u64, 2, 3] {
        d.sim.exec::<HierActor, _, _>(fed_leader, |a, ctx| {
            a.propose_fed(ctx, FedCmd::Round(round)).unwrap();
        });
    }
    d.sim.run_for(SimDuration::from_secs(1));
    for g in 0..3 {
        let leader = d.sub_leader_of(g).unwrap();
        let a = d.sim.actor::<HierActor>(leader);
        assert_eq!(a.fed_rounds_applied(), vec![1, 2, 3], "subgroup {g} leader");
    }
}

#[test]
fn fed_commands_survive_fed_leader_crash() {
    let mut d = Deployment::build(small());
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let fed_leader = d.fed_leader().unwrap();
    d.sim.exec::<HierActor, _, _>(fed_leader, |a, ctx| {
        a.propose_fed(ctx, FedCmd::Round(7)).unwrap();
    });
    d.sim.run_for(SimDuration::from_millis(300)); // commit
    let at = d.sim.now() + SimDuration::from_millis(1);
    d.sim.schedule_crash(fed_leader, at);
    // Recover: new fed leader elected, crashed subgroup re-led + rejoined.
    let deadline = d.sim.now() + SimDuration::from_secs(15);
    assert!(d.wait(deadline, |d| {
        d.fed_leader().is_some_and(|l| l != fed_leader)
    }));
    let new_leader = d.fed_leader().unwrap();
    d.sim.exec::<HierActor, _, _>(new_leader, |a, ctx| {
        a.propose_fed(ctx, FedCmd::Round(8)).unwrap();
    });
    d.sim.run_for(SimDuration::from_secs(1));
    let a = d.sim.actor::<HierActor>(new_leader);
    assert_eq!(
        a.fed_rounds_applied(),
        vec![7, 8],
        "committed entry must survive"
    );
}

#[test]
fn propose_on_non_leader_is_rejected() {
    let mut d = Deployment::build(small());
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let leader0 = d.sub_leader_of(0).unwrap();
    let follower = *d.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
    let err = d
        .sim
        .exec::<HierActor, _, _>(follower, |a, ctx| a.propose_sub(ctx, 1));
    assert!(err.is_err());
    let err = d
        .sim
        .exec::<HierActor, _, _>(follower, |a, ctx| a.propose_fed(ctx, FedCmd::Round(1)));
    assert!(err.is_err());
}
