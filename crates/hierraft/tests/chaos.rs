//! Chaos recovery: repeated randomized crash/restart cycles must always
//! return the two-layer backend to a stable state — every subgroup led,
//! every leader seated in the FedAvg layer, one FedAvg leader.

use p2pfl_hierraft::{Deployment, DeploymentSpec, FedCmd, HierActor};
use p2pfl_simnet::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds to run: `CHAOS_SEED=<n>` replays a single reported seed, the
/// default sweep covers 0..4.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => (0..4).collect(),
    }
}

#[test]
fn backend_restabilizes_after_every_chaos_epoch() {
    for seed in chaos_seeds() {
        println!("chaos epoch sweep: seed {seed} (replay with CHAOS_SEED={seed})");
        let mut spec = DeploymentSpec::paper(100, seed);
        spec.num_subgroups = 3;
        spec.subgroup_size = 3;
        let mut d = Deployment::build(spec);
        assert!(
            d.wait_stable(SimTime::from_secs(10)),
            "seed {seed}: genesis"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a05);

        for epoch in 0..6 {
            // Crash one random peer per subgroup at most (keeps every
            // subgroup at 2-of-3 quorum) — possibly a leader, possibly the
            // FedAvg leader itself.
            let mut victims = Vec::new();
            for g in 0..3 {
                if rng.random::<f64>() < 0.7 {
                    let members = d.subgroups[g].clone();
                    let v = members[rng.random_range(0..members.len())];
                    victims.push(v);
                }
            }
            for &v in &victims {
                if !d.sim.is_crashed(v) {
                    let at = d.sim.now() + SimDuration::from_millis(1);
                    d.sim.schedule_crash(v, at);
                }
            }
            // Let the failures bite, then bring everyone back.
            d.sim
                .run_for(SimDuration::from_millis(400 + rng.random_range(0u64..800)));
            for &v in &victims {
                if d.sim.is_crashed(v) {
                    let at = d.sim.now() + SimDuration::from_millis(1);
                    d.sim.schedule_restart(v, at);
                }
            }
            let deadline = d.sim.now() + SimDuration::from_secs(20);
            assert!(
                d.wait(deadline, |d| d.is_stable()),
                "seed {seed}, epoch {epoch}: failed to restabilize (victims {victims:?})"
            );
        }

        // The stabilized backend is fully functional: a command commits
        // through the FedAvg layer to every subgroup leader.
        let fed_leader = d.fed_leader().unwrap();
        d.sim.exec::<HierActor, _, _>(fed_leader, |a, ctx| {
            a.propose_fed(ctx, FedCmd::Round(999)).unwrap();
        });
        d.sim.run_for(SimDuration::from_secs(1));
        for g in 0..3 {
            let l = d.sub_leader_of(g).unwrap();
            assert!(
                d.sim
                    .actor::<HierActor>(l)
                    .fed_rounds_applied()
                    .contains(&999),
                "seed {seed}: subgroup {g} leader missed the post-chaos commit"
            );
        }
    }
}
