//! The two-layer peer: a subgroup Raft participant that, while leading its
//! subgroup, also participates in the FedAvg-layer Raft.
//!
//! Implements the paper's Sec. V mechanics:
//!
//! * every peer runs its subgroup's Raft;
//! * the subgroup leader joins the FedAvg-layer Raft, and periodically
//!   commits the FedAvg-layer configuration into its subgroup log;
//! * the post-leader-election callback: a newly elected subgroup leader
//!   reads that replicated configuration and asks the FedAvg leader to
//!   admit it (replacing its subgroup's crashed representative) via the
//!   cluster-membership-change protocol;
//! * a pending joiner polls for a FedAvg leader on a fixed interval (the
//!   paper uses 100 ms) until an election over there produces one.
//!
//! Deviation noted for reviewers: when handling a join, the FedAvg leader
//! proposes `RemoveServer(old)` and `AddServer(new)` back-to-back instead
//! of waiting for the first change to commit; with a single proposer this
//! is safe in our setting and keeps recovery latency low.

use crate::config::{FedCmd, FedConfig, HierMsg, HierPeerConfig, SubCmd, SubMembers};
use crate::detector::{FailureDetector, Liveness};
use crate::elastic::{rekey_key, ElasticGroup, Topology, TopologyCmd, TopologyEvent};
use p2pfl_raft::{Effect, Entry, LogCmd, RaftConfig, RaftNode, RaftStorage};
use p2pfl_simnet::{Actor, NodeId, SimDuration, SimTime, TimerId, Transport};
use std::collections::{BTreeMap, BTreeSet};

const TIMER_SUB_ELECTION: u64 = 1;
const TIMER_SUB_HEARTBEAT: u64 = 2;
const TIMER_FED_ELECTION: u64 = 3;
const TIMER_FED_HEARTBEAT: u64 = 4;
const TIMER_CONFIG_TICK: u64 = 5;
const TIMER_JOIN_TICK: u64 = 6;
const TIMER_PROBE_TICK: u64 = 7;
const TIMER_RENDEZVOUS_TICK: u64 = 8;

/// A peer in the two-layer Raft deployment.
pub struct HierActor {
    cfg: HierPeerConfig,
    sub: RaftNode<SubCmd>,
    fed: Option<RaftNode<FedCmd>>,
    sub_storage: Option<Box<dyn RaftStorage<SubCmd>>>,
    fed_storage: Option<Box<dyn RaftStorage<FedCmd>>>,
    sub_election_timer: Option<TimerId>,
    sub_heartbeat_timer: Option<TimerId>,
    fed_election_timer: Option<TimerId>,
    fed_heartbeat_timer: Option<TimerId>,
    join_tick_timer: Option<TimerId>,
    probe_tick_timer: Option<TimerId>,
    config_tick_armed: bool,
    config_version: u64,
    members_version: u64,
    /// The roster this leader last proposed but has not yet seen commit;
    /// further changes build on it so receipt bursts don't re-propose the
    /// same re-admission.
    proposed_roster: Option<SubMembers>,
    join_target: Option<NodeId>,
    join_round_robin: usize,
    detector: FailureDetector,
    probe_seq: u64,
    /// Latest FedAvg-layer configuration this peer knows (deployment-time
    /// founding config until a replicated update commits).
    pub fed_config: FedConfig,
    /// Latest replicated aggregation roster of this peer's subgroup (the
    /// full subgroup until a detector-driven update commits).
    pub sub_members: SubMembers,
    /// `(when, member, evicted?)` roster changes this peer proposed as
    /// subgroup leader: `true` = eviction, `false` = re-admission.
    pub roster_changes: Vec<(SimTime, NodeId, bool)>,
    /// Times at which this peer won its subgroup election.
    pub sub_leader_history: Vec<SimTime>,
    /// Times at which this peer won the FedAvg-layer election.
    pub fed_leader_history: Vec<SimTime>,
    /// When this peer's join request was accepted.
    pub join_ack_at: Option<SimTime>,
    /// When this peer's FedAvg-layer Raft instance became active.
    pub fed_active_at: Option<SimTime>,
    /// FedAvg-layer commands applied, in order.
    pub fed_cmds_applied: Vec<FedCmd>,
    /// Subgroup application commands applied, in order.
    pub sub_cmds_applied: Vec<u64>,
    /// Byzantine behavior switch (fault injection): when set, this peer
    /// broadcasts *conflicting* [`HierMsg::ConfigEcho`] digests to
    /// different subgroup members — the equivocating-leader fault.
    pub byz_equivocate: bool,
    /// Byzantine behavior switch (fault injection): when set and leading
    /// its subgroup, this peer proposes aggregation rosters containing a
    /// phantom member outside the configured subgroup.
    pub byz_bogus_roster: bool,
    /// Conflicting config echoes observed (each one is proof that the
    /// sender advertised a different config to us than it committed).
    pub equivocations_detected: u64,
    /// Replicated rosters rejected because they named members outside the
    /// configured subgroup.
    pub bogus_rosters_rejected: u64,
    /// Peers this actor convicted of equivocation. Convicted peers are
    /// evicted from the aggregation roster and never re-admitted by the
    /// liveness path — Byzantine is not a transient condition.
    pub byzantine_peers: BTreeSet<NodeId>,
    /// Digest of the [`FedConfig`] this peer applied, per version; the
    /// reference against which incoming echoes are cross-checked.
    echo_digests: BTreeMap<u64, u64>,
    /// The adopted elastic layout. Static deployments freeze it at
    /// version 0; elastic ones advance it through replicated
    /// [`TopologyCmd`]s (fed members) and [`SubCmd::Topology`] /
    /// [`HierMsg::TopologySync`] catch-up (everyone else).
    pub topology: Topology,
    /// Split transitions this peer applied through the FedAvg-layer log.
    pub splits: u64,
    /// Merge transitions this peer applied through the FedAvg-layer log.
    pub merges: u64,
    /// Times this peer adopted a new roster for its own subgroup — each
    /// one a fresh mask domain for the SAC engines.
    pub rekeys: u64,
    /// Mask-domain keys adopted across re-keys, in order (the
    /// `NoMaskReuseAcrossRekey` oracle surface: all entries distinct).
    pub rekey_history: Vec<u64>,
    /// Layout version this leader last re-committed into its subgroup log.
    topology_commit_version: u64,
    /// Joiners whose `Admit` this FedAvg leader proposed but has not yet
    /// seen commit (dedups rendezvous retry bursts).
    pending_admits: BTreeSet<NodeId>,
    /// Whether this peer booted unplaced and is polling for a rendezvous
    /// assignment.
    pending_rendezvous: bool,
    rendezvous_timer: Option<TimerId>,
}

impl HierActor {
    /// Creates the peer. Founding FedAvg-layer members activate their
    /// FedAvg-layer Raft at startup and get a shortened first subgroup
    /// election timeout so the genesis subgroup leaders coincide with the
    /// founding configuration (the paper starts from such a stable state).
    pub fn new(cfg: HierPeerConfig) -> Self {
        Self::build(cfg, None, None)
    }

    /// Creates the peer with durable Raft state for both layers. On
    /// construction each layer's storage is replayed: a non-empty subgroup
    /// record restores term/vote/log, and a non-empty FedAvg-layer record
    /// means this peer held a representative seat when it went down — the
    /// restored instance is started again in [`Actor::on_start`] so its
    /// vote keeps counting toward FedAvg-layer quorum across the restart.
    pub fn with_storage(
        cfg: HierPeerConfig,
        sub_storage: Box<dyn RaftStorage<SubCmd>>,
        fed_storage: Box<dyn RaftStorage<FedCmd>>,
    ) -> Self {
        Self::build(cfg, Some(sub_storage), Some(fed_storage))
    }

    fn sub_raft_config(cfg: &HierPeerConfig) -> RaftConfig {
        RaftConfig {
            id: cfg.id,
            initial_cluster: cfg.subgroup.clone(),
            election_timeout_min: cfg.t,
            election_timeout_max: cfg.t.saturating_mul(2),
            heartbeat_interval: cfg.heartbeat,
            seed: cfg.seed ^ 0x5ab,
            pre_vote: true,
        }
    }

    fn fed_raft_config(cfg: &HierPeerConfig, founding: Vec<NodeId>) -> RaftConfig {
        RaftConfig {
            id: cfg.id,
            initial_cluster: founding,
            election_timeout_min: cfg.t,
            election_timeout_max: cfg.t.saturating_mul(2),
            heartbeat_interval: cfg.heartbeat,
            seed: cfg.seed ^ 0xfed,
            pre_vote: true,
        }
    }

    fn build(
        cfg: HierPeerConfig,
        mut sub_storage: Option<Box<dyn RaftStorage<SubCmd>>>,
        mut fed_storage: Option<Box<dyn RaftStorage<FedCmd>>>,
    ) -> Self {
        let sub_cfg = Self::sub_raft_config(&cfg);
        let sub = match sub_storage.as_mut().and_then(|s| s.load()) {
            Some(state) => RaftNode::restore(sub_cfg, state),
            None => RaftNode::new(sub_cfg),
        };
        let fed = fed_storage.as_mut().and_then(|s| s.load()).map(|state| {
            RaftNode::restore(Self::fed_raft_config(&cfg, cfg.founding_fed.clone()), state)
        });
        let fed_config = FedConfig {
            founding: cfg.founding_fed.clone(),
            current: cfg.founding_fed.clone(),
            engine: cfg.engine,
            combiner: cfg.combiner,
            version: 0,
        };
        let sub_members = SubMembers {
            members: cfg.subgroup.clone(),
            version: 0,
        };
        let detector = FailureDetector::new(
            cfg.subgroup.iter().copied().filter(|&p| p != cfg.id),
            cfg.suspect_after,
            cfg.dead_after,
            SimTime::ZERO,
        );
        let (topology, pending_rendezvous) = match cfg.elastic.as_ref() {
            // A rendezvous joiner knows no layout: it learns the committed
            // topology (which by then contains it) from its assignment.
            Some(e) if e.initial_groups.is_empty() => (
                Topology {
                    version: 0,
                    groups: Vec::new(),
                    next_gid: 0,
                },
                true,
            ),
            Some(e) => (Topology::from_groups(&e.initial_groups), false),
            None => (
                Topology::from_groups(std::slice::from_ref(&cfg.subgroup)),
                false,
            ),
        };
        HierActor {
            sub,
            fed,
            sub_storage,
            fed_storage,
            sub_election_timer: None,
            sub_heartbeat_timer: None,
            fed_election_timer: None,
            fed_heartbeat_timer: None,
            join_tick_timer: None,
            probe_tick_timer: None,
            config_tick_armed: false,
            config_version: 0,
            members_version: 0,
            proposed_roster: None,
            join_target: None,
            join_round_robin: 0,
            detector,
            probe_seq: 0,
            fed_config,
            sub_members,
            roster_changes: Vec::new(),
            sub_leader_history: Vec::new(),
            fed_leader_history: Vec::new(),
            join_ack_at: None,
            fed_active_at: None,
            fed_cmds_applied: Vec::new(),
            sub_cmds_applied: Vec::new(),
            byz_equivocate: false,
            byz_bogus_roster: false,
            equivocations_detected: 0,
            bogus_rosters_rejected: 0,
            byzantine_peers: BTreeSet::new(),
            echo_digests: BTreeMap::new(),
            topology,
            splits: 0,
            merges: 0,
            rekeys: 0,
            rekey_history: Vec::new(),
            topology_commit_version: 0,
            pending_admits: BTreeSet::new(),
            pending_rendezvous,
            rendezvous_timer: None,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Accessors used by experiments, tests, and the aggregation system
    // ------------------------------------------------------------------

    /// This peer's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// Whether this peer currently leads its subgroup.
    pub fn is_sub_leader(&self) -> bool {
        self.sub.is_leader()
    }

    /// Whether this peer currently leads the FedAvg layer.
    pub fn is_fed_leader(&self) -> bool {
        self.fed.as_ref().is_some_and(|f| f.is_leader())
    }

    /// Whether this peer's FedAvg-layer Raft instance is active.
    pub fn is_fed_member(&self) -> bool {
        self.fed.is_some()
    }

    /// The subgroup Raft state.
    pub fn sub_raft(&self) -> &RaftNode<SubCmd> {
        &self.sub
    }

    /// This peer's failure-detector verdict on a subgroup member.
    pub fn liveness_of(&self, peer: NodeId) -> Liveness {
        self.detector.liveness(peer)
    }

    /// The aggregation roster this peer currently believes in: the
    /// replicated member list, in subgroup order.
    pub fn live_sub_members(&self) -> &[NodeId] {
        &self.sub_members.members
    }

    /// The FedAvg-layer Raft state, if active.
    pub fn fed_raft(&self) -> Option<&RaftNode<FedCmd>> {
        self.fed.as_ref()
    }

    /// The round markers applied through the FedAvg-layer log, in order
    /// (topology commands filtered out).
    pub fn fed_rounds_applied(&self) -> Vec<u64> {
        self.fed_cmds_applied
            .iter()
            .filter_map(|c| match c {
                FedCmd::Round(r) => Some(*r),
                FedCmd::Topology(_) => None,
            })
            .collect()
    }

    /// This peer's current subgroup roster as configured (updated by
    /// elastic transitions).
    pub fn subgroup(&self) -> &[NodeId] {
        &self.cfg.subgroup
    }

    /// Whether this peer is still polling for a rendezvous assignment.
    pub fn is_pending_rendezvous(&self) -> bool {
        self.pending_rendezvous
    }

    /// StorageRoundTrip oracle hook for the invariant checker: replays both
    /// storage handles (when present) and checks that a node restored from
    /// them would be bisimilar to the live Raft instances — same term, vote,
    /// log, and snapshot. Returns a description of the first divergence.
    pub fn verify_storage_roundtrip(&mut self) -> Result<(), String> {
        if let Some(st) = self.sub_storage.as_mut() {
            let state = st.load().unwrap_or_default();
            self.sub
                .matches_persistent(&state)
                .map_err(|e| format!("sub layer: {e}"))?;
        }
        if let (Some(st), Some(fed)) = (self.fed_storage.as_mut(), self.fed.as_ref()) {
            let state = st.load().unwrap_or_default();
            fed.matches_persistent(&state)
                .map_err(|e| format!("fed layer: {e}"))?;
        }
        Ok(())
    }

    /// Proposes an application command on the FedAvg layer (leader only).
    pub fn propose_fed(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        cmd: FedCmd,
    ) -> Result<(), &'static str> {
        let Some(fed) = self.fed.as_mut() else {
            return Err("not a FedAvg-layer member");
        };
        match fed.propose(LogCmd::App(cmd)) {
            Ok((_, eff)) => {
                self.run_fed_effects(ctx, eff);
                Ok(())
            }
            Err(_) => Err("not the FedAvg leader"),
        }
    }

    /// Proposes an elastic-topology operation on the FedAvg layer (leader
    /// only) — the single serialization point for layout changes.
    pub fn propose_topology(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        cmd: TopologyCmd,
    ) -> Result<(), &'static str> {
        self.propose_fed(ctx, FedCmd::Topology(cmd))
    }

    /// Proposes an application command on the subgroup (leader only).
    pub fn propose_sub(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        cmd: u64,
    ) -> Result<(), &'static str> {
        match self.sub.propose(LogCmd::App(SubCmd::App(cmd))) {
            Ok((_, eff)) => {
                self.run_sub_effects(ctx, eff);
                Ok(())
            }
            Err(_) => Err("not the subgroup leader"),
        }
    }

    // ------------------------------------------------------------------
    // Effect plumbing
    // ------------------------------------------------------------------

    fn arm(ctx: &mut dyn Transport<HierMsg>, slot: &mut Option<TimerId>, d: SimDuration, tag: u64) {
        if let Some(t) = slot.take() {
            ctx.cancel_timer(t);
        }
        *slot = Some(ctx.set_timer(d, tag));
    }

    fn run_sub_effects(&mut self, ctx: &mut dyn Transport<HierMsg>, effects: Vec<Effect<SubCmd>>) {
        for e in effects {
            match e {
                Effect::Send(to, msg) => ctx.send(to, HierMsg::Sub(msg)),
                Effect::ArmElectionTimer(d) => {
                    Self::arm(ctx, &mut self.sub_election_timer, d, TIMER_SUB_ELECTION)
                }
                Effect::ArmHeartbeatTimer(d) => {
                    Self::arm(ctx, &mut self.sub_heartbeat_timer, d, TIMER_SUB_HEARTBEAT)
                }
                Effect::Commit(entry) => self.apply_sub_entry(ctx, &entry),
                Effect::BecameLeader(_) => {
                    self.sub_leader_history.push(ctx.now());
                    self.on_became_sub_leader(ctx);
                }
                Effect::Persist(op) => {
                    if let Some(st) = self.sub_storage.as_mut() {
                        st.record(&op);
                    }
                }
                // Subgroup logs are tiny (configs + round markers); this
                // deployment never compacts them.
                Effect::RestoreSnapshot(_) => {}
                Effect::SteppedDown(_) | Effect::ConfigChanged(_) => {}
            }
        }
    }

    fn run_fed_effects(&mut self, ctx: &mut dyn Transport<HierMsg>, effects: Vec<Effect<FedCmd>>) {
        let mut retire = false;
        for e in effects {
            match e {
                Effect::Send(to, msg) => ctx.send(to, HierMsg::Fed(msg)),
                Effect::ArmElectionTimer(d) => {
                    Self::arm(ctx, &mut self.fed_election_timer, d, TIMER_FED_ELECTION)
                }
                Effect::ArmHeartbeatTimer(d) => {
                    Self::arm(ctx, &mut self.fed_heartbeat_timer, d, TIMER_FED_HEARTBEAT)
                }
                Effect::Commit(entry) => {
                    if let LogCmd::App(v) = entry.cmd {
                        if let FedCmd::Topology(cmd) = &v {
                            let cmd = cmd.clone();
                            self.apply_fed_topology(ctx, &cmd);
                        }
                        self.fed_cmds_applied.push(v);
                    }
                }
                Effect::BecameLeader(_) => self.fed_leader_history.push(ctx.now()),
                Effect::ConfigChanged(cluster) => {
                    // A replicated membership change removed this peer from
                    // the FedAvg layer (its subgroup elected a replacement
                    // while it was down): retire gracefully — but only after
                    // the rest of the batch, so the removal entry's own
                    // broadcast still reaches the remaining members.
                    if !cluster.contains(&self.cfg.id) {
                        retire = true;
                    }
                }
                Effect::Persist(op) => {
                    if let Some(st) = self.fed_storage.as_mut() {
                        st.record(&op);
                    }
                }
                Effect::RestoreSnapshot(_) => {}
                Effect::SteppedDown(_) => {}
            }
        }
        if retire {
            self.fed = None;
            for slot in [&mut self.fed_election_timer, &mut self.fed_heartbeat_timer] {
                if let Some(t) = slot.take() {
                    ctx.cancel_timer(t);
                }
            }
        }
    }

    fn apply_sub_entry(&mut self, ctx: &mut dyn Transport<HierMsg>, entry: &Entry<SubCmd>) {
        match &entry.cmd {
            LogCmd::App(SubCmd::FedConfig(c)) => {
                if c.version >= self.fed_config.version {
                    self.fed_config = c.clone();
                }
                self.broadcast_config_echo(ctx, c);
                // A restarted ex-representative learns through its
                // subgroup log that the FedAvg layer moved on without it:
                // retire the stale FedAvg-layer instance.
                if self.fed.is_some()
                    && !self.sub.is_leader()
                    && !self.fed_config.current.contains(&self.cfg.id)
                {
                    self.fed = None;
                    for slot in [&mut self.fed_election_timer, &mut self.fed_heartbeat_timer] {
                        if let Some(t) = slot.take() {
                            ctx.cancel_timer(t);
                        }
                    }
                }
            }
            LogCmd::App(SubCmd::Members(m)) => {
                // Bogus-roster defense: a replicated roster may only name
                // members of the configured subgroup. A Byzantine leader
                // that smuggles a phantom member into the aggregation
                // roster is ignored — the previous roster stays in force.
                if !m.members.iter().all(|p| self.cfg.subgroup.contains(p)) {
                    self.bogus_rosters_rejected += 1;
                    return;
                }
                if m.version >= self.sub_members.version {
                    self.sub_members = m.clone();
                }
                if self
                    .proposed_roster
                    .as_ref()
                    .is_some_and(|p| m.version >= p.version)
                {
                    self.proposed_roster = None;
                }
            }
            LogCmd::App(SubCmd::App(v)) => self.sub_cmds_applied.push(*v),
            LogCmd::App(SubCmd::Topology(t)) => {
                let t = t.clone();
                self.adopt_topology(ctx, &t);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Elastic topology: replicated split/merge/admit/depart transitions
    // ------------------------------------------------------------------

    /// Applies a committed FedAvg-layer topology command. Every fed member
    /// applies the identical command in the identical log order, so the
    /// resulting layouts agree; the peers the change touches get a
    /// best-effort [`HierMsg::TopologySync`] push immediately (the durable
    /// path is the subgroup-log re-commit on the config tick, plus the
    /// stale-sender catch-up in `on_message`).
    fn apply_fed_topology(&mut self, ctx: &mut dyn Transport<HierMsg>, cmd: &TopologyCmd) {
        // Rosters the command touches, read *before* applying so pre-split
        // and departing members are included.
        let roster_of = |t: &Topology, gid: u64| -> Vec<NodeId> {
            t.group(gid).map(|g| g.members.clone()).unwrap_or_default()
        };
        let mut affected: BTreeSet<NodeId> = match cmd {
            TopologyCmd::Split { gid, .. } => roster_of(&self.topology, *gid).into_iter().collect(),
            TopologyCmd::Merge { into, from } => roster_of(&self.topology, *into)
                .into_iter()
                .chain(roster_of(&self.topology, *from))
                .collect(),
            TopologyCmd::Admit { peer, gid } => {
                let mut s: BTreeSet<NodeId> = roster_of(&self.topology, *gid).into_iter().collect();
                s.insert(*peer);
                s
            }
            TopologyCmd::Depart { peer } => self
                .topology
                .group_of(*peer)
                .map(|g| g.members.iter().copied().collect())
                .unwrap_or_default(),
        };
        let mut t = self.topology.clone();
        let Ok(event) = t.apply(cmd) else {
            // Every replica rejects the command identically; the layout is
            // untouched.
            return;
        };
        match &event {
            TopologyEvent::Split { .. } => self.splits += 1,
            TopologyEvent::Merged { .. } => self.merges += 1,
            TopologyEvent::Admitted { peer, .. } => {
                self.pending_admits.remove(peer);
                // The joiner's assignment is acknowledged only now, after
                // the admission committed — an ack therefore always carries
                // a layout that contains the joiner.
                if self.is_fed_leader() {
                    ctx.send(
                        *peer,
                        HierMsg::RendezvousAssign {
                            accepted: true,
                            leader: Some(self.cfg.id),
                            topology: Some(t.clone()),
                        },
                    );
                }
            }
            TopologyEvent::Departed { .. } => {}
            TopologyEvent::Noop => {
                // Duplicate admit retries land here: the peer stays where
                // the first commit put it, and nobody re-keys.
                if let TopologyCmd::Admit { peer, .. } = cmd {
                    self.pending_admits.remove(peer);
                }
                affected.clear();
            }
        }
        affected.remove(&self.cfg.id);
        for p in affected {
            ctx.send(
                p,
                HierMsg::TopologySync {
                    topology: t.clone(),
                },
            );
        }
        self.adopt_topology(ctx, &t);
    }

    /// Adopts a newer layout (version max-advance; stale and duplicate
    /// layouts are ignored). If the layout assigns this peer a different
    /// subgroup than it currently runs, the peer transitions.
    fn adopt_topology(&mut self, ctx: &mut dyn Transport<HierMsg>, t: &Topology) {
        if t.version <= self.topology.version {
            return;
        }
        let old = self.topology.group_of(self.cfg.id).cloned();
        self.topology = t.clone();
        let Some(new) = self.topology.group_of(self.cfg.id).cloned() else {
            // Departed (or not yet admitted): keep serving the old roster
            // until the supervisor retires this peer.
            return;
        };
        let changed = old
            .as_ref()
            .is_none_or(|o| o.gid != new.gid || o.members != new.members);
        if changed {
            if self.pending_rendezvous {
                self.pending_rendezvous = false;
                if let Some(timer) = self.rendezvous_timer.take() {
                    ctx.cancel_timer(timer);
                }
            }
            self.transition_to(ctx, &new);
        }
    }

    /// Adopts `group` as this peer's own subgroup: a fresh subgroup Raft
    /// over the new roster, detector and replicated roster rebuilt, and a
    /// fresh mask-domain key recorded — the re-key that makes mask reuse
    /// across rosters impossible. An in-flight SAC round over the old
    /// roster is migrated by the PR 5 supervision path: the next attempt
    /// sees the new roster, aborts, and retries degraded on it.
    fn transition_to(&mut self, ctx: &mut dyn Transport<HierMsg>, group: &ElasticGroup) {
        self.rekeys += 1;
        self.rekey_history.push(rekey_key(
            self.cfg.id,
            group.gid,
            &group.members,
            self.rekeys,
        ));
        self.cfg.subgroup = group.members.clone();
        self.cfg.subgroup_index = group.gid as usize;
        // Old-roster supervision state is meaningless for the new roster.
        self.proposed_roster = None;
        self.members_version = self.members_version.max(self.sub_members.version) + 1;
        self.sub_members = SubMembers {
            members: group.members.clone(),
            version: self.members_version,
        };
        self.detector = FailureDetector::new(
            group.members.iter().copied().filter(|&p| p != self.cfg.id),
            self.cfg.suspect_after,
            self.cfg.dead_after,
            ctx.now(),
        );
        // A fresh Raft instance for the new roster. The timeout stream is
        // domain-separated by layout version and group id so sibling
        // instances born from one split never share an RNG stream. The
        // retired roster's durable log describes a dissolved cluster;
        // re-seeding durability for the new lineage is future work, so the
        // fresh instance runs memory-only.
        let mut raft_cfg = Self::sub_raft_config(&self.cfg);
        raft_cfg.seed ^= (self.topology.version << 20) ^ group.gid.wrapping_mul(0x9e37_79b9);
        for slot in [&mut self.sub_election_timer, &mut self.sub_heartbeat_timer] {
            if let Some(timer) = slot.take() {
                ctx.cancel_timer(timer);
            }
        }
        self.sub_storage = None;
        self.sub = RaftNode::new(raft_cfg);
        self.topology_commit_version = 0;
        let eff = self.sub.start();
        self.run_sub_effects(ctx, eff);
        // Deterministic quick election: the lowest id in the new roster
        // gets a genesis-style boosted timeout (mirrors founding startup).
        if group.members.first() == Some(&self.cfg.id) {
            let boost = SimDuration::from_nanos((self.cfg.t.as_nanos() / 20).max(1));
            Self::arm(ctx, &mut self.sub_election_timer, boost, TIMER_SUB_ELECTION);
        }
    }

    // ------------------------------------------------------------------
    // Rendezvous join (elastic deployments): an unplaced peer polls for
    // an assignment; the FedAvg leader serializes it as an Admit command
    // ------------------------------------------------------------------

    fn send_rendezvous(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if !self.pending_rendezvous {
            return;
        }
        let mut candidates: Vec<NodeId> = self
            .fed_config
            .current
            .iter()
            .chain(self.cfg.founding_fed.iter())
            .copied()
            .filter(|&m| m != self.cfg.id)
            .collect();
        candidates.sort_by_key(|m| m.0);
        candidates.dedup();
        if candidates.is_empty() {
            return;
        }
        // Same one-shot-hint + round-robin policy as the join protocol.
        let target = self.join_target.take().unwrap_or_else(|| {
            let t = candidates[self.join_round_robin % candidates.len()];
            self.join_round_robin += 1;
            t
        });
        ctx.send(target, HierMsg::Rendezvous { from: self.cfg.id });
        Self::arm(
            ctx,
            &mut self.rendezvous_timer,
            self.cfg.join_poll_interval,
            TIMER_RENDEZVOUS_TICK,
        );
    }

    fn on_rendezvous(&mut self, ctx: &mut dyn Transport<HierMsg>, peer: NodeId) {
        if self.cfg.elastic.is_none() {
            return;
        }
        if self.is_fed_leader() {
            if self.topology.group_of(peer).is_some() {
                // Stale retry for an already-placed peer: idempotent
                // re-ack with the committed layout, never a second
                // insertion (the double-admission bug this replaces).
                ctx.send(
                    peer,
                    HierMsg::RendezvousAssign {
                        accepted: true,
                        leader: Some(self.cfg.id),
                        topology: Some(self.topology.clone()),
                    },
                );
                return;
            }
            if self.pending_admits.contains(&peer) {
                return; // admit already in flight; ack follows its commit
            }
            let Some(gid) = self.topology.assign_joiner() else {
                return;
            };
            self.pending_admits.insert(peer);
            let _ = self.propose_fed(ctx, FedCmd::Topology(TopologyCmd::Admit { peer, gid }));
        } else if let Some(fed) = self.fed.as_ref() {
            let hint = fed.leader_hint().filter(|&l| l != self.cfg.id);
            ctx.send(
                peer,
                HierMsg::RendezvousAssign {
                    accepted: false,
                    leader: hint,
                    topology: None,
                },
            );
        } else {
            ctx.send(
                peer,
                HierMsg::RendezvousAssign {
                    accepted: false,
                    leader: None,
                    topology: None,
                },
            );
        }
    }

    fn on_rendezvous_assign(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        accepted: bool,
        leader: Option<NodeId>,
        topology: Option<Topology>,
    ) {
        if !self.pending_rendezvous {
            return;
        }
        if accepted {
            if let Some(t) = topology {
                if t.group_of(self.cfg.id).is_some() {
                    self.join_ack_at = Some(ctx.now());
                    // Adoption clears `pending_rendezvous` and transitions
                    // into the assigned subgroup.
                    self.adopt_topology(ctx, &t);
                }
            }
        } else if let Some(l) = leader {
            self.join_target = Some(l);
            self.send_rendezvous(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Config echo witness protocol (equivocation detection)
    // ------------------------------------------------------------------

    /// After applying a [`FedConfig`], every peer echoes the config's
    /// digest to its subgroup. Raft keeps the committed config identical
    /// across honest members at a given version, so any echo disagreeing
    /// with the locally applied digest convicts its sender of advertising
    /// a different config — equivocation.
    fn broadcast_config_echo(&mut self, ctx: &mut dyn Transport<HierMsg>, c: &FedConfig) {
        let digest = c.digest();
        self.echo_digests.insert(c.version, digest);
        for &peer in &self.cfg.subgroup.clone() {
            if peer == self.cfg.id {
                continue;
            }
            // The equivocating-leader fault: advertise one config to
            // even-numbered peers and a different one to odd-numbered
            // peers — mutually conflicting claims about the same version.
            let d = if self.byz_equivocate {
                digest ^ (peer.0 as u64 & 1)
            } else {
                digest
            };
            ctx.send(
                peer,
                HierMsg::ConfigEcho {
                    version: c.version,
                    digest: d,
                },
            );
        }
    }

    fn on_config_echo(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        from: NodeId,
        version: u64,
        digest: u64,
    ) {
        if !self.cfg.subgroup.contains(&from) {
            return;
        }
        match self.echo_digests.get(&version) {
            // We applied this version ourselves; a differing digest is
            // proof the sender saw (or fabricated) a conflicting config.
            Some(&mine) if mine != digest => {
                self.equivocations_detected += 1;
                self.convict_byzantine(ctx, from);
            }
            Some(_) => {}
            // We have not applied this version yet: remember the claim so
            // our own apply would conflict... keeping only our own applied
            // digests is enough for detection, because the equivocator must
            // eventually disagree with some peer that has applied.
            None => {}
        }
    }

    /// Marks a peer as Byzantine: evicts it from the aggregation roster
    /// (when leading) and bars the liveness path from ever re-admitting
    /// it. Shares the PR-5 supervision path — the eviction is an ordinary
    /// replicated roster change.
    fn convict_byzantine(&mut self, ctx: &mut dyn Transport<HierMsg>, peer: NodeId) {
        self.byzantine_peers.insert(peer);
        if self.sub.is_leader() {
            self.propose_roster_change(ctx, peer, true);
            ctx.send(
                peer,
                HierMsg::Evict {
                    reason: "equivocation: conflicting config echo".into(),
                },
            );
        }
    }

    /// External conviction entry point: a supervisor that detected
    /// Byzantine behavior out-of-band (e.g. a commitment-check failure in
    /// the aggregation layer) reports it here. Same consequences as an
    /// in-protocol conviction: permanent bar from re-admission, and a
    /// replicated roster eviction when this peer leads.
    pub fn convict(&mut self, ctx: &mut dyn Transport<HierMsg>, peer: NodeId) {
        self.convict_byzantine(ctx, peer);
    }

    // ------------------------------------------------------------------
    // Failure detection & self-healing roster (beyond-paper: Sec. V only
    // heals Raft seats; this heals the aggregation membership too)
    // ------------------------------------------------------------------

    /// Leader-side roster update: proposes a new replicated member list
    /// with `member` evicted or re-admitted. No-ops when the roster
    /// already reflects the change or this peer stopped leading.
    fn propose_roster_change(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        member: NodeId,
        evict: bool,
    ) {
        if !self.sub.is_leader() || member == self.cfg.id {
            return;
        }
        let base = self
            .proposed_roster
            .as_ref()
            .filter(|p| p.version > self.sub_members.version)
            .unwrap_or(&self.sub_members);
        let mut members = base.members.clone();
        if evict {
            if !members.contains(&member) {
                return;
            }
            members.retain(|&m| m != member);
        } else {
            if members.contains(&member) || !self.cfg.subgroup.contains(&member) {
                return;
            }
            // Keep subgroup (= position) order stable for SAC rosters.
            members = self
                .cfg
                .subgroup
                .iter()
                .copied()
                .filter(|m| members.contains(m) || *m == member)
                .collect();
        }
        self.members_version = self.members_version.max(base.version) + 1;
        let roster = SubMembers {
            members,
            version: self.members_version,
        };
        if let Ok((_, eff)) = self
            .sub
            .propose(LogCmd::App(SubCmd::Members(roster.clone())))
        {
            self.proposed_roster = Some(roster);
            self.roster_changes.push((ctx.now(), member, evict));
            self.run_sub_effects(ctx, eff);
        }
    }

    /// Any receipt from a subgroup member feeds the detector; a receipt
    /// that revives a suspected/dead member triggers its re-admission to
    /// the aggregation roster (the "suspected peer recovers" race must
    /// never end in an eviction).
    fn note_heard_from(&mut self, ctx: &mut dyn Transport<HierMsg>, from: NodeId) {
        let revived = self.detector.heard_from(from, ctx.now());
        let missing = !self.sub_members.members.contains(&from);
        if (revived || missing)
            && self.sub.is_leader()
            && self.cfg.subgroup.contains(&from)
            // Byzantine is not transient: a convicted equivocator stays
            // evicted no matter how alive it looks.
            && !self.byzantine_peers.contains(&from)
        {
            self.propose_roster_change(ctx, from, false);
        }
    }

    fn on_probe_tick(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        self.probe_tick_timer = None;
        if !self.sub.is_leader() {
            return; // stops ticking; re-armed on the next leadership win
        }
        for (peer, verdict) in self.detector.tick(ctx.now()) {
            if verdict == Liveness::Dead {
                self.propose_roster_change(ctx, peer, true);
                ctx.send(
                    peer,
                    HierMsg::Evict {
                        reason: "failure detector: confirm window expired".into(),
                    },
                );
            }
        }
        // Probe every currently suspected member: Raft heartbeats stop
        // reaching a partitioned peer's *replies* to us, but an explicit
        // probe/ack pair gives it a dedicated path to refute suspicion
        // before the confirm window expires.
        for peer in self.detector.suspected() {
            self.probe_seq += 1;
            ctx.send(
                peer,
                HierMsg::Probe {
                    seq: self.probe_seq,
                },
            );
        }
        Self::arm(
            ctx,
            &mut self.probe_tick_timer,
            self.cfg.probe_interval,
            TIMER_PROBE_TICK,
        );
    }

    // ------------------------------------------------------------------
    // Post-leader-election callback & join protocol (paper Sec. V-A1)
    // ------------------------------------------------------------------

    fn on_became_sub_leader(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if !self.config_tick_armed {
            self.config_tick_armed = true;
            ctx.set_timer(self.cfg.config_commit_interval, TIMER_CONFIG_TICK);
        }
        // Start detecting from a clean slate: quiet time accumulated while
        // someone else led (and we weren't probing) must not instantly
        // convict anyone. A roster proposal from a previous term may never
        // commit, so forget it too.
        self.detector.reset_all(ctx.now());
        self.proposed_roster = None;
        // A conviction reached while following could not evict; do it now.
        for peer in self.byzantine_peers.clone() {
            self.propose_roster_change(ctx, peer, true);
        }
        Self::arm(
            ctx,
            &mut self.probe_tick_timer,
            self.cfg.probe_interval,
            TIMER_PROBE_TICK,
        );
        if self.fed.is_none() {
            self.join_target = None;
            self.send_join(ctx);
            Self::arm(
                ctx,
                &mut self.join_tick_timer,
                self.cfg.join_poll_interval,
                TIMER_JOIN_TICK,
            );
        } else if self.replaces().is_some() {
            // After an elastic merge the group can hold two FedAvg-layer
            // seats. This peer already has one, so a single JoinRequest
            // (no polling) asks the FedAvg leader to retire the other
            // representative.
            self.join_target = None;
            self.send_join(ctx);
        }
    }

    /// The FedAvg-layer member this peer would replace: the configured
    /// representative of its own subgroup (normally the crashed previous
    /// subgroup leader).
    fn replaces(&self) -> Option<NodeId> {
        self.fed_config
            .current
            .iter()
            .copied()
            .find(|m| *m != self.cfg.id && self.cfg.subgroup.contains(m))
    }

    fn send_join(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        // Poll the configured FedAvg members, but also this peer's own
        // subgroup: the replicated fed config can be arbitrarily stale
        // (e.g. still the founding set after several failovers), while the
        // previous representative of this very subgroup — who can redirect
        // to the live FedAvg leader — is always a subgroup peer.
        let mut candidates: Vec<NodeId> = self
            .fed_config
            .current
            .iter()
            .chain(self.cfg.subgroup.iter())
            .copied()
            .filter(|&m| m != self.cfg.id)
            .collect();
        candidates.sort_by_key(|m| m.0);
        candidates.dedup();
        if candidates.is_empty() {
            return;
        }
        // A leader hint is consumed by the send: if the hinted peer is
        // itself dead (e.g. it was the crashed FedAvg leader), the next
        // poll tick falls back to round-robin probing of the configured
        // members instead of retrying the corpse forever.
        let target = self.join_target.take().unwrap_or_else(|| {
            let t = candidates[self.join_round_robin % candidates.len()];
            self.join_round_robin += 1;
            t
        });
        ctx.send(
            target,
            HierMsg::JoinRequest {
                from: self.cfg.id,
                replaces: self.replaces(),
            },
        );
    }

    fn activate_fed(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if self.fed.is_some() {
            return;
        }
        let fed_cfg = Self::fed_raft_config(&self.cfg, self.fed_config.founding.clone());
        let mut fed = match self.fed_storage.as_mut().and_then(|s| s.load()) {
            Some(state) => RaftNode::restore(fed_cfg, state),
            None => RaftNode::new(fed_cfg),
        };
        let eff = fed.start();
        self.fed = Some(fed);
        self.fed_active_at = Some(ctx.now());
        self.run_fed_effects(ctx, eff);
        if let Some(t) = self.join_tick_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn on_join_request(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        from: NodeId,
        replaces: Option<NodeId>,
    ) {
        match self.fed.as_mut() {
            Some(fed) if fed.is_leader() => {
                let mut effects = Vec::new();
                if let Some(r) = replaces {
                    if r != from && fed.cluster().contains(&r) {
                        if let Ok((_, eff)) = fed.propose(LogCmd::RemoveServer(r)) {
                            effects.extend(eff);
                        }
                    }
                }
                if !fed.cluster().contains(&from) {
                    if let Ok((_, eff)) = fed.propose(LogCmd::AddServer(from)) {
                        effects.extend(eff);
                    }
                }
                self.run_fed_effects(ctx, effects);
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: true,
                        leader: Some(self.cfg.id),
                    },
                );
            }
            Some(fed) => {
                let hint = fed.leader_hint().filter(|&l| l != self.cfg.id);
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: false,
                        leader: hint,
                    },
                );
            }
            None => {
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: false,
                        leader: None,
                    },
                );
            }
        }
    }

    fn on_join_ack(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        accepted: bool,
        leader: Option<NodeId>,
    ) {
        if self.fed.is_some() || !self.sub.is_leader() {
            return;
        }
        if accepted {
            self.join_ack_at = Some(ctx.now());
            self.activate_fed(ctx);
        } else if let Some(l) = leader {
            // Redirect immediately toward the hinted leader; the hint is
            // one-shot (see `send_join`).
            self.join_target = Some(l);
            self.send_join(ctx);
        }
    }

    fn on_config_tick(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        self.config_tick_armed = false;
        if !self.sub.is_leader() {
            return;
        }
        // An elastic topology can shed a seat holder entirely (Depart, or
        // a retired group): the departed peer is in nobody's roster, so
        // the JoinRequest `replaces` path never retires its seat. The
        // FedAvg leader prunes config members who are in no subgroup of
        // the adopted layout, before dead seats cost the layer its quorum.
        if self.cfg.elastic.is_some() && self.topology.version > 0 {
            if let Some(fed) = self.fed.as_mut() {
                if fed.is_leader() {
                    let ghosts: Vec<NodeId> = fed
                        .cluster()
                        .iter()
                        .copied()
                        .filter(|&m| m != self.cfg.id && self.topology.group_of(m).is_none())
                        .collect();
                    let mut effects = Vec::new();
                    for g in ghosts {
                        if let Ok((_, eff)) = fed.propose(LogCmd::RemoveServer(g)) {
                            effects.extend(eff);
                        }
                    }
                    self.run_fed_effects(ctx, effects);
                }
            }
        }
        if let Some(fed) = self.fed.as_ref() {
            // A replacement leader's counter restarts at zero while its
            // followers already hold the previous leader's higher-versioned
            // configs; always advance past everything seen so the commit is
            // not rejected as stale.
            self.config_version = self.config_version.max(self.fed_config.version) + 1;
            let cmd = SubCmd::FedConfig(FedConfig {
                founding: self.fed_config.founding.clone(),
                current: fed.cluster().to_vec(),
                engine: self.fed_config.engine,
                combiner: self.fed_config.combiner,
                version: self.config_version,
            });
            if let Ok((_, eff)) = self.sub.propose(LogCmd::App(cmd)) {
                self.run_sub_effects(ctx, eff);
            }
        }
        // Re-commit the adopted layout into the subgroup log so followers
        // that missed the best-effort sync push still converge (same
        // durable path as the FedConfig re-commit above).
        if self.cfg.elastic.is_some() && self.topology.version > self.topology_commit_version {
            let cmd = SubCmd::Topology(self.topology.clone());
            if let Ok((_, eff)) = self.sub.propose(LogCmd::App(cmd)) {
                self.topology_commit_version = self.topology.version;
                self.run_sub_effects(ctx, eff);
            }
        }
        if self.byz_bogus_roster {
            // Byzantine leader fault: replicate a roster naming a phantom
            // member outside the configured subgroup. Honest followers
            // reject it in `apply_sub_entry`.
            self.members_version = self.members_version.max(self.sub_members.version) + 1;
            let mut members = self.sub_members.members.clone();
            members.push(NodeId(u32::MAX));
            let roster = SubMembers {
                members,
                version: self.members_version,
            };
            if let Ok((_, eff)) = self.sub.propose(LogCmd::App(SubCmd::Members(roster))) {
                self.run_sub_effects(ctx, eff);
            }
        }
        self.config_tick_armed = true;
        ctx.set_timer(self.cfg.config_commit_interval, TIMER_CONFIG_TICK);
    }
}

impl Actor<HierMsg> for HierActor {
    fn on_start(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if self.pending_rendezvous {
            // An unplaced joiner has no subgroup to run Raft for; it polls
            // for a rendezvous assignment instead and transitions when the
            // committed layout arrives.
            self.send_rendezvous(ctx);
            return;
        }
        let eff = self.sub.start();
        self.run_sub_effects(ctx, eff);
        if let Some(fed) = self.fed.as_mut() {
            // Restored from durable state with a FedAvg-layer seat: rejoin
            // that layer as a follower. No genesis boost — the cluster this
            // peer restarts into already exists.
            let eff = fed.start();
            self.fed_active_at = Some(ctx.now());
            self.run_fed_effects(ctx, eff);
        } else if self.cfg.is_founding() {
            // Shorten the genesis election so founding members win their
            // subgroup's first election (see `new`).
            let boost = SimDuration::from_nanos((self.cfg.t.as_nanos() / 20).max(1));
            Self::arm(ctx, &mut self.sub_election_timer, boost, TIMER_SUB_ELECTION);
            self.activate_fed(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Transport<HierMsg>, from: NodeId, msg: HierMsg) {
        if self.cfg.subgroup.contains(&from) {
            self.note_heard_from(ctx, from);
        }
        match msg {
            HierMsg::Sub(m) => {
                if self.cfg.elastic.is_some()
                    && (self.pending_rendezvous || !self.cfg.subgroup.contains(&from))
                {
                    // Traffic from a retired layout (or to a peer not yet
                    // placed): don't feed a foreign Raft instance — help
                    // the stale sender catch up instead.
                    if self.topology.version > 0 {
                        ctx.send(
                            from,
                            HierMsg::TopologySync {
                                topology: self.topology.clone(),
                            },
                        );
                    }
                    return;
                }
                let eff = self.sub.handle(from, m);
                self.run_sub_effects(ctx, eff);
            }
            HierMsg::Fed(m) => {
                if self.fed.is_none() {
                    // The FedAvg leader can start replicating to us before
                    // our JoinAck arrives; activate lazily if we are the
                    // legitimate subgroup representative.
                    if self.sub.is_leader() {
                        self.activate_fed(ctx);
                    } else {
                        return; // stray traffic for a role we lost
                    }
                }
                // `activate_fed` just installed the node (or it already
                // existed); if activation declined, drop the message.
                let Some(fed) = self.fed.as_mut() else { return };
                let eff = fed.handle(from, m);
                self.run_fed_effects(ctx, eff);
            }
            HierMsg::JoinRequest {
                from: joiner,
                replaces,
            } => self.on_join_request(ctx, joiner, replaces),
            HierMsg::JoinAck { accepted, leader } => self.on_join_ack(ctx, accepted, leader),
            HierMsg::Probe { seq } => ctx.send(from, HierMsg::ProbeAck { seq }),
            // The heard_from above already did all the work an ack carries.
            HierMsg::ProbeAck { .. } => {}
            // We are demonstrably alive: refute the eviction. The ack
            // revives us in the sender's detector, which re-admits us.
            HierMsg::Evict { .. } => ctx.send(from, HierMsg::ProbeAck { seq: 0 }),
            HierMsg::ConfigEcho { version, digest } => {
                self.on_config_echo(ctx, from, version, digest)
            }
            HierMsg::Rendezvous { from: peer } => self.on_rendezvous(ctx, peer),
            HierMsg::RendezvousAssign {
                accepted,
                leader,
                topology,
            } => self.on_rendezvous_assign(ctx, accepted, leader, topology),
            HierMsg::TopologySync { topology } => {
                if self.cfg.elastic.is_some() {
                    self.adopt_topology(ctx, &topology);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport<HierMsg>, tag: u64) {
        match tag {
            TIMER_SUB_ELECTION => {
                self.sub_election_timer = None;
                let eff = self.sub.on_election_timeout();
                self.run_sub_effects(ctx, eff);
            }
            TIMER_SUB_HEARTBEAT => {
                self.sub_heartbeat_timer = None;
                let eff = self.sub.on_heartbeat_timeout();
                self.run_sub_effects(ctx, eff);
            }
            TIMER_FED_ELECTION => {
                self.fed_election_timer = None;
                if let Some(fed) = self.fed.as_mut() {
                    let eff = fed.on_election_timeout();
                    self.run_fed_effects(ctx, eff);
                }
            }
            TIMER_FED_HEARTBEAT => {
                self.fed_heartbeat_timer = None;
                if let Some(fed) = self.fed.as_mut() {
                    let eff = fed.on_heartbeat_timeout();
                    self.run_fed_effects(ctx, eff);
                }
            }
            TIMER_CONFIG_TICK => self.on_config_tick(ctx),
            TIMER_PROBE_TICK => self.on_probe_tick(ctx),
            TIMER_RENDEZVOUS_TICK => {
                self.rendezvous_timer = None;
                self.send_rendezvous(ctx);
            }
            TIMER_JOIN_TICK => {
                self.join_tick_timer = None;
                if self.fed.is_none() && self.sub.is_leader() {
                    // Round-robin to the next candidate unless we have a
                    // confirmed leader hint.
                    self.send_join(ctx);
                    Self::arm(
                        ctx,
                        &mut self.join_tick_timer,
                        self.cfg.join_poll_interval,
                        TIMER_JOIN_TICK,
                    );
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.sub_election_timer = None;
        self.sub_heartbeat_timer = None;
        self.fed_election_timer = None;
        self.fed_heartbeat_timer = None;
        self.join_tick_timer = None;
        self.probe_tick_timer = None;
        self.rendezvous_timer = None;
        self.config_tick_armed = false;
    }

    fn on_restart(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if self.pending_rendezvous {
            // Still unplaced: resume polling for an assignment.
            self.send_rendezvous(ctx);
            return;
        }
        // Raft state is durable: if this peer held a FedAvg-layer seat, it
        // rejoins that layer as a follower. If its subgroup elected a
        // replacement in the meantime, the replacement's join commits a
        // RemoveServer for this peer and the ConfigChanged handler retires
        // it; until then its vote still counts toward FedAvg-layer quorum
        // (matching hashicorp/raft's restart semantics).
        self.detector.reset_all(ctx.now());
        if let Some(fed) = self.fed.as_mut() {
            let eff = fed.handle_restart();
            self.run_fed_effects(ctx, eff);
        }
        let eff = self.sub.handle_restart();
        self.run_sub_effects(ctx, eff);
    }
}
