//! The two-layer peer: a subgroup Raft participant that, while leading its
//! subgroup, also participates in the FedAvg-layer Raft.
//!
//! Implements the paper's Sec. V mechanics:
//!
//! * every peer runs its subgroup's Raft;
//! * the subgroup leader joins the FedAvg-layer Raft, and periodically
//!   commits the FedAvg-layer configuration into its subgroup log;
//! * the post-leader-election callback: a newly elected subgroup leader
//!   reads that replicated configuration and asks the FedAvg leader to
//!   admit it (replacing its subgroup's crashed representative) via the
//!   cluster-membership-change protocol;
//! * a pending joiner polls for a FedAvg leader on a fixed interval (the
//!   paper uses 100 ms) until an election over there produces one.
//!
//! Deviation noted for reviewers: when handling a join, the FedAvg leader
//! proposes `RemoveServer(old)` and `AddServer(new)` back-to-back instead
//! of waiting for the first change to commit; with a single proposer this
//! is safe in our setting and keeps recovery latency low.

use crate::config::{FedCmd, FedConfig, HierMsg, HierPeerConfig, SubCmd, SubMembers};
use crate::detector::{FailureDetector, Liveness};
use p2pfl_raft::{Effect, Entry, LogCmd, RaftConfig, RaftNode, RaftStorage};
use p2pfl_simnet::{Actor, NodeId, SimDuration, SimTime, TimerId, Transport};
use std::collections::{BTreeMap, BTreeSet};

const TIMER_SUB_ELECTION: u64 = 1;
const TIMER_SUB_HEARTBEAT: u64 = 2;
const TIMER_FED_ELECTION: u64 = 3;
const TIMER_FED_HEARTBEAT: u64 = 4;
const TIMER_CONFIG_TICK: u64 = 5;
const TIMER_JOIN_TICK: u64 = 6;
const TIMER_PROBE_TICK: u64 = 7;

/// A peer in the two-layer Raft deployment.
pub struct HierActor {
    cfg: HierPeerConfig,
    sub: RaftNode<SubCmd>,
    fed: Option<RaftNode<FedCmd>>,
    sub_storage: Option<Box<dyn RaftStorage<SubCmd>>>,
    fed_storage: Option<Box<dyn RaftStorage<FedCmd>>>,
    sub_election_timer: Option<TimerId>,
    sub_heartbeat_timer: Option<TimerId>,
    fed_election_timer: Option<TimerId>,
    fed_heartbeat_timer: Option<TimerId>,
    join_tick_timer: Option<TimerId>,
    probe_tick_timer: Option<TimerId>,
    config_tick_armed: bool,
    config_version: u64,
    members_version: u64,
    /// The roster this leader last proposed but has not yet seen commit;
    /// further changes build on it so receipt bursts don't re-propose the
    /// same re-admission.
    proposed_roster: Option<SubMembers>,
    join_target: Option<NodeId>,
    join_round_robin: usize,
    detector: FailureDetector,
    probe_seq: u64,
    /// Latest FedAvg-layer configuration this peer knows (deployment-time
    /// founding config until a replicated update commits).
    pub fed_config: FedConfig,
    /// Latest replicated aggregation roster of this peer's subgroup (the
    /// full subgroup until a detector-driven update commits).
    pub sub_members: SubMembers,
    /// `(when, member, evicted?)` roster changes this peer proposed as
    /// subgroup leader: `true` = eviction, `false` = re-admission.
    pub roster_changes: Vec<(SimTime, NodeId, bool)>,
    /// Times at which this peer won its subgroup election.
    pub sub_leader_history: Vec<SimTime>,
    /// Times at which this peer won the FedAvg-layer election.
    pub fed_leader_history: Vec<SimTime>,
    /// When this peer's join request was accepted.
    pub join_ack_at: Option<SimTime>,
    /// When this peer's FedAvg-layer Raft instance became active.
    pub fed_active_at: Option<SimTime>,
    /// FedAvg-layer commands applied, in order.
    pub fed_cmds_applied: Vec<FedCmd>,
    /// Subgroup application commands applied, in order.
    pub sub_cmds_applied: Vec<u64>,
    /// Byzantine behavior switch (fault injection): when set, this peer
    /// broadcasts *conflicting* [`HierMsg::ConfigEcho`] digests to
    /// different subgroup members — the equivocating-leader fault.
    pub byz_equivocate: bool,
    /// Byzantine behavior switch (fault injection): when set and leading
    /// its subgroup, this peer proposes aggregation rosters containing a
    /// phantom member outside the configured subgroup.
    pub byz_bogus_roster: bool,
    /// Conflicting config echoes observed (each one is proof that the
    /// sender advertised a different config to us than it committed).
    pub equivocations_detected: u64,
    /// Replicated rosters rejected because they named members outside the
    /// configured subgroup.
    pub bogus_rosters_rejected: u64,
    /// Peers this actor convicted of equivocation. Convicted peers are
    /// evicted from the aggregation roster and never re-admitted by the
    /// liveness path — Byzantine is not a transient condition.
    pub byzantine_peers: BTreeSet<NodeId>,
    /// Digest of the [`FedConfig`] this peer applied, per version; the
    /// reference against which incoming echoes are cross-checked.
    echo_digests: BTreeMap<u64, u64>,
}

impl HierActor {
    /// Creates the peer. Founding FedAvg-layer members activate their
    /// FedAvg-layer Raft at startup and get a shortened first subgroup
    /// election timeout so the genesis subgroup leaders coincide with the
    /// founding configuration (the paper starts from such a stable state).
    pub fn new(cfg: HierPeerConfig) -> Self {
        Self::build(cfg, None, None)
    }

    /// Creates the peer with durable Raft state for both layers. On
    /// construction each layer's storage is replayed: a non-empty subgroup
    /// record restores term/vote/log, and a non-empty FedAvg-layer record
    /// means this peer held a representative seat when it went down — the
    /// restored instance is started again in [`Actor::on_start`] so its
    /// vote keeps counting toward FedAvg-layer quorum across the restart.
    pub fn with_storage(
        cfg: HierPeerConfig,
        sub_storage: Box<dyn RaftStorage<SubCmd>>,
        fed_storage: Box<dyn RaftStorage<FedCmd>>,
    ) -> Self {
        Self::build(cfg, Some(sub_storage), Some(fed_storage))
    }

    fn sub_raft_config(cfg: &HierPeerConfig) -> RaftConfig {
        RaftConfig {
            id: cfg.id,
            initial_cluster: cfg.subgroup.clone(),
            election_timeout_min: cfg.t,
            election_timeout_max: cfg.t.saturating_mul(2),
            heartbeat_interval: cfg.heartbeat,
            seed: cfg.seed ^ 0x5ab,
            pre_vote: true,
        }
    }

    fn fed_raft_config(cfg: &HierPeerConfig, founding: Vec<NodeId>) -> RaftConfig {
        RaftConfig {
            id: cfg.id,
            initial_cluster: founding,
            election_timeout_min: cfg.t,
            election_timeout_max: cfg.t.saturating_mul(2),
            heartbeat_interval: cfg.heartbeat,
            seed: cfg.seed ^ 0xfed,
            pre_vote: true,
        }
    }

    fn build(
        cfg: HierPeerConfig,
        mut sub_storage: Option<Box<dyn RaftStorage<SubCmd>>>,
        mut fed_storage: Option<Box<dyn RaftStorage<FedCmd>>>,
    ) -> Self {
        let sub_cfg = Self::sub_raft_config(&cfg);
        let sub = match sub_storage.as_mut().and_then(|s| s.load()) {
            Some(state) => RaftNode::restore(sub_cfg, state),
            None => RaftNode::new(sub_cfg),
        };
        let fed = fed_storage.as_mut().and_then(|s| s.load()).map(|state| {
            RaftNode::restore(Self::fed_raft_config(&cfg, cfg.founding_fed.clone()), state)
        });
        let fed_config = FedConfig {
            founding: cfg.founding_fed.clone(),
            current: cfg.founding_fed.clone(),
            engine: cfg.engine,
            combiner: cfg.combiner,
            version: 0,
        };
        let sub_members = SubMembers {
            members: cfg.subgroup.clone(),
            version: 0,
        };
        let detector = FailureDetector::new(
            cfg.subgroup.iter().copied().filter(|&p| p != cfg.id),
            cfg.suspect_after,
            cfg.dead_after,
            SimTime::ZERO,
        );
        HierActor {
            sub,
            fed,
            sub_storage,
            fed_storage,
            sub_election_timer: None,
            sub_heartbeat_timer: None,
            fed_election_timer: None,
            fed_heartbeat_timer: None,
            join_tick_timer: None,
            probe_tick_timer: None,
            config_tick_armed: false,
            config_version: 0,
            members_version: 0,
            proposed_roster: None,
            join_target: None,
            join_round_robin: 0,
            detector,
            probe_seq: 0,
            fed_config,
            sub_members,
            roster_changes: Vec::new(),
            sub_leader_history: Vec::new(),
            fed_leader_history: Vec::new(),
            join_ack_at: None,
            fed_active_at: None,
            fed_cmds_applied: Vec::new(),
            sub_cmds_applied: Vec::new(),
            byz_equivocate: false,
            byz_bogus_roster: false,
            equivocations_detected: 0,
            bogus_rosters_rejected: 0,
            byzantine_peers: BTreeSet::new(),
            echo_digests: BTreeMap::new(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Accessors used by experiments, tests, and the aggregation system
    // ------------------------------------------------------------------

    /// This peer's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// Whether this peer currently leads its subgroup.
    pub fn is_sub_leader(&self) -> bool {
        self.sub.is_leader()
    }

    /// Whether this peer currently leads the FedAvg layer.
    pub fn is_fed_leader(&self) -> bool {
        self.fed.as_ref().is_some_and(|f| f.is_leader())
    }

    /// Whether this peer's FedAvg-layer Raft instance is active.
    pub fn is_fed_member(&self) -> bool {
        self.fed.is_some()
    }

    /// The subgroup Raft state.
    pub fn sub_raft(&self) -> &RaftNode<SubCmd> {
        &self.sub
    }

    /// This peer's failure-detector verdict on a subgroup member.
    pub fn liveness_of(&self, peer: NodeId) -> Liveness {
        self.detector.liveness(peer)
    }

    /// The aggregation roster this peer currently believes in: the
    /// replicated member list, in subgroup order.
    pub fn live_sub_members(&self) -> &[NodeId] {
        &self.sub_members.members
    }

    /// The FedAvg-layer Raft state, if active.
    pub fn fed_raft(&self) -> Option<&RaftNode<FedCmd>> {
        self.fed.as_ref()
    }

    /// StorageRoundTrip oracle hook for the invariant checker: replays both
    /// storage handles (when present) and checks that a node restored from
    /// them would be bisimilar to the live Raft instances — same term, vote,
    /// log, and snapshot. Returns a description of the first divergence.
    pub fn verify_storage_roundtrip(&mut self) -> Result<(), String> {
        if let Some(st) = self.sub_storage.as_mut() {
            let state = st.load().unwrap_or_default();
            self.sub
                .matches_persistent(&state)
                .map_err(|e| format!("sub layer: {e}"))?;
        }
        if let (Some(st), Some(fed)) = (self.fed_storage.as_mut(), self.fed.as_ref()) {
            let state = st.load().unwrap_or_default();
            fed.matches_persistent(&state)
                .map_err(|e| format!("fed layer: {e}"))?;
        }
        Ok(())
    }

    /// Proposes an application command on the FedAvg layer (leader only).
    pub fn propose_fed(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        cmd: FedCmd,
    ) -> Result<(), &'static str> {
        let Some(fed) = self.fed.as_mut() else {
            return Err("not a FedAvg-layer member");
        };
        match fed.propose(LogCmd::App(cmd)) {
            Ok((_, eff)) => {
                self.run_fed_effects(ctx, eff);
                Ok(())
            }
            Err(_) => Err("not the FedAvg leader"),
        }
    }

    /// Proposes an application command on the subgroup (leader only).
    pub fn propose_sub(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        cmd: u64,
    ) -> Result<(), &'static str> {
        match self.sub.propose(LogCmd::App(SubCmd::App(cmd))) {
            Ok((_, eff)) => {
                self.run_sub_effects(ctx, eff);
                Ok(())
            }
            Err(_) => Err("not the subgroup leader"),
        }
    }

    // ------------------------------------------------------------------
    // Effect plumbing
    // ------------------------------------------------------------------

    fn arm(ctx: &mut dyn Transport<HierMsg>, slot: &mut Option<TimerId>, d: SimDuration, tag: u64) {
        if let Some(t) = slot.take() {
            ctx.cancel_timer(t);
        }
        *slot = Some(ctx.set_timer(d, tag));
    }

    fn run_sub_effects(&mut self, ctx: &mut dyn Transport<HierMsg>, effects: Vec<Effect<SubCmd>>) {
        for e in effects {
            match e {
                Effect::Send(to, msg) => ctx.send(to, HierMsg::Sub(msg)),
                Effect::ArmElectionTimer(d) => {
                    Self::arm(ctx, &mut self.sub_election_timer, d, TIMER_SUB_ELECTION)
                }
                Effect::ArmHeartbeatTimer(d) => {
                    Self::arm(ctx, &mut self.sub_heartbeat_timer, d, TIMER_SUB_HEARTBEAT)
                }
                Effect::Commit(entry) => self.apply_sub_entry(ctx, &entry),
                Effect::BecameLeader(_) => {
                    self.sub_leader_history.push(ctx.now());
                    self.on_became_sub_leader(ctx);
                }
                Effect::Persist(op) => {
                    if let Some(st) = self.sub_storage.as_mut() {
                        st.record(&op);
                    }
                }
                // Subgroup logs are tiny (configs + round markers); this
                // deployment never compacts them.
                Effect::RestoreSnapshot(_) => {}
                Effect::SteppedDown(_) | Effect::ConfigChanged(_) => {}
            }
        }
    }

    fn run_fed_effects(&mut self, ctx: &mut dyn Transport<HierMsg>, effects: Vec<Effect<FedCmd>>) {
        let mut retire = false;
        for e in effects {
            match e {
                Effect::Send(to, msg) => ctx.send(to, HierMsg::Fed(msg)),
                Effect::ArmElectionTimer(d) => {
                    Self::arm(ctx, &mut self.fed_election_timer, d, TIMER_FED_ELECTION)
                }
                Effect::ArmHeartbeatTimer(d) => {
                    Self::arm(ctx, &mut self.fed_heartbeat_timer, d, TIMER_FED_HEARTBEAT)
                }
                Effect::Commit(entry) => {
                    if let LogCmd::App(v) = entry.cmd {
                        self.fed_cmds_applied.push(v);
                    }
                }
                Effect::BecameLeader(_) => self.fed_leader_history.push(ctx.now()),
                Effect::ConfigChanged(cluster) => {
                    // A replicated membership change removed this peer from
                    // the FedAvg layer (its subgroup elected a replacement
                    // while it was down): retire gracefully — but only after
                    // the rest of the batch, so the removal entry's own
                    // broadcast still reaches the remaining members.
                    if !cluster.contains(&self.cfg.id) {
                        retire = true;
                    }
                }
                Effect::Persist(op) => {
                    if let Some(st) = self.fed_storage.as_mut() {
                        st.record(&op);
                    }
                }
                Effect::RestoreSnapshot(_) => {}
                Effect::SteppedDown(_) => {}
            }
        }
        if retire {
            self.fed = None;
            for slot in [&mut self.fed_election_timer, &mut self.fed_heartbeat_timer] {
                if let Some(t) = slot.take() {
                    ctx.cancel_timer(t);
                }
            }
        }
    }

    fn apply_sub_entry(&mut self, ctx: &mut dyn Transport<HierMsg>, entry: &Entry<SubCmd>) {
        match &entry.cmd {
            LogCmd::App(SubCmd::FedConfig(c)) => {
                if c.version >= self.fed_config.version {
                    self.fed_config = c.clone();
                }
                self.broadcast_config_echo(ctx, c);
                // A restarted ex-representative learns through its
                // subgroup log that the FedAvg layer moved on without it:
                // retire the stale FedAvg-layer instance.
                if self.fed.is_some()
                    && !self.sub.is_leader()
                    && !self.fed_config.current.contains(&self.cfg.id)
                {
                    self.fed = None;
                    for slot in [&mut self.fed_election_timer, &mut self.fed_heartbeat_timer] {
                        if let Some(t) = slot.take() {
                            ctx.cancel_timer(t);
                        }
                    }
                }
            }
            LogCmd::App(SubCmd::Members(m)) => {
                // Bogus-roster defense: a replicated roster may only name
                // members of the configured subgroup. A Byzantine leader
                // that smuggles a phantom member into the aggregation
                // roster is ignored — the previous roster stays in force.
                if !m.members.iter().all(|p| self.cfg.subgroup.contains(p)) {
                    self.bogus_rosters_rejected += 1;
                    return;
                }
                if m.version >= self.sub_members.version {
                    self.sub_members = m.clone();
                }
                if self
                    .proposed_roster
                    .as_ref()
                    .is_some_and(|p| m.version >= p.version)
                {
                    self.proposed_roster = None;
                }
            }
            LogCmd::App(SubCmd::App(v)) => self.sub_cmds_applied.push(*v),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Config echo witness protocol (equivocation detection)
    // ------------------------------------------------------------------

    /// After applying a [`FedConfig`], every peer echoes the config's
    /// digest to its subgroup. Raft keeps the committed config identical
    /// across honest members at a given version, so any echo disagreeing
    /// with the locally applied digest convicts its sender of advertising
    /// a different config — equivocation.
    fn broadcast_config_echo(&mut self, ctx: &mut dyn Transport<HierMsg>, c: &FedConfig) {
        let digest = c.digest();
        self.echo_digests.insert(c.version, digest);
        for &peer in &self.cfg.subgroup.clone() {
            if peer == self.cfg.id {
                continue;
            }
            // The equivocating-leader fault: advertise one config to
            // even-numbered peers and a different one to odd-numbered
            // peers — mutually conflicting claims about the same version.
            let d = if self.byz_equivocate {
                digest ^ (peer.0 as u64 & 1)
            } else {
                digest
            };
            ctx.send(
                peer,
                HierMsg::ConfigEcho {
                    version: c.version,
                    digest: d,
                },
            );
        }
    }

    fn on_config_echo(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        from: NodeId,
        version: u64,
        digest: u64,
    ) {
        if !self.cfg.subgroup.contains(&from) {
            return;
        }
        match self.echo_digests.get(&version) {
            // We applied this version ourselves; a differing digest is
            // proof the sender saw (or fabricated) a conflicting config.
            Some(&mine) if mine != digest => {
                self.equivocations_detected += 1;
                self.convict_byzantine(ctx, from);
            }
            Some(_) => {}
            // We have not applied this version yet: remember the claim so
            // our own apply would conflict... keeping only our own applied
            // digests is enough for detection, because the equivocator must
            // eventually disagree with some peer that has applied.
            None => {}
        }
    }

    /// Marks a peer as Byzantine: evicts it from the aggregation roster
    /// (when leading) and bars the liveness path from ever re-admitting
    /// it. Shares the PR-5 supervision path — the eviction is an ordinary
    /// replicated roster change.
    fn convict_byzantine(&mut self, ctx: &mut dyn Transport<HierMsg>, peer: NodeId) {
        self.byzantine_peers.insert(peer);
        if self.sub.is_leader() {
            self.propose_roster_change(ctx, peer, true);
            ctx.send(
                peer,
                HierMsg::Evict {
                    reason: "equivocation: conflicting config echo".into(),
                },
            );
        }
    }

    /// External conviction entry point: a supervisor that detected
    /// Byzantine behavior out-of-band (e.g. a commitment-check failure in
    /// the aggregation layer) reports it here. Same consequences as an
    /// in-protocol conviction: permanent bar from re-admission, and a
    /// replicated roster eviction when this peer leads.
    pub fn convict(&mut self, ctx: &mut dyn Transport<HierMsg>, peer: NodeId) {
        self.convict_byzantine(ctx, peer);
    }

    // ------------------------------------------------------------------
    // Failure detection & self-healing roster (beyond-paper: Sec. V only
    // heals Raft seats; this heals the aggregation membership too)
    // ------------------------------------------------------------------

    /// Leader-side roster update: proposes a new replicated member list
    /// with `member` evicted or re-admitted. No-ops when the roster
    /// already reflects the change or this peer stopped leading.
    fn propose_roster_change(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        member: NodeId,
        evict: bool,
    ) {
        if !self.sub.is_leader() || member == self.cfg.id {
            return;
        }
        let base = self
            .proposed_roster
            .as_ref()
            .filter(|p| p.version > self.sub_members.version)
            .unwrap_or(&self.sub_members);
        let mut members = base.members.clone();
        if evict {
            if !members.contains(&member) {
                return;
            }
            members.retain(|&m| m != member);
        } else {
            if members.contains(&member) || !self.cfg.subgroup.contains(&member) {
                return;
            }
            // Keep subgroup (= position) order stable for SAC rosters.
            members = self
                .cfg
                .subgroup
                .iter()
                .copied()
                .filter(|m| members.contains(m) || *m == member)
                .collect();
        }
        self.members_version = self.members_version.max(base.version) + 1;
        let roster = SubMembers {
            members,
            version: self.members_version,
        };
        if let Ok((_, eff)) = self
            .sub
            .propose(LogCmd::App(SubCmd::Members(roster.clone())))
        {
            self.proposed_roster = Some(roster);
            self.roster_changes.push((ctx.now(), member, evict));
            self.run_sub_effects(ctx, eff);
        }
    }

    /// Any receipt from a subgroup member feeds the detector; a receipt
    /// that revives a suspected/dead member triggers its re-admission to
    /// the aggregation roster (the "suspected peer recovers" race must
    /// never end in an eviction).
    fn note_heard_from(&mut self, ctx: &mut dyn Transport<HierMsg>, from: NodeId) {
        let revived = self.detector.heard_from(from, ctx.now());
        let missing = !self.sub_members.members.contains(&from);
        if (revived || missing)
            && self.sub.is_leader()
            && self.cfg.subgroup.contains(&from)
            // Byzantine is not transient: a convicted equivocator stays
            // evicted no matter how alive it looks.
            && !self.byzantine_peers.contains(&from)
        {
            self.propose_roster_change(ctx, from, false);
        }
    }

    fn on_probe_tick(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        self.probe_tick_timer = None;
        if !self.sub.is_leader() {
            return; // stops ticking; re-armed on the next leadership win
        }
        for (peer, verdict) in self.detector.tick(ctx.now()) {
            if verdict == Liveness::Dead {
                self.propose_roster_change(ctx, peer, true);
                ctx.send(
                    peer,
                    HierMsg::Evict {
                        reason: "failure detector: confirm window expired".into(),
                    },
                );
            }
        }
        // Probe every currently suspected member: Raft heartbeats stop
        // reaching a partitioned peer's *replies* to us, but an explicit
        // probe/ack pair gives it a dedicated path to refute suspicion
        // before the confirm window expires.
        for peer in self.detector.suspected() {
            self.probe_seq += 1;
            ctx.send(
                peer,
                HierMsg::Probe {
                    seq: self.probe_seq,
                },
            );
        }
        Self::arm(
            ctx,
            &mut self.probe_tick_timer,
            self.cfg.probe_interval,
            TIMER_PROBE_TICK,
        );
    }

    // ------------------------------------------------------------------
    // Post-leader-election callback & join protocol (paper Sec. V-A1)
    // ------------------------------------------------------------------

    fn on_became_sub_leader(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if !self.config_tick_armed {
            self.config_tick_armed = true;
            ctx.set_timer(self.cfg.config_commit_interval, TIMER_CONFIG_TICK);
        }
        // Start detecting from a clean slate: quiet time accumulated while
        // someone else led (and we weren't probing) must not instantly
        // convict anyone. A roster proposal from a previous term may never
        // commit, so forget it too.
        self.detector.reset_all(ctx.now());
        self.proposed_roster = None;
        // A conviction reached while following could not evict; do it now.
        for peer in self.byzantine_peers.clone() {
            self.propose_roster_change(ctx, peer, true);
        }
        Self::arm(
            ctx,
            &mut self.probe_tick_timer,
            self.cfg.probe_interval,
            TIMER_PROBE_TICK,
        );
        if self.fed.is_none() {
            self.join_target = None;
            self.send_join(ctx);
            Self::arm(
                ctx,
                &mut self.join_tick_timer,
                self.cfg.join_poll_interval,
                TIMER_JOIN_TICK,
            );
        }
    }

    /// The FedAvg-layer member this peer would replace: the configured
    /// representative of its own subgroup (normally the crashed previous
    /// subgroup leader).
    fn replaces(&self) -> Option<NodeId> {
        self.fed_config
            .current
            .iter()
            .copied()
            .find(|m| *m != self.cfg.id && self.cfg.subgroup.contains(m))
    }

    fn send_join(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        // Poll the configured FedAvg members, but also this peer's own
        // subgroup: the replicated fed config can be arbitrarily stale
        // (e.g. still the founding set after several failovers), while the
        // previous representative of this very subgroup — who can redirect
        // to the live FedAvg leader — is always a subgroup peer.
        let mut candidates: Vec<NodeId> = self
            .fed_config
            .current
            .iter()
            .chain(self.cfg.subgroup.iter())
            .copied()
            .filter(|&m| m != self.cfg.id)
            .collect();
        candidates.sort_by_key(|m| m.0);
        candidates.dedup();
        if candidates.is_empty() {
            return;
        }
        // A leader hint is consumed by the send: if the hinted peer is
        // itself dead (e.g. it was the crashed FedAvg leader), the next
        // poll tick falls back to round-robin probing of the configured
        // members instead of retrying the corpse forever.
        let target = self.join_target.take().unwrap_or_else(|| {
            let t = candidates[self.join_round_robin % candidates.len()];
            self.join_round_robin += 1;
            t
        });
        ctx.send(
            target,
            HierMsg::JoinRequest {
                from: self.cfg.id,
                replaces: self.replaces(),
            },
        );
    }

    fn activate_fed(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        if self.fed.is_some() {
            return;
        }
        let fed_cfg = Self::fed_raft_config(&self.cfg, self.fed_config.founding.clone());
        let mut fed = match self.fed_storage.as_mut().and_then(|s| s.load()) {
            Some(state) => RaftNode::restore(fed_cfg, state),
            None => RaftNode::new(fed_cfg),
        };
        let eff = fed.start();
        self.fed = Some(fed);
        self.fed_active_at = Some(ctx.now());
        self.run_fed_effects(ctx, eff);
        if let Some(t) = self.join_tick_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn on_join_request(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        from: NodeId,
        replaces: Option<NodeId>,
    ) {
        match self.fed.as_mut() {
            Some(fed) if fed.is_leader() => {
                let mut effects = Vec::new();
                if let Some(r) = replaces {
                    if r != from && fed.cluster().contains(&r) {
                        if let Ok((_, eff)) = fed.propose(LogCmd::RemoveServer(r)) {
                            effects.extend(eff);
                        }
                    }
                }
                if !fed.cluster().contains(&from) {
                    if let Ok((_, eff)) = fed.propose(LogCmd::AddServer(from)) {
                        effects.extend(eff);
                    }
                }
                self.run_fed_effects(ctx, effects);
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: true,
                        leader: Some(self.cfg.id),
                    },
                );
            }
            Some(fed) => {
                let hint = fed.leader_hint().filter(|&l| l != self.cfg.id);
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: false,
                        leader: hint,
                    },
                );
            }
            None => {
                ctx.send(
                    from,
                    HierMsg::JoinAck {
                        accepted: false,
                        leader: None,
                    },
                );
            }
        }
    }

    fn on_join_ack(
        &mut self,
        ctx: &mut dyn Transport<HierMsg>,
        accepted: bool,
        leader: Option<NodeId>,
    ) {
        if self.fed.is_some() || !self.sub.is_leader() {
            return;
        }
        if accepted {
            self.join_ack_at = Some(ctx.now());
            self.activate_fed(ctx);
        } else if let Some(l) = leader {
            // Redirect immediately toward the hinted leader; the hint is
            // one-shot (see `send_join`).
            self.join_target = Some(l);
            self.send_join(ctx);
        }
    }

    fn on_config_tick(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        self.config_tick_armed = false;
        if !self.sub.is_leader() {
            return;
        }
        if let Some(fed) = self.fed.as_ref() {
            // A replacement leader's counter restarts at zero while its
            // followers already hold the previous leader's higher-versioned
            // configs; always advance past everything seen so the commit is
            // not rejected as stale.
            self.config_version = self.config_version.max(self.fed_config.version) + 1;
            let cmd = SubCmd::FedConfig(FedConfig {
                founding: self.fed_config.founding.clone(),
                current: fed.cluster().to_vec(),
                engine: self.fed_config.engine,
                combiner: self.fed_config.combiner,
                version: self.config_version,
            });
            if let Ok((_, eff)) = self.sub.propose(LogCmd::App(cmd)) {
                self.run_sub_effects(ctx, eff);
            }
        }
        if self.byz_bogus_roster {
            // Byzantine leader fault: replicate a roster naming a phantom
            // member outside the configured subgroup. Honest followers
            // reject it in `apply_sub_entry`.
            self.members_version = self.members_version.max(self.sub_members.version) + 1;
            let mut members = self.sub_members.members.clone();
            members.push(NodeId(u32::MAX));
            let roster = SubMembers {
                members,
                version: self.members_version,
            };
            if let Ok((_, eff)) = self.sub.propose(LogCmd::App(SubCmd::Members(roster))) {
                self.run_sub_effects(ctx, eff);
            }
        }
        self.config_tick_armed = true;
        ctx.set_timer(self.cfg.config_commit_interval, TIMER_CONFIG_TICK);
    }
}

impl Actor<HierMsg> for HierActor {
    fn on_start(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        let eff = self.sub.start();
        self.run_sub_effects(ctx, eff);
        if let Some(fed) = self.fed.as_mut() {
            // Restored from durable state with a FedAvg-layer seat: rejoin
            // that layer as a follower. No genesis boost — the cluster this
            // peer restarts into already exists.
            let eff = fed.start();
            self.fed_active_at = Some(ctx.now());
            self.run_fed_effects(ctx, eff);
        } else if self.cfg.is_founding() {
            // Shorten the genesis election so founding members win their
            // subgroup's first election (see `new`).
            let boost = SimDuration::from_nanos((self.cfg.t.as_nanos() / 20).max(1));
            Self::arm(ctx, &mut self.sub_election_timer, boost, TIMER_SUB_ELECTION);
            self.activate_fed(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Transport<HierMsg>, from: NodeId, msg: HierMsg) {
        if self.cfg.subgroup.contains(&from) {
            self.note_heard_from(ctx, from);
        }
        match msg {
            HierMsg::Sub(m) => {
                let eff = self.sub.handle(from, m);
                self.run_sub_effects(ctx, eff);
            }
            HierMsg::Fed(m) => {
                if self.fed.is_none() {
                    // The FedAvg leader can start replicating to us before
                    // our JoinAck arrives; activate lazily if we are the
                    // legitimate subgroup representative.
                    if self.sub.is_leader() {
                        self.activate_fed(ctx);
                    } else {
                        return; // stray traffic for a role we lost
                    }
                }
                // `activate_fed` just installed the node (or it already
                // existed); if activation declined, drop the message.
                let Some(fed) = self.fed.as_mut() else { return };
                let eff = fed.handle(from, m);
                self.run_fed_effects(ctx, eff);
            }
            HierMsg::JoinRequest {
                from: joiner,
                replaces,
            } => self.on_join_request(ctx, joiner, replaces),
            HierMsg::JoinAck { accepted, leader } => self.on_join_ack(ctx, accepted, leader),
            HierMsg::Probe { seq } => ctx.send(from, HierMsg::ProbeAck { seq }),
            // The heard_from above already did all the work an ack carries.
            HierMsg::ProbeAck { .. } => {}
            // We are demonstrably alive: refute the eviction. The ack
            // revives us in the sender's detector, which re-admits us.
            HierMsg::Evict { .. } => ctx.send(from, HierMsg::ProbeAck { seq: 0 }),
            HierMsg::ConfigEcho { version, digest } => {
                self.on_config_echo(ctx, from, version, digest)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport<HierMsg>, tag: u64) {
        match tag {
            TIMER_SUB_ELECTION => {
                self.sub_election_timer = None;
                let eff = self.sub.on_election_timeout();
                self.run_sub_effects(ctx, eff);
            }
            TIMER_SUB_HEARTBEAT => {
                self.sub_heartbeat_timer = None;
                let eff = self.sub.on_heartbeat_timeout();
                self.run_sub_effects(ctx, eff);
            }
            TIMER_FED_ELECTION => {
                self.fed_election_timer = None;
                if let Some(fed) = self.fed.as_mut() {
                    let eff = fed.on_election_timeout();
                    self.run_fed_effects(ctx, eff);
                }
            }
            TIMER_FED_HEARTBEAT => {
                self.fed_heartbeat_timer = None;
                if let Some(fed) = self.fed.as_mut() {
                    let eff = fed.on_heartbeat_timeout();
                    self.run_fed_effects(ctx, eff);
                }
            }
            TIMER_CONFIG_TICK => self.on_config_tick(ctx),
            TIMER_PROBE_TICK => self.on_probe_tick(ctx),
            TIMER_JOIN_TICK => {
                self.join_tick_timer = None;
                if self.fed.is_none() && self.sub.is_leader() {
                    // Round-robin to the next candidate unless we have a
                    // confirmed leader hint.
                    self.send_join(ctx);
                    Self::arm(
                        ctx,
                        &mut self.join_tick_timer,
                        self.cfg.join_poll_interval,
                        TIMER_JOIN_TICK,
                    );
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.sub_election_timer = None;
        self.sub_heartbeat_timer = None;
        self.fed_election_timer = None;
        self.fed_heartbeat_timer = None;
        self.join_tick_timer = None;
        self.probe_tick_timer = None;
        self.config_tick_armed = false;
    }

    fn on_restart(&mut self, ctx: &mut dyn Transport<HierMsg>) {
        // Raft state is durable: if this peer held a FedAvg-layer seat, it
        // rejoins that layer as a follower. If its subgroup elected a
        // replacement in the meantime, the replacement's join commits a
        // RemoveServer for this peer and the ConfigChanged handler retires
        // it; until then its vote still counts toward FedAvg-layer quorum
        // (matching hashicorp/raft's restart semantics).
        self.detector.reset_all(ctx.now());
        if let Some(fed) = self.fed.as_mut() {
            let eff = fed.handle_restart();
            self.run_fed_effects(ctx, eff);
        }
        let eff = self.sub.handle_restart();
        self.run_sub_effects(ctx, eff);
    }
}
