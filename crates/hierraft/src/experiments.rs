//! Crash-recovery experiment harnesses reproducing paper Figs. 10–12.
//!
//! Each trial builds the paper's topology (5 subgroups × 5 peers, 15 ms
//! links), waits for stability, injects a crash, and measures the recovery
//! milestones on the virtual clock. Binaries in `p2pfl-bench` sweep these
//! over the paper's four timeout ranges and 1000 seeds.

use crate::actor::HierActor;
use crate::topology::{Deployment, DeploymentSpec};
use p2pfl_simnet::{SimDuration, SimTime};

/// Milestones after a *subgroup* leader crash (Figs. 10 and 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgroupRecovery {
    /// Crash detection + new subgroup leader election (Fig. 10).
    pub elect_ms: f64,
    /// Same, plus the new leader joining the FedAvg layer (Fig. 11).
    pub join_ms: f64,
}

/// Milestones after the *FedAvg leader* crash (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedRecovery {
    /// Time for the remaining FedAvg members to elect a new FedAvg leader.
    pub fed_elect_ms: f64,
    /// Time for the crashed peer's subgroup to elect a new leader.
    pub sub_elect_ms: f64,
    /// Total: until the new subgroup leader is attached to the FedAvg
    /// layer again (the full system rebuild).
    pub rebuild_ms: f64,
}

fn stabilize(t_ms: u64, seed: u64) -> Option<Deployment> {
    let mut d = Deployment::build(DeploymentSpec::paper(t_ms, seed));
    let deadline = SimTime::from_millis(40 * t_ms + 5_000);
    if d.wait_stable(deadline) {
        Some(d)
    } else {
        None
    }
}

/// One Fig. 10/11 trial: crash a subgroup leader that is *not* the FedAvg
/// leader, and measure election and FedAvg-join latencies. Returns `None`
/// if the deployment failed to stabilize or recover within the deadline
/// (does not happen for the paper's parameter ranges; the `Option` guards
/// against pathological seeds).
pub fn subgroup_leader_crash_trial(t_ms: u64, seed: u64) -> Option<SubgroupRecovery> {
    let mut d = stabilize(t_ms, seed)?;
    let fed_leader = d.fed_leader()?;
    // Pick the first subgroup whose leader is not the FedAvg leader.
    let group =
        (0..d.subgroups.len()).find(|&g| d.sub_leader_of(g).is_some_and(|l| l != fed_leader))?;
    let victim = d.sub_leader_of(group)?;

    let t0 = d.sim.now() + SimDuration::from_millis(1);
    d.sim.schedule_crash(victim, t0);
    let deadline = d.sim.now() + SimDuration::from_millis(100 * t_ms + 10_000);

    // Wait until the subgroup has a new leader that joined the FedAvg layer.
    let recovered = d.wait(deadline, |d| {
        d.sub_leader_of(group)
            .is_some_and(|l| l != victim && d.sim.actor::<HierActor>(l).is_fed_member())
    });
    if !recovered {
        return None;
    }
    let new_leader = d.sub_leader_of(group)?;
    let a = d.sim.actor::<HierActor>(new_leader);
    let elected_at = *a.sub_leader_history.iter().find(|&&at| at >= t0)?;
    let joined_at = a.fed_active_at.filter(|&at| at >= t0)?;
    Some(SubgroupRecovery {
        elect_ms: (elected_at - t0).as_millis_f64(),
        join_ms: (joined_at - t0).as_millis_f64(),
    })
}

/// One Fig. 12 trial: crash the FedAvg leader (which is also a subgroup
/// leader), forcing the double election and the FedAvg-layer rebuild.
pub fn fedavg_leader_crash_trial(t_ms: u64, seed: u64) -> Option<FedRecovery> {
    let mut d = stabilize(t_ms, seed)?;
    let victim = d.fed_leader()?;
    let group = (0..d.subgroups.len()).find(|&g| d.subgroups[g].contains(&victim))?;

    let t0 = d.sim.now() + SimDuration::from_millis(1);
    d.sim.schedule_crash(victim, t0);
    let deadline = d.sim.now() + SimDuration::from_millis(100 * t_ms + 10_000);

    let recovered = d.wait(deadline, |d| {
        let fed_ok = d.fed_leader().is_some_and(|l| l != victim);
        let sub_ok = d
            .sub_leader_of(group)
            .is_some_and(|l| l != victim && d.sim.actor::<HierActor>(l).is_fed_member());
        fed_ok && sub_ok
    });
    if !recovered {
        return None;
    }

    // New FedAvg leader election time: earliest fed leadership win >= t0.
    let mut fed_elect_at: Option<SimTime> = None;
    for g in &d.subgroups {
        for &id in g {
            if d.sim.is_crashed(id) {
                continue;
            }
            let a = d.sim.actor::<HierActor>(id);
            for &at in &a.fed_leader_history {
                if at >= t0 && fed_elect_at.is_none_or(|cur| at < cur) {
                    fed_elect_at = Some(at);
                }
            }
        }
    }
    let new_sub_leader = d.sub_leader_of(group)?;
    let a = d.sim.actor::<HierActor>(new_sub_leader);
    let sub_elect_at = *a.sub_leader_history.iter().find(|&&at| at >= t0)?;
    let rebuild_at = a.fed_active_at.filter(|&at| at >= t0)?;
    Some(FedRecovery {
        fed_elect_ms: (fed_elect_at? - t0).as_millis_f64(),
        sub_elect_ms: (sub_elect_at - t0).as_millis_f64(),
        rebuild_ms: (rebuild_at - t0).as_millis_f64(),
    })
}

/// Summary statistics for a series of trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Standard deviation.
    pub std_dev: f64,
}

impl Stats {
    /// Computes stats over a sample set; `None` if empty.
    pub fn of(xs: &[f64]) -> Option<Stats> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Some(Stats {
            count: xs.len(),
            mean,
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            std_dev: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgroup_trial_measures_recovery() {
        let r = subgroup_leader_crash_trial(100, 7).expect("trial must recover");
        // Election completes within a handful of timeout periods and the
        // join strictly follows the election.
        assert!(r.elect_ms > 0.0);
        assert!(r.join_ms >= r.elect_ms, "{r:?}");
        assert!(r.elect_ms < 3_000.0, "{r:?}");
    }

    #[test]
    fn fed_trial_measures_double_recovery() {
        let r = fedavg_leader_crash_trial(100, 11).expect("trial must recover");
        assert!(r.fed_elect_ms > 0.0);
        assert!(r.rebuild_ms >= r.sub_elect_ms, "{r:?}");
        assert!(r.rebuild_ms < 6_000.0, "{r:?}");
    }

    #[test]
    fn fed_trial_recovers_across_many_seeds() {
        // Regression guard for the stale-join-hint bug: right after the
        // FedAvg leader crashes, followers still hint at the corpse; the
        // joiner must fall back to probing instead of retrying it forever.
        for seed in 0..12u64 {
            assert!(
                fedavg_leader_crash_trial(100, 1000 + seed).is_some(),
                "seed {seed} failed to recover"
            );
        }
    }

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(Stats::of(&[]).is_none());
    }
}
