//! Elastic topology: a versioned subgroup layout with split/merge planning.
//!
//! The paper's deployment is a static grid of subgroups; PR 5's self-healing
//! membership left the *layout* as the remaining fragility: a subgroup
//! drained by churn decays toward the n'=2 privacy floor, while a flash
//! crowd piles joiners into oversized subgroups that blow the SAC traffic
//! budget. This module is the pure state machine behind dynamic
//! reconfiguration: a [`Topology`] maps stable group ids to member rosters,
//! a [`TopologyCmd`] is the replicated operation that mutates it (carried
//! through the FedAvg-layer Raft log, so every peer applies the same plan
//! in the same order), and [`Topology::plan`] is the deterministic policy
//! that proposes splits and merges whenever a roster leaves
//! `[n_min, n_max]`.
//!
//! Everything here is pure and deterministic: no clocks, no transports, no
//! randomness. The actor layer ([`crate::HierActor`]) replicates commands
//! and reacts to the resulting transitions (subgroup Raft rebuild, SAC
//! re-key); this module only decides *what* the layout is.

use p2pfl_simnet::NodeId;

/// The size band every subgroup roster must stay within.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ElasticBounds {
    /// Minimum subgroup size before a merge is planned. Must stay above
    /// the privacy floor of 2: a 2-member subgroup already confines each
    /// share to its only other member, so decaying *to* 2 must trigger a
    /// merge rather than be the steady state.
    pub n_min: usize,
    /// Maximum subgroup size before a split is planned.
    pub n_max: usize,
}

impl ElasticBounds {
    /// Builds a bounds band, clamping degenerate requests: `n_min` is
    /// floored at 2 (the share-confinement privacy floor) and `n_max` is
    /// floored at `2 * n_min` so an oversized group can always split into
    /// two halves that are both within bounds (no dead zone where a group
    /// is too big yet unsplittable).
    pub fn new(n_min: usize, n_max: usize) -> Self {
        let n_min = n_min.max(2);
        let n_max = n_max.max(2 * n_min);
        ElasticBounds { n_min, n_max }
    }

    /// Whether a roster of `len` members is within the band.
    pub fn admits(&self, len: usize) -> bool {
        (self.n_min..=self.n_max).contains(&len)
    }
}

/// One subgroup in the elastic layout: a stable id plus its sorted roster.
///
/// Group ids are never reused — a split retires the parent id and mints
/// two fresh ids — so an id names one roster lineage forever, which is
/// what makes "never reuse a mask across rosters" checkable: the re-key
/// domain is `(topology version, group id)`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ElasticGroup {
    /// Stable group id.
    pub gid: u64,
    /// Sorted member roster.
    pub members: Vec<NodeId>,
}

/// The versioned subgroup layout, replicated via the FedAvg-layer Raft.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    /// Monotone version, bumped by every effective command (no-ops do not
    /// bump it, so duplicate `Admit` retries cannot trigger transitions).
    pub version: u64,
    /// Groups sorted by ascending `gid`.
    pub groups: Vec<ElasticGroup>,
    /// Next fresh group id (replicated so every peer mints identical ids).
    pub next_gid: u64,
}

/// A replicated topology operation, carried by the FedAvg-layer Raft log
/// (the same path that sequences round markers), so every peer applies the
/// identical plan in the identical order.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TopologyCmd {
    /// Split group `gid` into `left` and `right` (an exact partition of
    /// its roster). The parent id is retired; the halves get the next two
    /// fresh ids.
    Split {
        /// The oversized group.
        gid: u64,
        /// First half of the partition.
        left: Vec<NodeId>,
        /// Second half of the partition.
        right: Vec<NodeId>,
    },
    /// Fold group `from` into group `into` (roster union; `from` retires).
    Merge {
        /// The surviving group.
        into: u64,
        /// The dissolving group.
        from: u64,
    },
    /// Admit a joiner into group `gid` (rendezvous assignment). Idempotent:
    /// a peer already placed anywhere is left where it is, so stale
    /// rendezvous retries cannot double-insert it into two subgroups.
    Admit {
        /// The joining peer.
        peer: NodeId,
        /// Its assigned group.
        gid: u64,
    },
    /// Remove a departing peer from wherever it is (no-op if absent).
    Depart {
        /// The leaving peer.
        peer: NodeId,
    },
}

/// What applying a [`TopologyCmd`] did (the actor layer uses this to count
/// splits/merges and to decide which peers must re-key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A group split; carries the retired id and both fresh ids.
    Split {
        /// Retired parent group id.
        old: u64,
        /// Fresh id of the left half.
        left: u64,
        /// Fresh id of the right half.
        right: u64,
    },
    /// A group merged; carries the surviving and retired ids.
    Merged {
        /// Surviving group id.
        into: u64,
        /// Retired group id.
        from: u64,
    },
    /// A joiner was placed into a group.
    Admitted {
        /// The admitted peer.
        peer: NodeId,
        /// The group it joined.
        gid: u64,
    },
    /// A peer left its group.
    Departed {
        /// The departed peer.
        peer: NodeId,
        /// The group it left.
        gid: u64,
    },
    /// The command had no effect (duplicate admit / unknown departure).
    Noop,
}

/// Why a [`TopologyCmd`] was rejected. Rejected commands leave the
/// topology untouched (version included), so a buggy or Byzantine proposal
/// cannot corrupt the layout — every replica rejects it identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The named group id does not exist (already retired or never minted).
    UnknownGroup(u64),
    /// A split's halves are not an exact partition of the parent roster.
    NotAPartition,
    /// A split half (or a post-merge/depart roster) would fall below the
    /// privacy floor of 2.
    BelowFloor,
    /// A merge named the same group twice.
    SameGroup,
}

/// The mask-domain key one peer derives when it adopts a new roster: an
/// FNV-1a digest over `(peer, group id, roster, re-key ordinal)`. The
/// ordinal makes the sequence strictly fresh per peer even if a roster
/// recurs (split then re-merge back), which is exactly the
/// `NoMaskReuseAcrossRekey` property: no mask stream is ever re-entered.
pub fn rekey_key(id: NodeId, gid: u64, members: &[NodeId], ordinal: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(id.0 as u64);
    eat(gid);
    eat(ordinal);
    eat(members.len() as u64);
    for m in members {
        eat(m.0 as u64);
    }
    h
}

impl Topology {
    /// Builds the initial layout from a static deployment's subgroups
    /// (version 0, group ids `0..groups.len()`).
    pub fn from_groups(groups: &[Vec<NodeId>]) -> Self {
        let groups: Vec<ElasticGroup> = groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut members = g.clone();
                members.sort_unstable();
                members.dedup();
                ElasticGroup {
                    gid: i as u64,
                    members,
                }
            })
            .collect();
        let next_gid = groups.len() as u64;
        Topology {
            version: 0,
            groups,
            next_gid,
        }
    }

    /// The group a peer currently belongs to, if any.
    pub fn group_of(&self, peer: NodeId) -> Option<&ElasticGroup> {
        self.groups.iter().find(|g| g.members.contains(&peer))
    }

    /// Looks up a group by id.
    pub fn group(&self, gid: u64) -> Option<&ElasticGroup> {
        self.groups.iter().find(|g| g.gid == gid)
    }

    /// All live members across all groups (sorted, deduped).
    pub fn all_members(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Rendezvous assignment for a joiner: the smallest group, ties broken
    /// by lowest id. Deterministic, so every replica that applies the same
    /// `Admit` command agrees; load-balancing, so a flash crowd spreads
    /// across subgroups instead of piling into one.
    pub fn assign_joiner(&self) -> Option<u64> {
        self.groups
            .iter()
            .min_by_key(|g| (g.members.len(), g.gid))
            .map(|g| g.gid)
    }

    /// A cheap FNV-1a digest over `(version, gid, roster)` — the re-key
    /// domain for one group at one layout version. Two different rosters
    /// (or the same roster at two layout versions) never share a digest
    /// stream, which is the "never reuse a mask across rosters" guarantee
    /// the `NoMaskReuseAcrossRekey` oracle checks.
    pub fn roster_key(&self, gid: u64) -> Option<u64> {
        let g = self.group(gid)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.version);
        eat(gid);
        eat(g.members.len() as u64);
        for m in &g.members {
            eat(m.0 as u64);
        }
        Some(h)
    }

    /// Applies a replicated command. Effective commands bump `version`;
    /// no-ops and rejections leave the topology untouched.
    pub fn apply(&mut self, cmd: &TopologyCmd) -> Result<TopologyEvent, TopologyError> {
        match cmd {
            TopologyCmd::Split { gid, left, right } => self.apply_split(*gid, left, right),
            TopologyCmd::Merge { into, from } => self.apply_merge(*into, *from),
            TopologyCmd::Admit { peer, gid } => self.apply_admit(*peer, *gid),
            TopologyCmd::Depart { peer } => self.apply_depart(*peer),
        }
    }

    fn apply_split(
        &mut self,
        gid: u64,
        left: &[NodeId],
        right: &[NodeId],
    ) -> Result<TopologyEvent, TopologyError> {
        let pos = self
            .groups
            .iter()
            .position(|g| g.gid == gid)
            .ok_or(TopologyError::UnknownGroup(gid))?;
        if left.len() < 2 || right.len() < 2 {
            return Err(TopologyError::BelowFloor);
        }
        let mut union: Vec<NodeId> = left.iter().chain(right.iter()).copied().collect();
        union.sort_unstable();
        let distinct = union.windows(2).all(|w| w[0] != w[1]);
        if !distinct || union != self.groups[pos].members {
            return Err(TopologyError::NotAPartition);
        }
        let (lid, rid) = (self.next_gid, self.next_gid + 1);
        self.next_gid += 2;
        self.groups.remove(pos);
        let mut l = left.to_vec();
        l.sort_unstable();
        let mut r = right.to_vec();
        r.sort_unstable();
        self.groups.push(ElasticGroup {
            gid: lid,
            members: l,
        });
        self.groups.push(ElasticGroup {
            gid: rid,
            members: r,
        });
        self.groups.sort_by_key(|g| g.gid);
        self.version += 1;
        Ok(TopologyEvent::Split {
            old: gid,
            left: lid,
            right: rid,
        })
    }

    fn apply_merge(&mut self, into: u64, from: u64) -> Result<TopologyEvent, TopologyError> {
        if into == from {
            return Err(TopologyError::SameGroup);
        }
        let into_pos = self
            .groups
            .iter()
            .position(|g| g.gid == into)
            .ok_or(TopologyError::UnknownGroup(into))?;
        let from_pos = self
            .groups
            .iter()
            .position(|g| g.gid == from)
            .ok_or(TopologyError::UnknownGroup(from))?;
        let absorbed = self.groups[from_pos].members.clone();
        self.groups[into_pos].members.extend(absorbed);
        self.groups[into_pos].members.sort_unstable();
        self.groups[into_pos].members.dedup();
        self.groups.remove(from_pos);
        self.version += 1;
        Ok(TopologyEvent::Merged { into, from })
    }

    fn apply_admit(&mut self, peer: NodeId, gid: u64) -> Result<TopologyEvent, TopologyError> {
        // Idempotence is the contract here: a stale rendezvous retry
        // re-commits the same Admit, and the duplicate must leave the peer
        // in exactly one subgroup (wherever the first commit put it).
        if self.group_of(peer).is_some() {
            return Ok(TopologyEvent::Noop);
        }
        let g = self
            .groups
            .iter_mut()
            .find(|g| g.gid == gid)
            .ok_or(TopologyError::UnknownGroup(gid))?;
        g.members.push(peer);
        g.members.sort_unstable();
        self.version += 1;
        Ok(TopologyEvent::Admitted { peer, gid })
    }

    fn apply_depart(&mut self, peer: NodeId) -> Result<TopologyEvent, TopologyError> {
        let Some(pos) = self.groups.iter().position(|g| g.members.contains(&peer)) else {
            return Ok(TopologyEvent::Noop);
        };
        let gid = self.groups[pos].gid;
        self.groups[pos].members.retain(|&m| m != peer);
        // A departure may take the roster below the privacy floor; the
        // planner's next pass merges the remnant. An *empty* group is
        // retired immediately (nothing left to merge).
        if self.groups[pos].members.is_empty() {
            self.groups.remove(pos);
        }
        self.version += 1;
        Ok(TopologyEvent::Departed { peer, gid })
    }

    /// The deterministic rebalancing policy: one batch of commands that
    /// moves every out-of-band group toward `[n_min, n_max]`. Each group
    /// participates in at most one command per batch; repeated
    /// plan/apply passes reach a fixpoint where [`Self::converged`] holds
    /// (splits strictly shrink oversized groups, merges strictly grow
    /// undersized ones, and `n_max >= 2 * n_min` rules out oscillation).
    pub fn plan(&self, bounds: ElasticBounds) -> Vec<TopologyCmd> {
        let mut cmds = Vec::new();
        let mut used: Vec<u64> = Vec::new();
        // Splits first: oversized groups divide into two in-band halves.
        for g in &self.groups {
            if g.members.len() > bounds.n_max {
                let half = g.members.len() / 2;
                let (left, right) = g.members.split_at(half);
                if left.len() >= bounds.n_min && right.len() >= bounds.n_min {
                    cmds.push(TopologyCmd::Split {
                        gid: g.gid,
                        left: left.to_vec(),
                        right: right.to_vec(),
                    });
                    used.push(g.gid);
                }
            }
        }
        // Merges: undersized groups fold into the smallest sibling that
        // stays in band, or failing that the smallest sibling outright
        // (the oversize result splits on the next pass).
        for g in &self.groups {
            if g.members.len() >= bounds.n_min || used.contains(&g.gid) {
                continue;
            }
            let sibling = self
                .groups
                .iter()
                .filter(|s| s.gid != g.gid && !used.contains(&s.gid))
                .min_by_key(|s| {
                    let combined = s.members.len() + g.members.len();
                    // Prefer in-band results, then smallest, then lowest id.
                    (combined > bounds.n_max, s.members.len(), s.gid)
                });
            if let Some(s) = sibling {
                cmds.push(TopologyCmd::Merge {
                    into: s.gid,
                    from: g.gid,
                });
                used.push(g.gid);
                used.push(s.gid);
            }
        }
        cmds
    }

    /// Whether every group is within bounds (the planner's fixpoint). A
    /// single remaining group below `n_min` with no sibling to merge into
    /// also counts as converged — there is nothing the planner can do.
    pub fn converged(&self, bounds: ElasticBounds) -> bool {
        self.groups.iter().all(|g| bounds.admits(g.members.len()))
            || (self.groups.len() == 1 && self.groups[0].members.len() <= bounds.n_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i as u32)).collect()
    }

    fn topo(sizes: &[usize]) -> Topology {
        let mut next = 0u64;
        let groups: Vec<Vec<NodeId>> = sizes
            .iter()
            .map(|&s| {
                let g: Vec<NodeId> = (next..next + s as u64).map(|i| NodeId(i as u32)).collect();
                next += s as u64;
                g
            })
            .collect();
        Topology::from_groups(&groups)
    }

    #[test]
    fn bounds_clamp_floor() {
        let b = ElasticBounds::new(1, 3);
        assert_eq!(b.n_min, 2);
        assert!(b.n_max >= 4);
        assert!(b.admits(2) && b.admits(4) && !b.admits(5));
    }

    #[test]
    fn split_partitions_and_mints_fresh_ids() {
        let mut t = topo(&[6]);
        let g = t.groups[0].clone();
        let (l, r) = g.members.split_at(3);
        let ev = t
            .apply(&TopologyCmd::Split {
                gid: g.gid,
                left: l.to_vec(),
                right: r.to_vec(),
            })
            .unwrap();
        assert_eq!(
            ev,
            TopologyEvent::Split {
                old: 0,
                left: 1,
                right: 2
            }
        );
        assert_eq!(t.version, 1);
        assert_eq!(t.groups.len(), 2);
        assert!(t.group(0).is_none(), "parent id retired");
        assert_eq!(t.group(1).unwrap().members, l.to_vec());
        assert_eq!(t.group(2).unwrap().members, r.to_vec());
    }

    #[test]
    fn split_rejects_non_partition_and_floor() {
        let mut t = topo(&[5]);
        let m = t.groups[0].members.clone();
        // Overlapping halves.
        let err = t.apply(&TopologyCmd::Split {
            gid: 0,
            left: m[..3].to_vec(),
            right: m[2..].to_vec(),
        });
        assert_eq!(err, Err(TopologyError::NotAPartition));
        // Singleton half.
        let err = t.apply(&TopologyCmd::Split {
            gid: 0,
            left: m[..1].to_vec(),
            right: m[1..].to_vec(),
        });
        assert_eq!(err, Err(TopologyError::BelowFloor));
        // Missing member.
        let err = t.apply(&TopologyCmd::Split {
            gid: 0,
            left: m[..2].to_vec(),
            right: m[2..4].to_vec(),
        });
        assert_eq!(err, Err(TopologyError::NotAPartition));
        assert_eq!(t.version, 0, "rejected commands leave the layout alone");
    }

    #[test]
    fn merge_unions_and_retires() {
        let mut t = topo(&[3, 2]);
        let ev = t.apply(&TopologyCmd::Merge { into: 0, from: 1 }).unwrap();
        assert_eq!(ev, TopologyEvent::Merged { into: 0, from: 1 });
        assert_eq!(t.groups.len(), 1);
        assert_eq!(t.group(0).unwrap().members, ids(&[0, 1, 2, 3, 4]));
        assert_eq!(
            t.apply(&TopologyCmd::Merge { into: 0, from: 1 }),
            Err(TopologyError::UnknownGroup(1))
        );
        assert_eq!(
            t.apply(&TopologyCmd::Merge { into: 0, from: 0 }),
            Err(TopologyError::SameGroup)
        );
    }

    #[test]
    fn admit_is_idempotent_across_groups() {
        let mut t = topo(&[3, 3]);
        let joiner = NodeId(99);
        let ev = t
            .apply(&TopologyCmd::Admit {
                peer: joiner,
                gid: 0,
            })
            .unwrap();
        assert_eq!(
            ev,
            TopologyEvent::Admitted {
                peer: joiner,
                gid: 0
            }
        );
        let v = t.version;
        // A stale rendezvous retry targets the *other* group: the duplicate
        // must not double-insert.
        let ev = t
            .apply(&TopologyCmd::Admit {
                peer: joiner,
                gid: 1,
            })
            .unwrap();
        assert_eq!(ev, TopologyEvent::Noop);
        assert_eq!(t.version, v, "no-op admits do not bump the version");
        let holders: Vec<u64> = t
            .groups
            .iter()
            .filter(|g| g.members.contains(&joiner))
            .map(|g| g.gid)
            .collect();
        assert_eq!(holders, vec![0], "joiner is in exactly one subgroup");
    }

    #[test]
    fn depart_and_empty_group_retirement() {
        let mut t = topo(&[2, 3]);
        assert_eq!(
            t.apply(&TopologyCmd::Depart { peer: NodeId(0) }).unwrap(),
            TopologyEvent::Departed {
                peer: NodeId(0),
                gid: 0
            }
        );
        assert_eq!(
            t.apply(&TopologyCmd::Depart { peer: NodeId(1) }).unwrap(),
            TopologyEvent::Departed {
                peer: NodeId(1),
                gid: 0
            }
        );
        assert_eq!(t.groups.len(), 1, "emptied group retired");
        assert_eq!(
            t.apply(&TopologyCmd::Depart { peer: NodeId(1) }).unwrap(),
            TopologyEvent::Noop
        );
    }

    #[test]
    fn planner_splits_oversized() {
        let t = topo(&[7, 3]);
        let b = ElasticBounds::new(3, 6);
        let cmds = t.plan(b);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            TopologyCmd::Split { gid, left, right } => {
                assert_eq!(*gid, 0);
                assert!(left.len() >= 3 && right.len() >= 3);
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn planner_merges_undersized_into_smallest() {
        let t = topo(&[5, 3, 2]);
        let b = ElasticBounds::new(3, 6);
        let cmds = t.plan(b);
        assert_eq!(
            cmds,
            vec![TopologyCmd::Merge { into: 1, from: 2 }],
            "folds the runt into the smallest in-band sibling"
        );
    }

    #[test]
    fn plan_apply_reaches_fixpoint() {
        // Flash-crowd shape: one giant group, one runt.
        let mut t = topo(&[14, 2]);
        let b = ElasticBounds::new(3, 6);
        for _ in 0..8 {
            let cmds = t.plan(b);
            if cmds.is_empty() {
                break;
            }
            for c in cmds {
                t.apply(&c).unwrap();
            }
        }
        assert!(t.converged(b), "did not converge: {:?}", t.groups);
        assert_eq!(t.all_members().len(), 16, "no peer orphaned or duplicated");
    }

    #[test]
    fn rendezvous_prefers_smallest_group() {
        let t = topo(&[4, 3, 5]);
        assert_eq!(t.assign_joiner(), Some(1));
    }

    #[test]
    fn roster_key_separates_versions_and_rosters() {
        let mut t = topo(&[3, 3]);
        let k0 = t.roster_key(0).unwrap();
        let k1 = t.roster_key(1).unwrap();
        assert_ne!(k0, k1, "different rosters, different keys");
        t.apply(&TopologyCmd::Admit {
            peer: NodeId(9),
            gid: 0,
        })
        .unwrap();
        assert_ne!(t.roster_key(0).unwrap(), k0, "roster change re-keys");
        assert_ne!(
            t.roster_key(1).unwrap(),
            k1,
            "version bump re-keys even unchanged rosters"
        );
    }
}
