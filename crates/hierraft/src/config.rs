//! Types shared across the two-layer Raft: layer commands, the replicated
//! FedAvg-layer configuration, the wrapped message enum, and per-peer
//! configuration.

use p2pfl_raft::{Command, RaftMsg};
use p2pfl_simnet::{NodeId, Payload, SimDuration};

/// The FedAvg-layer configuration that subgroup leaders periodically commit
/// into their subgroup logs (paper Sec. V-A1: "IP addresses and IDs of
/// peers in FedAvg layer").
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FedConfig {
    /// The founding FedAvg-layer membership. A joining node seeds its
    /// FedAvg-layer Raft log from this set; replaying the replicated
    /// membership-change entries then yields `current`.
    pub founding: Vec<NodeId>,
    /// The membership as of this commit.
    pub current: Vec<NodeId>,
    /// Monotone version counter.
    pub version: u64,
}

/// Commands carried by a *subgroup* (SAC-layer) Raft log.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SubCmd {
    /// The replicated FedAvg-layer configuration.
    FedConfig(FedConfig),
    /// An opaque application command (used by tests and the aggregation
    /// system to sequence round numbers).
    App(u64),
}

impl Command for SubCmd {
    fn wire_bytes(&self) -> u64 {
        match self {
            SubCmd::FedConfig(c) => 16 + 8 * (c.founding.len() + c.current.len()) as u64,
            SubCmd::App(_) => 8,
        }
    }
}

/// Commands carried by the *FedAvg-layer* Raft log (opaque round-control
/// values as far as this crate is concerned).
pub type FedCmd = u64;

/// Every message a two-layer peer can receive.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HierMsg {
    /// Subgroup-layer Raft traffic.
    Sub(RaftMsg<SubCmd>),
    /// FedAvg-layer Raft traffic.
    Fed(RaftMsg<FedCmd>),
    /// A newly elected subgroup leader asks the FedAvg leader to admit it,
    /// replacing its subgroup's previous (crashed) representative.
    JoinRequest {
        /// The joining subgroup leader.
        from: NodeId,
        /// The member it replaces, if the joiner knows one.
        replaces: Option<NodeId>,
    },
    /// Response to a join request.
    JoinAck {
        /// Whether the join was accepted (sender was the FedAvg leader).
        accepted: bool,
        /// If rejected, the sender's best guess of the FedAvg leader —
        /// the paper's "connect to the FedAvg leader directly or through
        /// other FedAvg-layer followers".
        leader: Option<NodeId>,
    },
}

impl Payload for HierMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            HierMsg::Sub(m) => m.size_bytes(),
            HierMsg::Fed(m) => m.size_bytes(),
            HierMsg::JoinRequest { .. } => 24,
            HierMsg::JoinAck { .. } => 16,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            HierMsg::Sub(_) => "hier.sub",
            HierMsg::Fed(_) => "hier.fed",
            HierMsg::JoinRequest { .. } => "hier.join_request",
            HierMsg::JoinAck { .. } => "hier.join_ack",
        }
    }
}

/// Static configuration of one two-layer peer.
#[derive(Debug, Clone)]
pub struct HierPeerConfig {
    /// This peer's id.
    pub id: NodeId,
    /// All members of this peer's subgroup (including itself).
    pub subgroup: Vec<NodeId>,
    /// Index of the subgroup within the deployment.
    pub subgroup_index: usize,
    /// The designated founding FedAvg-layer members, one per subgroup.
    pub founding_fed: Vec<NodeId>,
    /// Election timeout lower bound `T` (timeouts are `U(T, 2T)`).
    pub t: SimDuration,
    /// Leader heartbeat period.
    pub heartbeat: SimDuration,
    /// How often a subgroup leader re-commits the FedAvg-layer config.
    pub config_commit_interval: SimDuration,
    /// How often a pending joiner polls for a FedAvg leader (paper: 100 ms).
    pub join_poll_interval: SimDuration,
    /// Seed for timeout randomization.
    pub seed: u64,
}

impl HierPeerConfig {
    /// Whether this peer is a designated founding FedAvg-layer member.
    pub fn is_founding(&self) -> bool {
        self.founding_fed.contains(&self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcmd_sizes() {
        assert_eq!(SubCmd::App(1).wire_bytes(), 8);
        let cfg = SubCmd::FedConfig(FedConfig {
            founding: vec![NodeId(0), NodeId(5)],
            current: vec![NodeId(0), NodeId(5)],
            version: 1,
        });
        assert_eq!(cfg.wire_bytes(), 16 + 32);
    }

    #[test]
    fn hiermsg_kinds() {
        let j = HierMsg::JoinRequest {
            from: NodeId(1),
            replaces: None,
        };
        assert_eq!(j.kind(), "hier.join_request");
        assert_eq!(j.size_bytes(), 24);
    }

    #[test]
    fn founding_detection() {
        let cfg = HierPeerConfig {
            id: NodeId(0),
            subgroup: vec![NodeId(0), NodeId(1)],
            subgroup_index: 0,
            founding_fed: vec![NodeId(0), NodeId(2)],
            t: SimDuration::from_millis(100),
            heartbeat: SimDuration::from_millis(20),
            config_commit_interval: SimDuration::from_millis(500),
            join_poll_interval: SimDuration::from_millis(100),
            seed: 1,
        };
        assert!(cfg.is_founding());
    }
}
