//! Types shared across the two-layer Raft: layer commands, the replicated
//! FedAvg-layer configuration, the wrapped message enum, and per-peer
//! configuration.

use crate::elastic::{ElasticBounds, Topology, TopologyCmd};
use p2pfl_fed::RobustCombiner;
use p2pfl_raft::{Command, RaftMsg};
use p2pfl_secagg::SacEngine;
use p2pfl_simnet::{NodeId, Payload, SimDuration};

/// The FedAvg-layer configuration that subgroup leaders periodically commit
/// into their subgroup logs (paper Sec. V-A1: "IP addresses and IDs of
/// peers in FedAvg layer").
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FedConfig {
    /// The founding FedAvg-layer membership. A joining node seeds its
    /// FedAvg-layer Raft log from this set; replaying the replicated
    /// membership-change entries then yields `current`.
    pub founding: Vec<NodeId>,
    /// The membership as of this commit.
    pub current: Vec<NodeId>,
    /// Which secure-aggregation engine the deployment runs. Replicated so
    /// that every subgroup member agrees on the engine for a round — the
    /// whole `FedConfig` advances atomically under the version max-advance
    /// rule, so a subgroup can never mix engines within one round.
    pub engine: SacEngine,
    /// Which FedAvg-layer combining rule the deployment applies to group
    /// averages. Replicated on the same atomic path as `engine`, so every
    /// peer agrees per round on how Byzantine group averages are absorbed.
    pub combiner: RobustCombiner,
    /// Monotone version counter.
    pub version: u64,
}

impl FedConfig {
    /// A cheap FNV-1a digest over the whole config, used by the config
    /// echo protocol to cross-check that a leader advertised the same
    /// config to every follower (equivocation detection).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.version);
        eat(self.engine as u64);
        eat(self.combiner as u64);
        eat(self.founding.len() as u64);
        for m in &self.founding {
            eat(m.0 as u64);
        }
        for m in &self.current {
            eat(m.0 as u64);
        }
        h
    }
}

/// The replicated *aggregation roster* of one subgroup: which members the
/// round supervisor currently includes in SAC rounds. Replicated through
/// the subgroup Raft log on the same path as [`FedConfig`] (paper Sec. V),
/// so it is durable and survives leader failover. Distinct from the Raft
/// cluster itself — evicting a peer from the roster shrinks `n'` for
/// aggregation without touching Raft quorum, and a revived peer is
/// re-admitted by a new roster version rather than a membership change.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubMembers {
    /// Members currently included in aggregation rounds.
    pub members: Vec<NodeId>,
    /// Monotone version counter (same max-advance rule as [`FedConfig`]).
    pub version: u64,
}

/// Commands carried by a *subgroup* (SAC-layer) Raft log.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SubCmd {
    /// The replicated FedAvg-layer configuration.
    FedConfig(FedConfig),
    /// The replicated aggregation roster (failure-detector evictions and
    /// re-admissions).
    Members(SubMembers),
    /// An opaque application command (used by tests and the aggregation
    /// system to sequence round numbers).
    App(u64),
    /// The adopted elastic layout, re-committed by subgroup leaders so
    /// followers that hold no FedAvg-layer seat still learn topology
    /// transitions through their own subgroup log (same durable path as
    /// [`FedConfig`], same version max-advance rule).
    Topology(Topology),
}

impl Command for SubCmd {
    fn wire_bytes(&self) -> u64 {
        match self {
            // 8B version + 1B engine + 1B combiner + 8B lengths.
            SubCmd::FedConfig(c) => 18 + 8 * (c.founding.len() + c.current.len()) as u64,
            SubCmd::Members(m) => 16 + 8 * m.members.len() as u64,
            SubCmd::App(_) => 8,
            SubCmd::Topology(t) => topology_wire_bytes(t),
        }
    }
}

/// 8B version + 8B next id + per group: 8B gid + 8B length + 4B per member.
fn topology_wire_bytes(t: &Topology) -> u64 {
    16 + t
        .groups
        .iter()
        .map(|g| 16 + 4 * g.members.len() as u64)
        .sum::<u64>()
}

/// Commands carried by the *FedAvg-layer* Raft log: round-control markers
/// sequenced by the aggregation system, and elastic-topology operations —
/// the federation Raft is the single serialization point for layout
/// changes, so every peer adopts the same plan in the same order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FedCmd {
    /// An opaque round-control marker (round numbers).
    Round(u64),
    /// A replicated elastic-topology operation (split, merge, admission,
    /// departure). See [`crate::Topology`].
    Topology(TopologyCmd),
}

impl Command for FedCmd {
    fn wire_bytes(&self) -> u64 {
        match self {
            FedCmd::Round(_) => 8,
            FedCmd::Topology(TopologyCmd::Split { left, right, .. }) => {
                8 + 4 * (left.len() + right.len()) as u64
            }
            FedCmd::Topology(TopologyCmd::Merge { .. }) => 16,
            FedCmd::Topology(TopologyCmd::Admit { .. }) => 12,
            FedCmd::Topology(TopologyCmd::Depart { .. }) => 4,
        }
    }
}

/// Every message a two-layer peer can receive.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HierMsg {
    /// Subgroup-layer Raft traffic.
    Sub(RaftMsg<SubCmd>),
    /// FedAvg-layer Raft traffic.
    Fed(RaftMsg<FedCmd>),
    /// A newly elected subgroup leader asks the FedAvg leader to admit it,
    /// replacing its subgroup's previous (crashed) representative.
    JoinRequest {
        /// The joining subgroup leader.
        from: NodeId,
        /// The member it replaces, if the joiner knows one.
        replaces: Option<NodeId>,
    },
    /// Response to a join request.
    JoinAck {
        /// Whether the join was accepted (sender was the FedAvg leader).
        accepted: bool,
        /// If rejected, the sender's best guess of the FedAvg leader —
        /// the paper's "connect to the FedAvg leader directly or through
        /// other FedAvg-layer followers".
        leader: Option<NodeId>,
    },
    /// Explicit liveness probe from a subgroup leader to a member it
    /// suspects (the Raft heartbeat went quiet).
    Probe {
        /// Correlation sequence number.
        seq: u64,
    },
    /// Response to a probe; any receipt revives the sender in the prober's
    /// failure detector.
    ProbeAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Best-effort notice to a peer that the failure detector confirmed it
    /// dead and it was evicted from the aggregation roster. A peer that is
    /// in fact alive (asymmetric partition) answers with a `ProbeAck`,
    /// which revives it and triggers re-admission.
    Evict {
        /// Human-readable cause, for logs and traces.
        reason: String,
    },
    /// Equivocation witness: each peer broadcasts the digest of the
    /// [`FedConfig`] it applied at `version` to its subgroup. Raft keeps
    /// the committed config consistent, so two echoes for the same version
    /// with different digests prove the advertising leader equivocated.
    ConfigEcho {
        /// The applied config's version.
        version: u64,
        /// [`FedConfig::digest`] of the applied config.
        digest: u64,
    },
    /// A fresh peer that belongs to no subgroup yet asks for a rendezvous
    /// assignment (elastic deployments replace the static `DeploymentSpec`
    /// placement with this). Polled on the join interval until the FedAvg
    /// leader commits an `Admit` and answers.
    Rendezvous {
        /// The unplaced joiner.
        from: NodeId,
    },
    /// Response to a rendezvous poll. Only the FedAvg leader answers
    /// `accepted: true`, and only after the joiner's `Admit` committed —
    /// the carried topology therefore already contains the joiner.
    RendezvousAssign {
        /// Whether the sender was the FedAvg leader and the admission is
        /// committed.
        accepted: bool,
        /// If rejected, the sender's best guess of the FedAvg leader.
        leader: Option<NodeId>,
        /// On acceptance, the committed layout containing the joiner.
        topology: Option<Topology>,
    },
    /// Layout catch-up: sent to a peer observed operating on a stale
    /// topology (e.g. it kept addressing a subgroup that has since split),
    /// and pushed best-effort to every affected peer when a topology
    /// command applies. Receivers adopt it under the version max-advance
    /// rule, so duplicates and reorderings are harmless.
    TopologySync {
        /// The sender's adopted layout.
        topology: Topology,
    },
}

impl Payload for HierMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            HierMsg::Sub(m) => m.size_bytes(),
            HierMsg::Fed(m) => m.size_bytes(),
            HierMsg::JoinRequest { .. } => 24,
            HierMsg::JoinAck { .. } => 16,
            HierMsg::Probe { .. } | HierMsg::ProbeAck { .. } => 16,
            HierMsg::Evict { reason } => 8 + reason.len() as u64,
            HierMsg::ConfigEcho { .. } => 16,
            HierMsg::Rendezvous { .. } => 8,
            HierMsg::RendezvousAssign { topology, .. } => {
                16 + topology.as_ref().map_or(0, topology_wire_bytes)
            }
            HierMsg::TopologySync { topology } => topology_wire_bytes(topology),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            HierMsg::Sub(_) => "hier.sub",
            HierMsg::Fed(_) => "hier.fed",
            HierMsg::JoinRequest { .. } => "hier.join_request",
            HierMsg::JoinAck { .. } => "hier.join_ack",
            HierMsg::Probe { .. } => "hier.probe",
            HierMsg::ProbeAck { .. } => "hier.probe_ack",
            HierMsg::Evict { .. } => "hier.evict",
            HierMsg::ConfigEcho { .. } => "hier.config_echo",
            HierMsg::Rendezvous { .. } => "hier.rendezvous",
            HierMsg::RendezvousAssign { .. } => "hier.rendezvous_assign",
            HierMsg::TopologySync { .. } => "hier.topology_sync",
        }
    }
}

/// Static configuration of one two-layer peer.
#[derive(Debug, Clone)]
pub struct HierPeerConfig {
    /// This peer's id.
    pub id: NodeId,
    /// All members of this peer's subgroup (including itself).
    pub subgroup: Vec<NodeId>,
    /// Index of the subgroup within the deployment.
    pub subgroup_index: usize,
    /// The designated founding FedAvg-layer members, one per subgroup.
    pub founding_fed: Vec<NodeId>,
    /// Election timeout lower bound `T` (timeouts are `U(T, 2T)`).
    pub t: SimDuration,
    /// Leader heartbeat period.
    pub heartbeat: SimDuration,
    /// How often a subgroup leader re-commits the FedAvg-layer config.
    pub config_commit_interval: SimDuration,
    /// How often a pending joiner polls for a FedAvg leader (paper: 100 ms).
    pub join_poll_interval: SimDuration,
    /// How often a subgroup leader re-evaluates its failure detector and
    /// probes suspected members.
    pub probe_interval: SimDuration,
    /// Quiet window after which a subgroup member is *suspected* (and
    /// probed directly).
    pub suspect_after: SimDuration,
    /// Quiet window after which a suspected member is confirmed *dead* and
    /// evicted from the replicated aggregation roster.
    pub dead_after: SimDuration,
    /// The secure-aggregation engine this deployment was launched with;
    /// seeds the first replicated [`FedConfig`] commit.
    pub engine: SacEngine,
    /// The FedAvg-layer combining rule this deployment was launched with;
    /// seeds the first replicated [`FedConfig`] commit alongside `engine`.
    pub combiner: RobustCombiner,
    /// Seed for timeout randomization.
    pub seed: u64,
    /// Elastic-topology configuration. `None` keeps the static layout
    /// (every pre-elastic deployment and test is unchanged).
    pub elastic: Option<ElasticPeerConfig>,
}

/// Per-peer elastic-topology configuration.
#[derive(Debug, Clone)]
pub struct ElasticPeerConfig {
    /// The size band every subgroup must stay within.
    pub bounds: ElasticBounds,
    /// The full deployment layout known at launch time — the seed of the
    /// replicated [`Topology`] at version 0. Empty for a rendezvous
    /// joiner: such a peer belongs to no subgroup until the FedAvg leader
    /// commits its `Admit` and the assignment reaches it.
    pub initial_groups: Vec<Vec<NodeId>>,
}

impl HierPeerConfig {
    /// Whether this peer is a designated founding FedAvg-layer member.
    pub fn is_founding(&self) -> bool {
        self.founding_fed.contains(&self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcmd_sizes() {
        assert_eq!(SubCmd::App(1).wire_bytes(), 8);
        let cfg = SubCmd::FedConfig(FedConfig {
            founding: vec![NodeId(0), NodeId(5)],
            current: vec![NodeId(0), NodeId(5)],
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            version: 1,
        });
        assert_eq!(cfg.wire_bytes(), 18 + 32);
    }

    #[test]
    fn fed_config_digest_separates_combiner_and_engine() {
        let base = FedConfig {
            founding: vec![NodeId(0)],
            current: vec![NodeId(0)],
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            version: 3,
        };
        let mut other = base.clone();
        other.combiner = RobustCombiner::TrimmedMean;
        assert_ne!(base.digest(), other.digest());
        let mut ring = base.clone();
        ring.engine = SacEngine::Ring;
        assert_ne!(base.digest(), ring.digest());
        assert_eq!(base.digest(), base.clone().digest());
    }

    #[test]
    fn hiermsg_kinds() {
        let j = HierMsg::JoinRequest {
            from: NodeId(1),
            replaces: None,
        };
        assert_eq!(j.kind(), "hier.join_request");
        assert_eq!(j.size_bytes(), 24);
    }

    #[test]
    fn founding_detection() {
        let cfg = HierPeerConfig {
            id: NodeId(0),
            subgroup: vec![NodeId(0), NodeId(1)],
            subgroup_index: 0,
            founding_fed: vec![NodeId(0), NodeId(2)],
            t: SimDuration::from_millis(100),
            heartbeat: SimDuration::from_millis(20),
            config_commit_interval: SimDuration::from_millis(500),
            join_poll_interval: SimDuration::from_millis(100),
            probe_interval: SimDuration::from_millis(40),
            suspect_after: SimDuration::from_millis(100),
            dead_after: SimDuration::from_millis(300),
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            seed: 1,
            elastic: None,
        };
        assert!(cfg.is_founding());
    }
}
