//! # p2pfl-hierraft — the paper's two-layer Raft backend
//!
//! Peers are organized into subgroups, each running its own Raft; subgroup
//! leaders additionally form the FedAvg-layer Raft (paper Sec. V). The
//! crate implements the post-leader-election callback, the replication of
//! the FedAvg-layer configuration into subgroup logs, the join protocol
//! by which a newly elected subgroup leader replaces its crashed
//! predecessor in the FedAvg layer (via Raft single-server membership
//! change), and the four crash-recovery flows the paper evaluates.
//!
//! [`Deployment`] builds the paper's 25-peer topology on the simulator;
//! [`experiments`] packages the Figs. 10–12 crash trials.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod config;
mod detector;
mod elastic;
pub mod experiments;
mod topology;

pub use actor::HierActor;
pub use config::{
    ElasticPeerConfig, FedCmd, FedConfig, HierMsg, HierPeerConfig, SubCmd, SubMembers,
};
pub use detector::{FailureDetector, Liveness};
pub use elastic::{
    rekey_key, ElasticBounds, ElasticGroup, Topology, TopologyCmd, TopologyError, TopologyEvent,
};
// Re-exported so deployment builders can name the replicated combiner
// without depending on p2pfl-fed directly.
pub use p2pfl_fed::RobustCombiner;
pub use topology::{Deployment, DeploymentSpec};
