//! Deployment builder for two-layer Raft simulations.

use crate::actor::HierActor;
use crate::config::{ElasticPeerConfig, HierMsg, HierPeerConfig};
use crate::elastic::{ElasticBounds, Topology};
use p2pfl_fed::RobustCombiner;
use p2pfl_secagg::SacEngine;
use p2pfl_simnet::{Latency, LatencyConfig, NodeId, Sim, SimDuration, SimTime};

/// Parameters of a two-layer deployment (paper Sec. VI-B1: m = 5 subgroups
/// of n = 5 peers, 15 ms link delay, timeouts `U(T, 2T)`).
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Number of subgroups (`m`).
    pub num_subgroups: usize,
    /// Peers per subgroup (`n`).
    pub subgroup_size: usize,
    /// Election timeout lower bound `T`.
    pub t: SimDuration,
    /// One-way link delay.
    pub link_delay: SimDuration,
    /// How often subgroup leaders re-commit the FedAvg-layer config.
    pub config_commit_interval: SimDuration,
    /// Joiner poll interval (paper: 100 ms).
    pub join_poll_interval: SimDuration,
    /// Secure-aggregation engine for this deployment (replicated to every
    /// peer through the committed [`crate::FedConfig`]).
    pub engine: SacEngine,
    /// FedAvg-layer combining rule (replicated alongside `engine`).
    pub combiner: RobustCombiner,
    /// Simulation seed.
    pub seed: u64,
    /// Elastic subgroup bounds; `None` keeps the paper's static layout.
    pub elastic: Option<ElasticBounds>,
}

impl DeploymentSpec {
    /// The paper's Fig. 10–12 topology with a given `T` and seed.
    pub fn paper(t_ms: u64, seed: u64) -> Self {
        DeploymentSpec {
            num_subgroups: 5,
            subgroup_size: 5,
            t: SimDuration::from_millis(t_ms),
            link_delay: SimDuration::from_millis(15),
            config_commit_interval: SimDuration::from_millis(200),
            join_poll_interval: SimDuration::from_millis(100),
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            seed,
            elastic: None,
        }
    }

    /// Total peer count.
    pub fn total_peers(&self) -> usize {
        self.num_subgroups * self.subgroup_size
    }
}

/// A running two-layer Raft deployment.
pub struct Deployment {
    /// The simulator carrying all peers.
    pub sim: Sim<HierMsg>,
    /// Subgroup memberships, in subgroup order.
    pub subgroups: Vec<Vec<NodeId>>,
    /// The designated founding FedAvg-layer members (one per subgroup).
    pub founding: Vec<NodeId>,
    spec: DeploymentSpec,
}

impl Deployment {
    /// Builds and starts a deployment (nothing has run yet; drive with
    /// [`Deployment::wait_stable`] or `sim.run_until`).
    pub fn build(spec: DeploymentSpec) -> Self {
        let mut sim = Sim::new(spec.seed);
        sim.set_latency(LatencyConfig::uniform_default(Latency::Constant(
            spec.link_delay,
        )));
        let mut subgroups = Vec::new();
        let mut next = 0u32;
        for _ in 0..spec.num_subgroups {
            let members: Vec<NodeId> = (0..spec.subgroup_size)
                .map(|_| {
                    let id = NodeId(next);
                    next += 1;
                    id
                })
                .collect();
            subgroups.push(members);
        }
        // Founding FedAvg member: the first peer of each subgroup.
        let founding: Vec<NodeId> = subgroups.iter().map(|g| g[0]).collect();
        for (gi, members) in subgroups.iter().enumerate() {
            for &id in members {
                let cfg = HierPeerConfig {
                    id,
                    subgroup: members.clone(),
                    subgroup_index: gi,
                    founding_fed: founding.clone(),
                    t: spec.t,
                    heartbeat: SimDuration::from_nanos((spec.t.as_nanos() / 5).max(1)),
                    config_commit_interval: spec.config_commit_interval,
                    join_poll_interval: spec.join_poll_interval,
                    probe_interval: SimDuration::from_nanos((spec.t.as_nanos() / 5).max(1)),
                    suspect_after: spec.t,
                    dead_after: spec.t.saturating_mul(3),
                    engine: spec.engine,
                    combiner: spec.combiner,
                    seed: spec.seed ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
                    elastic: spec.elastic.map(|bounds| ElasticPeerConfig {
                        bounds,
                        initial_groups: subgroups.clone(),
                    }),
                };
                let got = sim.add_node(HierActor::new(cfg));
                assert_eq!(got, id);
            }
        }
        Deployment {
            sim,
            subgroups,
            founding,
            spec,
        }
    }

    /// The spec this deployment was built from.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// Spawns an *unplaced* peer into an elastic deployment: it belongs to
    /// no subgroup and polls the founding FedAvg members for a rendezvous
    /// assignment; the FedAvg leader serializes an `Admit` for it and the
    /// peer transitions into its assigned subgroup. Panics if the
    /// deployment is not elastic.
    pub fn spawn_joiner(&mut self) -> NodeId {
        // A static deployment has no rendezvous path to place the joiner;
        // refuse with an invariant assert (the fallback bounds after it
        // are unreachable).
        assert!(
            self.spec.elastic.is_some(),
            "spawn_joiner requires an elastic deployment"
        );
        let bounds = self.spec.elastic.unwrap_or(ElasticBounds::new(2, 4));
        // Reserve the id the simulator will hand out next.
        let id = NodeId(self.sim.node_count() as u32);
        let cfg = HierPeerConfig {
            id,
            subgroup: vec![id],
            subgroup_index: usize::MAX,
            founding_fed: self.founding.clone(),
            t: self.spec.t,
            heartbeat: SimDuration::from_nanos((self.spec.t.as_nanos() / 5).max(1)),
            config_commit_interval: self.spec.config_commit_interval,
            join_poll_interval: self.spec.join_poll_interval,
            probe_interval: SimDuration::from_nanos((self.spec.t.as_nanos() / 5).max(1)),
            suspect_after: self.spec.t,
            dead_after: self.spec.t.saturating_mul(3),
            engine: self.spec.engine,
            combiner: self.spec.combiner,
            seed: self.spec.seed ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
            elastic: Some(ElasticPeerConfig {
                bounds,
                initial_groups: Vec::new(),
            }),
        };
        let got = self.sim.add_node(HierActor::new(cfg));
        assert_eq!(got, id);
        got
    }

    /// The most advanced layout any live peer has adopted.
    pub fn latest_topology(&self) -> Topology {
        let mut best: Option<Topology> = None;
        for id in 0..self.sim.node_count() {
            let id = NodeId(id as u32);
            if self.sim.is_crashed(id) {
                continue;
            }
            let t = &self.sim.actor::<HierActor>(id).topology;
            if best.as_ref().is_none_or(|b| t.version > b.version) {
                best = Some(t.clone());
            }
        }
        best.unwrap_or_else(|| Topology::from_groups(&self.subgroups))
    }

    /// Refreshes `self.subgroups` from the most advanced adopted layout,
    /// so `sub_leader_of` / `is_stable` follow elastic transitions.
    /// Returns the layout it adopted.
    pub fn refresh_subgroups(&mut self) -> Topology {
        let t = self.latest_topology();
        self.subgroups = t.groups.iter().map(|g| g.members.clone()).collect();
        t
    }

    /// The current leader of subgroup `g`, if exactly one live peer leads.
    pub fn sub_leader_of(&self, g: usize) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self.subgroups[g]
            .iter()
            .copied()
            .filter(|&id| {
                !self.sim.is_crashed(id) && self.sim.actor::<HierActor>(id).is_sub_leader()
            })
            .collect();
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// The current FedAvg-layer leader, if exactly one live peer leads.
    pub fn fed_leader(&self) -> Option<NodeId> {
        let mut leaders = Vec::new();
        for g in &self.subgroups {
            for &id in g {
                if !self.sim.is_crashed(id) && self.sim.actor::<HierActor>(id).is_fed_leader() {
                    leaders.push(id);
                }
            }
        }
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// Whether the deployment is stable: every subgroup has exactly one
    /// leader, each such leader is an active FedAvg-layer member, and the
    /// FedAvg layer has a leader.
    pub fn is_stable(&self) -> bool {
        if self.fed_leader().is_none() {
            return false;
        }
        (0..self.subgroups.len()).all(|g| {
            self.sub_leader_of(g)
                .is_some_and(|l| self.sim.actor::<HierActor>(l).is_fed_member())
        })
    }

    /// Runs until [`Deployment::is_stable`] or `deadline`; returns success.
    pub fn wait_stable(&mut self, deadline: SimTime) -> bool {
        self.wait(deadline, |d| d.is_stable())
    }

    /// Runs in small steps until `pred` holds or `deadline` passes.
    pub fn wait(&mut self, deadline: SimTime, pred: impl Fn(&Deployment) -> bool) -> bool {
        let step = SimDuration::from_millis(5);
        loop {
            if pred(self) {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            self.sim.run_for(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_reaches_stability() {
        let mut d = Deployment::build(DeploymentSpec::paper(100, 1));
        assert!(d.wait_stable(SimTime::from_secs(10)), "never stabilized");
        // Founding members should lead their subgroups at genesis.
        for (g, members) in d.subgroups.clone().iter().enumerate() {
            assert_eq!(d.sub_leader_of(g), Some(members[0]), "subgroup {g}");
        }
        let fl = d.fed_leader().unwrap();
        assert!(d.founding.contains(&fl));
    }

    #[test]
    fn spec_counts() {
        let s = DeploymentSpec::paper(50, 2);
        assert_eq!(s.total_peers(), 25);
    }
}
