//! Heartbeat-based failure detection for subgroup members.
//!
//! The two Raft layers already exchange periodic traffic (heartbeats,
//! elections, log replication); the detector piggybacks on *any* receipt
//! from a subgroup peer and only adds explicit `Probe`/`ProbeAck` traffic
//! for peers that have gone quiet. A peer transitions:
//!
//! * `Alive -> Suspected` after `suspect_after` without a receipt — the
//!   leader starts probing it directly;
//! * `Suspected -> Dead` after `dead_after` without a receipt — the leader
//!   evicts it from the replicated aggregation roster;
//! * any receipt at any time returns it to `Alive` — a suspected peer that
//!   recovers (probe race, one-way-lossy link) is never evicted.
//!
//! The detector is a pure state machine over the virtual clock: transports,
//! timers, and the eviction policy live in [`crate::HierActor`].

use p2pfl_simnet::{NodeId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The detector's verdict on one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heard from within the suspect window.
    Alive,
    /// Quiet past `suspect_after`; being probed.
    Suspected,
    /// Quiet past `dead_after`; eligible for eviction.
    Dead,
}

/// Tracks last-receipt times for a fixed peer set and derives liveness.
#[derive(Debug)]
pub struct FailureDetector {
    suspect_after: SimDuration,
    dead_after: SimDuration,
    last_heard: BTreeMap<NodeId, SimTime>,
    verdict: BTreeMap<NodeId, Liveness>,
}

impl FailureDetector {
    /// Builds a detector over `peers`, all considered heard-from at `now`
    /// (a fresh start must not produce instant verdicts).
    pub fn new(
        peers: impl IntoIterator<Item = NodeId>,
        suspect_after: SimDuration,
        dead_after: SimDuration,
        now: SimTime,
    ) -> Self {
        assert!(dead_after >= suspect_after, "confirm window before suspect");
        let last_heard: BTreeMap<NodeId, SimTime> = peers.into_iter().map(|p| (p, now)).collect();
        let verdict = last_heard.keys().map(|&p| (p, Liveness::Alive)).collect();
        FailureDetector {
            suspect_after,
            dead_after,
            last_heard,
            verdict,
        }
    }

    /// Records a receipt from `peer`. Unknown peers are ignored. Returns
    /// `true` when this receipt *revived* the peer (it was suspected or
    /// dead) — the caller may want to re-admit it.
    pub fn heard_from(&mut self, peer: NodeId, now: SimTime) -> bool {
        let Some(t) = self.last_heard.get_mut(&peer) else {
            return false;
        };
        *t = (*t).max(now);
        self.verdict
            .insert(peer, Liveness::Alive)
            .is_some_and(|old| old != Liveness::Alive)
    }

    /// Re-stamps every peer to `now` (start or restart: the gap spent
    /// crashed must not count against anyone).
    pub fn reset_all(&mut self, now: SimTime) {
        for t in self.last_heard.values_mut() {
            *t = now;
        }
        for v in self.verdict.values_mut() {
            *v = Liveness::Alive;
        }
    }

    /// Re-evaluates every peer at `now` and returns the transitions that
    /// occurred, in peer order.
    pub fn tick(&mut self, now: SimTime) -> Vec<(NodeId, Liveness)> {
        let mut transitions = Vec::new();
        for (&peer, &heard) in &self.last_heard {
            let quiet = now.saturating_since(heard);
            let next = if quiet >= self.dead_after {
                Liveness::Dead
            } else if quiet >= self.suspect_after {
                Liveness::Suspected
            } else {
                Liveness::Alive
            };
            let old = self.verdict.insert(peer, next);
            if old != Some(next) {
                transitions.push((peer, next));
            }
        }
        transitions
    }

    /// The current verdict on `peer` (`Alive` for unknown peers: the
    /// detector only ever argues for eviction, never against admission).
    pub fn liveness(&self, peer: NodeId) -> Liveness {
        self.verdict.get(&peer).copied().unwrap_or(Liveness::Alive)
    }

    /// Peers currently suspected (probe targets).
    pub fn suspected(&self) -> Vec<NodeId> {
        self.verdict
            .iter()
            .filter(|(_, &v)| v == Liveness::Suspected)
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn det() -> FailureDetector {
        FailureDetector::new(
            [NodeId(1), NodeId(2)],
            SimDuration::from_millis(100),
            SimDuration::from_millis(300),
            SimTime::ZERO,
        )
    }

    #[test]
    fn windows_drive_transitions() {
        let mut d = det();
        assert!(d.tick(ms(99)).is_empty());
        let t = d.tick(ms(100));
        assert_eq!(
            t,
            vec![
                (NodeId(1), Liveness::Suspected),
                (NodeId(2), Liveness::Suspected)
            ]
        );
        assert!(d.tick(ms(200)).is_empty(), "no repeat transitions");
        let t = d.tick(ms(300));
        assert_eq!(t[0], (NodeId(1), Liveness::Dead));
        assert_eq!(d.liveness(NodeId(2)), Liveness::Dead);
    }

    #[test]
    fn receipt_revives_at_any_stage() {
        let mut d = det();
        d.tick(ms(150));
        assert_eq!(d.liveness(NodeId(1)), Liveness::Suspected);
        assert!(d.heard_from(NodeId(1), ms(160)), "revival reported");
        assert_eq!(d.liveness(NodeId(1)), Liveness::Alive);
        assert!(!d.heard_from(NodeId(1), ms(161)), "already alive");
        // The revived peer's window restarts from the receipt.
        d.tick(ms(250));
        assert_eq!(d.liveness(NodeId(1)), Liveness::Alive);
        assert_eq!(d.liveness(NodeId(2)), Liveness::Suspected);
        // Revival works from Dead too (e.g. an evicted peer restarting).
        d.tick(ms(500));
        assert_eq!(d.liveness(NodeId(2)), Liveness::Dead);
        assert!(d.heard_from(NodeId(2), ms(510)));
        assert_eq!(d.liveness(NodeId(2)), Liveness::Alive);
    }

    #[test]
    fn unknown_peers_are_ignored_and_alive() {
        let mut d = det();
        assert!(!d.heard_from(NodeId(9), ms(1)));
        assert_eq!(d.liveness(NodeId(9)), Liveness::Alive);
    }

    #[test]
    fn reset_clears_stale_windows() {
        let mut d = det();
        d.tick(ms(400));
        assert_eq!(d.liveness(NodeId(1)), Liveness::Dead);
        d.reset_all(ms(400));
        assert_eq!(d.liveness(NodeId(1)), Liveness::Alive);
        assert!(d.tick(ms(450)).is_empty());
    }

    #[test]
    fn suspected_listing() {
        let mut d = det();
        d.heard_from(NodeId(2), ms(50));
        d.tick(ms(120));
        assert_eq!(d.suspected(), vec![NodeId(1)]);
    }
}
