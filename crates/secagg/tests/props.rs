//! Property-based tests for the secret-sharing invariants.

use p2pfl_secagg::replicated::{assigned_partitions, can_reconstruct, holders};
use p2pfl_secagg::{
    divide_masked, divide_scaled, fault_tolerant_secure_average, fixed, secure_average,
    secure_average_with_leader, DropPhase, Dropout, ShareScheme, WeightVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weight_vec(dim: usize) -> impl Strategy<Value = WeightVector> {
    proptest::collection::vec(-10.0f64..10.0, dim).prop_map(WeightVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Alg. 1 invariant: shares always sum back to the secret.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn shares_reconstruct(
        w in weight_vec(32),
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scaled = divide_scaled(&w, n, &mut rng);
        let masked = divide_masked(&w, n, &mut rng);
        prop_assert!(WeightVector::sum(scaled.iter()).linf_distance(&w) < 1e-9);
        prop_assert!(WeightVector::sum(masked.iter()).linf_distance(&w) < 1e-8);
    }

    /// Alg. 2 invariant: SAC equals the plain mean regardless of scheme,
    /// peer count, or who leads.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn sac_equals_plain_mean(
        models in proptest::collection::vec(weight_vec(16), 1..8),
        seed in any::<u64>(),
        lead_pick in any::<prop::sample::Index>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plain = WeightVector::mean(models.iter());
        for scheme in [ShareScheme::Scaled, ShareScheme::Masked] {
            let full = secure_average(&models, scheme, &mut rng);
            prop_assert!(full.average.linf_distance(&plain) < 1e-7);
        }
        let leader = lead_pick.index(models.len());
        let led = secure_average_with_leader(&models, leader, ShareScheme::Masked, &mut rng);
        prop_assert!(led.average.linf_distance(&plain) < 1e-7);
    }

    /// Alg. 4 invariant: any dropout set of size <= n-k (excluding the
    /// leader) still yields the mean over contributors.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn ftsac_survives_dropouts(
        n in 2usize..8,
        k_off in 0usize..6,
        drop_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let k = (1 + k_off % n).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<WeightVector> =
            (0..n).map(|_| WeightVector::random(8, 1.0, &mut rng)).collect();
        // Build a dropout set of size <= n-k from non-leader peers.
        let mut drop_rng = StdRng::seed_from_u64(drop_seed);
        let max_drops = (n - k).min(n - 1);
        let mut peers: Vec<usize> = (1..n).collect();
        let mut dropouts = Vec::new();
        for _ in 0..max_drops {
            if peers.is_empty() { break; }
            let i = (drop_rng.next_u64() as usize) % peers.len();
            let peer = peers.swap_remove(i);
            let phase = if drop_rng.next_u64() % 2 == 0 {
                DropPhase::BeforeShare
            } else {
                DropPhase::AfterShare
            };
            dropouts.push(Dropout { peer, phase });
        }
        let out = fault_tolerant_secure_average(
            &models, k, 0, &dropouts, ShareScheme::Masked, &mut rng,
        ).unwrap();
        let plain = WeightVector::mean(out.contributors.iter().map(|&i| &models[i]));
        prop_assert!(out.average.linf_distance(&plain) < 1e-7);
        // Contributors are exactly the peers that did not drop BeforeShare.
        for d in &dropouts {
            match d.phase {
                DropPhase::BeforeShare =>
                    prop_assert!(!out.contributors.contains(&d.peer)),
                DropPhase::AfterShare =>
                    prop_assert!(out.contributors.contains(&d.peer)),
            }
        }
    }

    /// Replication invariant: assignment and holders are inverse relations
    /// and any <= n-k crash set keeps every partition reconstructible.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn replication_covers_crashes(
        n in 1usize..12,
        k_off in 0usize..12,
        crash_bits in any::<u16>(),
    ) {
        let k = 1 + k_off % n;
        // Keep at most n-k crashes.
        let mut alive = vec![true; n];
        let mut budget = n - k;
        for (i, a) in alive.iter_mut().enumerate() {
            if budget > 0 && crash_bits & (1 << i) != 0 {
                *a = false;
                budget -= 1;
            }
        }
        prop_assert!(can_reconstruct(n, k, &alive));
        for p in 0..n {
            for h in holders(n, k, p) {
                prop_assert!(assigned_partitions(n, k, h).contains(&p));
            }
        }
    }

    /// Fixed-point ring sharing reconstructs exactly (quantization only).
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn ring_sharing_is_exact(
        w in weight_vec(16),
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = fixed::divide_ring(&w, n, &mut rng);
        let sum = fixed::reconstruct_sum(&[shares]);
        prop_assert!(sum.linf_distance(&w) < 1e-7);
    }
}

use rand::RngCore;
