//! Multi-round use of the message-driven SAC engine: the same actors run
//! consecutive aggregation rounds with fresh models, as the two-layer
//! system does every training round.

use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(n: usize, k: usize, seed: u64) -> (Sim<SacMsg>, Vec<NodeId>) {
    let mut sim = Sim::new(seed);
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for i in 0..n {
        let cfg = SacConfig {
            group: ids.clone(),
            position: i,
            leader_pos: 0,
            k,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_millis(100),
            collect_deadline: SimDuration::from_millis(100),
            round_deadline: None,
            seed: seed + i as u64,
        };
        sim.add_node(SacPeerActor::new(cfg, WeightVector::zeros(8)));
    }
    sim.run_until_quiet(100);
    (sim, ids)
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full simulation runs are prohibitively slow under miri"
)]
fn three_consecutive_rounds_with_fresh_models() {
    let (mut sim, ids) = build(4, 3, 1);
    let mut rng = StdRng::seed_from_u64(99);
    for round in 1..=3u64 {
        // Fresh models on every peer (what local training produces).
        let models: Vec<WeightVector> = (0..4)
            .map(|_| WeightVector::random(8, 1.0, &mut rng))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let m = models[i].clone();
            sim.exec::<SacPeerActor, _, _>(id, move |a, _| a.set_model(m));
        }
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, round));
        let deadline = sim.now() + SimDuration::from_secs(2);
        sim.run_until(deadline);
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(
            leader.phase,
            SacPhase::Done,
            "round {round}: {:?}",
            leader.phase
        );
        assert_eq!(leader.round, round);
        let expect = WeightVector::mean(models.iter());
        let got = leader.result.as_ref().unwrap();
        assert!(
            got.linf_distance(&expect) < 1e-9,
            "round {round}: error {}",
            got.linf_distance(&expect)
        );
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full simulation runs are prohibitively slow under miri"
)]
fn crash_in_round_two_recovers_and_round_three_excludes_the_dead() {
    let (mut sim, ids) = build(5, 3, 2);
    let mut rng = StdRng::seed_from_u64(7);

    // Round 1: all healthy.
    let m1: Vec<WeightVector> = (0..5)
        .map(|_| WeightVector::random(8, 1.0, &mut rng))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let m = m1[i].clone();
        sim.exec::<SacPeerActor, _, _>(id, move |a, _| a.set_model(m));
    }
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    let deadline = sim.now() + SimDuration::from_secs(1);
    sim.run_until(deadline);
    assert_eq!(
        sim.actor::<SacPeerActor>(ids[0]).contributors,
        vec![0, 1, 2, 3, 4]
    );

    // Round 2: peer 4 dies right after the shares settle.
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 2));
    let crash_at = sim.now() + SimDuration::from_millis(40);
    sim.schedule_crash(ids[4], crash_at);
    let deadline = sim.now() + SimDuration::from_secs(2);
    sim.run_until(deadline);
    {
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "round 2: {:?}", leader.phase);
        assert_eq!(
            leader.contributors,
            vec![0, 1, 2, 3, 4],
            "shared before dying"
        );
        assert!(leader.recoveries >= 1, "its subtotal needed recovery");
    }

    // Round 3: the dead peer contributes nothing; the average covers the
    // four survivors only.
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 3));
    let deadline = sim.now() + SimTime::from_secs(3).saturating_since(SimTime::ZERO);
    sim.run_until(deadline);
    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_eq!(leader.phase, SacPhase::Done, "round 3: {:?}", leader.phase);
    assert_eq!(leader.contributors, vec![0, 1, 2, 3]);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full simulation runs are prohibitively slow under miri"
)]
fn slow_links_reorder_compute_over_before_blocks() {
    // Regression guard: with a bandwidth model, big share blocks can land
    // *after* the leader's ComputeOver broadcast. Followers must send
    // their primary subtotal (and answer recovery requests) as soon as the
    // missing blocks arrive, not stall until a recovery deadline.
    use p2pfl_simnet::{Latency, LatencyConfig};
    let mut sim: Sim<SacMsg> = Sim::new(3);
    let net = LatencyConfig::uniform_default(Latency::Constant(SimDuration::from_millis(15)))
        .with_bandwidth(12_500_000); // 100 Mbps
    sim.set_latency(net);
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    for i in 0..3 {
        let cfg = SacConfig {
            group: ids.clone(),
            position: i,
            leader_pos: 0,
            k: 2,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(120),
            collect_deadline: SimDuration::from_secs(120),
            round_deadline: None,
            seed: 30 + i as u64,
        };
        // 1 MB share blocks: 80 ms of serialization each, so ComputeOver
        // (tiny) overtakes the block traffic.
        sim.add_node(SacPeerActor::new(cfg, WeightVector::zeros(125_000)));
    }
    sim.run_until_quiet(100);
    let t0 = sim.now();
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    loop {
        if sim.actor::<SacPeerActor>(ids[0]).phase == SacPhase::Done {
            break;
        }
        assert!(
            sim.now().saturating_since(t0) < SimDuration::from_secs(1),
            "round did not finish within 1s of virtual time"
        );
        sim.run_for(SimDuration::from_millis(10));
    }
    assert!(sim.actor::<SacPeerActor>(ids[0]).result.is_some());
}
