//! Deliberately broken SAC variants for the checker's mutation self-test
//! (`p2pfl-check --features mutants`).
//!
//! Each mutant reintroduces one bug class the protocol engine guards
//! against; the bounded model checker must catch every one via its
//! mask-cancellation oracle. The module only exists under the `mutants`
//! cargo feature, so release builds carry none of these paths.

use std::sync::atomic::{AtomicU8, Ordering};

/// The seeded faults available in `p2pfl-secagg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Mutant {
    /// No fault active (the default).
    None = 0,
    /// The `SacMsg::Begin` idempotence guard is disabled: a duplicated
    /// `Begin` re-draws share randomness mid-round, so replicas end up
    /// holding partitions from different draws — exactly the PR 2 bug.
    BeginRerandomize = 1,
    /// `distribute_shares` halves partition 0 before sending, so the
    /// partitions of each contribution no longer sum to the input model.
    ShareSkew = 2,
}

static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `m` process-wide (pass [`Mutant::None`] to deactivate).
pub fn set(m: Mutant) {
    ACTIVE.store(m as u8, Ordering::SeqCst);
}

/// Deactivates any active mutant.
pub fn clear() {
    set(Mutant::None);
}

/// Whether `m` is the currently active mutant.
pub fn active(m: Mutant) -> bool {
    ACTIVE.load(Ordering::SeqCst) == m as u8
}
