//! Paper Alg. 4 — fault-tolerant SAC with `k`-out-of-`n` replicated shares,
//! synchronous reference implementation with an explicit dropout schedule.
//!
//! Compared to Alg. 2, every peer sends each other peer a *block* of
//! `n-k+1` consecutive partitions (see [`crate::replicated`]), so up to
//! `n-k` peers may crash without aborting the aggregation:
//!
//! * a peer that crashes **before sharing** simply does not contribute; the
//!   average is taken over the surviving contributors (the two-layer system
//!   treats this like a smaller subgroup);
//! * a peer that crashes **after sharing** still contributes its model —
//!   its subtotals are recovered from alternate holders of the replicated
//!   partitions (paper Fig. 3 walks the 2-out-of-3 case).
//!
//! The share-exchange cost is `c(c-1 + (n-c))(n-k+1)|w|` where `c` is the
//! number of contributors (equal to `n(n-1)(n-k+1)|w|` when nobody drops),
//! and the subtotal collection costs `(k-1)|w|` plus `|w|` per recovery.

use crate::divide::{divide, ShareScheme};
use crate::ledger::TransferLog;
use crate::replicated::{assigned_partitions, holders};
use crate::weights::WeightVector;
use rand::Rng;
use std::collections::HashMap;

/// When during the round a peer drops out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPhase {
    /// Crashed before distributing any share: contributes nothing.
    BeforeShare,
    /// Crashed after distributing shares but before sending subtotals: its
    /// model is included and its subtotals are recovered from replicas.
    AfterShare,
}

/// One scheduled dropout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dropout {
    /// Index of the peer that drops (must be `< n`).
    pub peer: usize,
    /// When it drops.
    pub phase: DropPhase,
}

/// Why a fault-tolerant SAC round could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtSacError {
    /// `k` was outside `1..=n`.
    InvalidThreshold {
        /// Number of peers.
        n: usize,
        /// Offending threshold.
        k: usize,
    },
    /// The designated leader was in the dropout schedule. (In the full
    /// system a Raft election replaces the leader and the round restarts;
    /// the synchronous primitive just reports it.)
    LeaderCrashed,
    /// Some partition lost every replica holder, so the secret sum cannot
    /// be reconstructed. With at most `n-k` dropouts this cannot happen.
    TooManyDropouts {
        /// A partition index with no live holder.
        partition: usize,
    },
    /// Every peer dropped before sharing; there is nothing to average.
    NoContributors,
    /// (Ring engine only.) The contributor set left a ring stage with a
    /// single contributor, whose stage totals would disclose its
    /// individual model to the leader. The round is refused rather than
    /// weakened; a retry on the surviving roster re-chunks the stages.
    StageIsolation {
        /// The stage isolated down to one contributor.
        stage: usize,
    },
}

impl std::fmt::Display for FtSacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtSacError::InvalidThreshold { n, k } => {
                write!(f, "threshold k={k} invalid for n={n} peers")
            }
            FtSacError::LeaderCrashed => write!(f, "aggregation leader crashed mid-round"),
            FtSacError::TooManyDropouts { partition } => {
                write!(f, "partition {partition} lost all replica holders")
            }
            FtSacError::NoContributors => write!(f, "no peer contributed a model"),
            FtSacError::StageIsolation { stage } => {
                write!(
                    f,
                    "ring stage {stage} has a single contributor; refusing to \
                     disclose an individual model"
                )
            }
        }
    }
}

impl std::error::Error for FtSacError {}

/// Result of one fault-tolerant SAC round.
#[derive(Debug, Clone)]
pub struct FtSacOutcome {
    /// Average over the contributing peers' models (leader-side value).
    pub average: WeightVector,
    /// Indices of peers whose models entered the average.
    pub contributors: Vec<usize>,
    /// Number of subtotals served by alternate holders.
    pub recoveries: usize,
    /// Every logical transfer performed.
    pub log: TransferLog,
}

/// Phase label for block share exchange.
pub const PHASE_SHARE: &str = "ftsac.share";
/// Phase label for routine subtotal collection at the leader.
pub const PHASE_SUBTOTAL: &str = "ftsac.subtotal";
/// Phase label for recovery requests (small control messages).
pub const PHASE_REQUEST: &str = "ftsac.request";
/// Phase label for recovered subtotals served by alternate holders.
pub const PHASE_RECOVERY: &str = "ftsac.recovery";

/// Size charged for a recovery request control message.
pub const REQUEST_BYTES: u64 = 16;

/// Runs one round of `k`-out-of-`n` fault-tolerant SAC (paper Alg. 4) led by
/// `leader`, with the given dropout schedule.
pub fn fault_tolerant_secure_average<R: Rng + ?Sized>(
    models: &[WeightVector],
    k: usize,
    leader: usize,
    dropouts: &[Dropout],
    scheme: ShareScheme,
    rng: &mut R,
) -> Result<FtSacOutcome, FtSacError> {
    let n = models.len();
    if k == 0 || k > n {
        return Err(FtSacError::InvalidThreshold { n, k });
    }
    assert!(leader < n, "leader index out of range");
    let dim = models[0].dim();
    assert!(
        models.iter().all(|m| m.dim() == dim),
        "all models must share a dimension"
    );
    let wire = models[0].wire_bytes();

    let mut phase_of: HashMap<usize, DropPhase> = HashMap::new();
    for d in dropouts {
        assert!(d.peer < n, "dropout peer index out of range");
        phase_of.insert(d.peer, d.phase);
    }
    if phase_of.contains_key(&leader) {
        return Err(FtSacError::LeaderCrashed);
    }

    let alive: Vec<bool> = (0..n).map(|i| !phase_of.contains_key(&i)).collect();
    let contributors: Vec<usize> = (0..n)
        .filter(|i| phase_of.get(i) != Some(&DropPhase::BeforeShare))
        .collect();
    if contributors.is_empty() {
        return Err(FtSacError::NoContributors);
    }

    let mut log = TransferLog::new();

    // Phase 1 (lines 2-10): each contributor divides its model into n
    // partitions and sends peer j the consecutive block assigned to j.
    // Block size is n-k+1 partitions of |w| bytes each.
    let block = (n - k + 1) as u64;
    let mut shares: HashMap<usize, Vec<WeightVector>> = HashMap::new();
    for &i in &contributors {
        shares.insert(i, divide(&models[i], n, scheme, rng));
        for j in 0..n {
            if j != i {
                // The sender cannot know the receiver is about to crash; the
                // bandwidth is spent either way.
                log.record(PHASE_SHARE, block * wire);
            }
        }
    }

    // Phase 2 (lines 11-13): every live peer computes the subtotals for the
    // partition indices it holds.
    let subtotal = |p: usize| -> WeightVector {
        let mut s = WeightVector::zeros(dim);
        for &i in &contributors {
            s.add_assign(&shares[&i][p]);
        }
        s
    };

    // Phase 3 (lines 14-19): the leader gathers all n subtotals. It already
    // holds its own block; the primary owner p sends ps_p for the rest, and
    // alternate holders cover crashed owners.
    let leader_block = assigned_partitions(n, k, leader);
    let mut collected: HashMap<usize, WeightVector> = HashMap::new();
    let mut recoveries = 0usize;
    for p in 0..n {
        if leader_block.contains(&p) {
            collected.insert(p, subtotal(p));
            continue;
        }
        if alive[p] {
            log.record(PHASE_SUBTOTAL, wire);
            collected.insert(p, subtotal(p));
            continue;
        }
        // Owner crashed: ask the other replica holders (line 18).
        let alt = holders(n, k, p).into_iter().find(|&h| h != p && alive[h]);
        match alt {
            Some(_h) => {
                log.record(PHASE_REQUEST, REQUEST_BYTES);
                log.record(PHASE_RECOVERY, wire);
                recoveries += 1;
                collected.insert(p, subtotal(p));
            }
            None => return Err(FtSacError::TooManyDropouts { partition: p }),
        }
    }

    // Phase 4 (line 20): average over contributors.
    let mut average = WeightVector::zeros(dim);
    for p in 0..n {
        average.add_assign(&collected[&p]);
    }
    average.scale(1.0 / contributors.len() as f64);

    Ok(FtSacOutcome {
        average,
        contributors,
        recoveries,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(n: usize, dim: usize, seed: u64) -> Vec<WeightVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect()
    }

    fn mean_of(ms: &[WeightVector], idx: &[usize]) -> WeightVector {
        WeightVector::mean(idx.iter().map(|&i| &ms[i]))
    }

    #[test]
    fn no_dropouts_matches_plain_mean() {
        let ms = models(5, 20, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out =
            fault_tolerant_secure_average(&ms, 3, 0, &[], ShareScheme::Masked, &mut rng).unwrap();
        assert_eq!(out.contributors, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.recoveries, 0);
        let plain = mean_of(&ms, &[0, 1, 2, 3, 4]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn share_phase_cost_matches_paper_formula() {
        // Paper Sec. VII-B: n(n-1)(n-k+1)|w| for shares, (k-1)|w| subtotals.
        let (n, k) = (5usize, 3usize);
        let ms = models(n, 10, 3);
        let wire = ms[0].wire_bytes();
        let mut rng = StdRng::seed_from_u64(4);
        let out =
            fault_tolerant_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng).unwrap();
        assert_eq!(
            out.log.phase(PHASE_SHARE).1,
            (n * (n - 1) * (n - k + 1)) as u64 * wire
        );
        assert_eq!(out.log.phase(PHASE_SUBTOTAL).1, (k - 1) as u64 * wire);
        assert_eq!(out.log.phase(PHASE_RECOVERY), (0, 0));
    }

    #[test]
    fn after_share_dropout_still_contributes_fig3() {
        // The paper's 2-out-of-3 walkthrough: Alice drops after sharing, the
        // remaining peers still reconstruct the 3-peer average.
        let ms = models(3, 16, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = fault_tolerant_secure_average(
            &ms,
            2,
            1,
            &[Dropout {
                peer: 0,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.contributors, vec![0, 1, 2]);
        let plain = mean_of(&ms, &[0, 1, 2]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn before_share_dropout_is_excluded() {
        let ms = models(4, 16, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = fault_tolerant_secure_average(
            &ms,
            3,
            1,
            &[Dropout {
                peer: 3,
                phase: DropPhase::BeforeShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.contributors, vec![0, 1, 2]);
        let plain = mean_of(&ms, &[0, 1, 2]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn recovery_is_counted() {
        let ms = models(5, 8, 9);
        let mut rng = StdRng::seed_from_u64(10);
        // Peer 4's subtotal is outside leader 0's block {0,1,2}; crash it.
        let out = fault_tolerant_secure_average(
            &ms,
            3,
            0,
            &[Dropout {
                peer: 4,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.recoveries, 1);
        assert_eq!(out.log.phase(PHASE_RECOVERY).0, 1);
        assert_eq!(out.log.phase(PHASE_REQUEST).0, 1);
    }

    #[test]
    fn tolerates_up_to_n_minus_k_dropouts() {
        let (n, k) = (5usize, 2usize);
        let ms = models(n, 8, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let dropouts: Vec<Dropout> = (1..=n - k)
            .map(|p| Dropout {
                peer: p,
                phase: DropPhase::AfterShare,
            })
            .collect();
        let out =
            fault_tolerant_secure_average(&ms, k, 0, &dropouts, ShareScheme::Masked, &mut rng)
                .unwrap();
        let plain = mean_of(&ms, &[0, 1, 2, 3, 4]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn leader_crash_is_reported() {
        let ms = models(3, 4, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let err = fault_tolerant_secure_average(
            &ms,
            2,
            0,
            &[Dropout {
                peer: 0,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, FtSacError::LeaderCrashed);
    }

    #[test]
    fn invalid_threshold_is_reported() {
        let ms = models(3, 4, 15);
        let mut rng = StdRng::seed_from_u64(16);
        for k in [0usize, 4] {
            let err = fault_tolerant_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng)
                .unwrap_err();
            assert!(matches!(err, FtSacError::InvalidThreshold { .. }));
        }
    }

    #[test]
    fn n_out_of_n_with_a_dropout_fails_like_alg2() {
        // With k = n there is no replication: one AfterShare crash outside
        // the leader's block cannot be recovered — exactly the weakness of
        // the original SAC that Alg. 4 fixes.
        let ms = models(4, 4, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let err = fault_tolerant_secure_average(
            &ms,
            4,
            0,
            &[Dropout {
                peer: 2,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, FtSacError::TooManyDropouts { .. }));
    }
}
