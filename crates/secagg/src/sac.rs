//! Paper Alg. 2 — Secure Average Computation (n-out-of-n), synchronous
//! reference implementation.
//!
//! Every peer splits its model into `N` additive shares, exchanges them on a
//! complete graph, computes a subtotal over the shares it holds, and
//! exchanges subtotals so everyone can reconstruct the average. The
//! communication cost is `2N(N-1)|w|` for the full-broadcast variant and
//! `(N²-1)|w|` for the leader-collect variant used inside the two-layer
//! system's subgroups (followers send subtotals only to the leader).
//!
//! These synchronous functions execute the exact message flow logically —
//! including the floating-point error the share arithmetic introduces — and
//! account every transfer in a [`TransferLog`] so the closed-form cost
//! formulas can be verified against them.

use crate::divide::{divide, ShareScheme};
use crate::ledger::TransferLog;
use crate::weights::WeightVector;
use rand::Rng;

/// Result of one SAC round.
#[derive(Debug, Clone)]
pub struct SacOutcome {
    /// The securely computed average, identical on all peers.
    pub average: WeightVector,
    /// Every logical transfer the protocol performed.
    pub log: TransferLog,
}

/// Phase label for share-exchange transfers.
pub const PHASE_SHARE: &str = "sac.share";
/// Phase label for subtotal-exchange transfers.
pub const PHASE_SUBTOTAL: &str = "sac.subtotal";

/// Runs one round of n-out-of-n SAC with full subtotal broadcast
/// (paper Alg. 2). All peers are assumed alive; for dropout tolerance see
/// [`crate::ftsac::fault_tolerant_secure_average`].
///
/// Panics if `models` is empty or dimensions mismatch.
pub fn secure_average<R: Rng + ?Sized>(
    models: &[WeightVector],
    scheme: ShareScheme,
    rng: &mut R,
) -> SacOutcome {
    run(models, scheme, SubtotalExchange::Broadcast, rng)
}

/// Runs one round of n-out-of-n SAC where followers send their subtotal only
/// to `leader` (the form used inside a two-layer subgroup). Only the leader
/// learns the average; cost is `(N²-1)|w|`.
///
/// Panics if `models` is empty, dimensions mismatch, or `leader` is out of
/// range.
pub fn secure_average_with_leader<R: Rng + ?Sized>(
    models: &[WeightVector],
    leader: usize,
    scheme: ShareScheme,
    rng: &mut R,
) -> SacOutcome {
    assert!(leader < models.len(), "leader index out of range");
    run(models, scheme, SubtotalExchange::ToLeader(leader), rng)
}

enum SubtotalExchange {
    Broadcast,
    ToLeader(usize),
}

fn run<R: Rng + ?Sized>(
    models: &[WeightVector],
    scheme: ShareScheme,
    exchange: SubtotalExchange,
    rng: &mut R,
) -> SacOutcome {
    let n = models.len();
    assert!(n > 0, "SAC requires at least one peer");
    let dim = models[0].dim();
    assert!(
        models.iter().all(|m| m.dim() == dim),
        "all models must share a dimension"
    );
    let wire = models[0].wire_bytes();
    let mut log = TransferLog::new();

    // Phase 1: each peer i divides its model and sends partition j to peer j.
    // shares[i][j] = par_wt_{i,j}.
    let shares: Vec<Vec<WeightVector>> = models.iter().map(|m| divide(m, n, scheme, rng)).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                log.record(PHASE_SHARE, wire);
            }
        }
    }

    // Phase 2: peer j computes the subtotal over everything it received.
    let subtotals: Vec<WeightVector> = (0..n)
        .map(|j| {
            let mut s = WeightVector::zeros(dim);
            for row in &shares {
                s.add_assign(&row[j]);
            }
            s
        })
        .collect();

    // Phase 3: exchange subtotals.
    match exchange {
        SubtotalExchange::Broadcast => {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        log.record(PHASE_SUBTOTAL, wire);
                    }
                }
            }
        }
        SubtotalExchange::ToLeader(leader) => {
            for j in 0..n {
                if j != leader {
                    log.record(PHASE_SUBTOTAL, wire);
                }
            }
        }
    }

    // Phase 4: average of subtotals equals the average of the models.
    let mut average = WeightVector::sum(subtotals.iter());
    average.scale(1.0 / n as f64);
    SacOutcome { average, log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(n: usize, dim: usize, seed: u64) -> Vec<WeightVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn sac_average_equals_plain_mean() {
        let ms = models(7, 50, 1);
        let plain = WeightVector::mean(ms.iter());
        let mut rng = StdRng::seed_from_u64(2);
        for scheme in [ShareScheme::Scaled, ShareScheme::Masked] {
            let out = secure_average(&ms, scheme, &mut rng);
            assert!(
                out.average.linf_distance(&plain) < 1e-9,
                "scheme {scheme:?} error {}",
                out.average.linf_distance(&plain)
            );
        }
    }

    #[test]
    fn broadcast_cost_is_2n_nminus1_w() {
        // Paper Sec. III-B: total cost 2N(N-1)|w|.
        let ms = models(5, 10, 3);
        let wire = ms[0].wire_bytes();
        let mut rng = StdRng::seed_from_u64(4);
        let out = secure_average(&ms, ShareScheme::Masked, &mut rng);
        assert_eq!(out.log.bytes(), 2 * 5 * 4 * wire);
        assert_eq!(out.log.messages(), 2 * 5 * 4);
        assert_eq!(out.log.phase(PHASE_SHARE), (20, 20 * wire));
        assert_eq!(out.log.phase(PHASE_SUBTOTAL), (20, 20 * wire));
    }

    #[test]
    fn leader_collect_cost_is_nsq_minus_1_w() {
        // Paper Sec. VII-A: a subgroup of n peers costs (n^2 - 1)|w|.
        for n in 1..=8usize {
            let ms = models(n, 6, 5);
            let wire = ms[0].wire_bytes();
            let mut rng = StdRng::seed_from_u64(6);
            let out = secure_average_with_leader(&ms, 0, ShareScheme::Masked, &mut rng);
            assert_eq!(out.log.bytes(), ((n * n - 1) as u64) * wire, "n={n}");
        }
    }

    #[test]
    fn single_peer_sac_is_identity() {
        let ms = models(1, 8, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = secure_average(&ms, ShareScheme::Masked, &mut rng);
        assert!(out.average.linf_distance(&ms[0]) < 1e-12);
        assert_eq!(out.log.bytes(), 0, "nothing to exchange");
    }

    #[test]
    fn leader_choice_does_not_change_average() {
        let ms = models(4, 12, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let a = secure_average_with_leader(&ms, 0, ShareScheme::Masked, &mut rng);
        let b = secure_average_with_leader(&ms, 3, ShareScheme::Masked, &mut rng);
        assert!(a.average.linf_distance(&b.average) < 1e-9);
    }
}
