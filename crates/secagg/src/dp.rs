//! Differential-privacy noising — the extension the paper's Sec. IV-D
//! points to for stronger guarantees on the aggregated model.
//!
//! Implements the Gaussian mechanism: each peer perturbs its model with
//! `N(0, σ²)` noise before it enters the aggregation, giving (ε, δ)-DP
//! per round with `σ = sensitivity · sqrt(2 ln(1.25/δ)) / ε` (the classic
//! analytic bound, valid for ε ≤ 1). Because the noise is added *before*
//! secret sharing, the DP guarantee holds even against the aggregation
//! leader; averaging `n` peers attenuates the noise by `1/n`.

use crate::weights::WeightVector;
use rand::Rng;

/// Parameters of the Gaussian mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianDp {
    /// Privacy budget per round.
    pub epsilon: f64,
    /// Failure probability.
    pub delta: f64,
    /// L2 sensitivity of one peer's contribution (commonly enforced by
    /// clipping the update to this norm).
    pub sensitivity: f64,
}

impl GaussianDp {
    /// The noise standard deviation required by the analytic Gaussian
    /// mechanism. Panics unless `0 < epsilon <= 1` and `0 < delta < 1`.
    pub fn sigma(&self) -> f64 {
        assert!(
            self.epsilon > 0.0 && self.epsilon <= 1.0,
            "classic bound needs 0 < epsilon <= 1"
        );
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta out of range");
        assert!(self.sensitivity > 0.0, "sensitivity must be positive");
        self.sensitivity * (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }
}

/// Clips `w` to L2 norm at most `bound` (projection onto the ball),
/// returning the scaling factor applied (1.0 when already inside).
pub fn clip_l2(w: &mut WeightVector, bound: f64) -> f64 {
    assert!(bound > 0.0, "clip bound must be positive");
    let norm = w.l2_norm();
    if norm <= bound || norm == 0.0 {
        return 1.0;
    }
    let scale = bound / norm;
    w.scale(scale);
    scale
}

/// Adds i.i.d. `N(0, sigma²)` noise to every coordinate.
pub fn add_gaussian_noise<R: Rng + ?Sized>(w: &mut WeightVector, sigma: f64, rng: &mut R) {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    if sigma == 0.0 {
        return;
    }
    let noisy: Vec<f64> = w
        .iter()
        .map(|&x| {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            x + sigma * z
        })
        .collect();
    *w = WeightVector::new(noisy);
}

/// Convenience: clip to `dp.sensitivity` and add mechanism noise.
pub fn privatize<R: Rng + ?Sized>(w: &mut WeightVector, dp: GaussianDp, rng: &mut R) {
    clip_l2(w, dp.sensitivity);
    add_gaussian_noise(w, dp.sigma(), rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_matches_closed_form() {
        let dp = GaussianDp {
            epsilon: 1.0,
            delta: 1e-5,
            sensitivity: 1.0,
        };
        let expected = (2.0f64 * (1.25f64 / 1e-5).ln()).sqrt();
        assert!((dp.sigma() - expected).abs() < 1e-12);
        // Tighter epsilon => more noise.
        let tight = GaussianDp { epsilon: 0.5, ..dp };
        assert!(tight.sigma() > dp.sigma());
    }

    #[test]
    fn clip_projects_onto_ball() {
        let mut w = WeightVector::new(vec![3.0, 4.0]); // norm 5
        let s = clip_l2(&mut w, 1.0);
        assert!((w.l2_norm() - 1.0).abs() < 1e-12);
        assert!((s - 0.2).abs() < 1e-12);
        // Inside the ball: untouched.
        let mut small = WeightVector::new(vec![0.1, 0.1]);
        assert_eq!(clip_l2(&mut small, 1.0), 1.0);
        assert_eq!(small.as_slice(), &[0.1, 0.1]);
    }

    #[test]
    fn noise_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let dim = 50_000;
        let mut w = WeightVector::zeros(dim);
        add_gaussian_noise(&mut w, 2.0, &mut rng);
        let var = w.iter().map(|x| x * x).sum::<f64>() / dim as f64;
        assert!((var - 4.0).abs() < 0.1, "empirical variance {var}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = WeightVector::new(vec![1.0, -2.0]);
        add_gaussian_noise(&mut w, 0.0, &mut rng);
        assert_eq!(w.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn averaging_attenuates_noise() {
        // The utility argument: per-peer noise shrinks by 1/n in the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 16usize;
        let dim = 10_000;
        let sigma = 1.0;
        let noisy: Vec<WeightVector> = (0..n)
            .map(|_| {
                let mut w = WeightVector::zeros(dim);
                add_gaussian_noise(&mut w, sigma, &mut rng);
                w
            })
            .collect();
        let mean = WeightVector::mean(noisy.iter());
        let var = mean.iter().map(|x| x * x).sum::<f64>() / dim as f64;
        let expected = sigma * sigma / n as f64;
        assert!(
            (var - expected).abs() < expected * 0.3,
            "variance {var}, expected ~{expected}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_large_epsilon() {
        let _ = GaussianDp {
            epsilon: 2.0,
            delta: 1e-5,
            sensitivity: 1.0,
        }
        .sigma();
    }
}
