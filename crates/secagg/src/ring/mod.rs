//! Ring-SAC — a second secure-aggregation engine with O(n log n) traffic.
//!
//! The paper's Alg. 4 exchanges shares all-to-all: O(n²) messages and
//! O(n²·(n-k+1)) share bytes per subgroup round, which caps subgroup
//! size. This subsystem arranges the subgroup into `L ≈ n/⌈log₂ n⌉`
//! consecutive *stages* on a ring (Turbo-Aggregate's circular layout,
//! arXiv 2002.04156): every peer shares its masked model only with its
//! successor stage, replicated within that stage with a share-of-share
//! threshold (arXiv 2201.00864) that preserves the global `n - k`
//! dropout budget. Partial aggregates — one total per `(stage,
//! partition)` — then flow to the leader, `n` vectors in all, so total
//! traffic is O(n log n).
//!
//! Three entry points, mirroring the pairwise engine:
//!
//! * [`RingPlan`] — the pure stage-layout function of `(n, k)`;
//! * [`ring_secure_average`] — synchronous reference with an explicit
//!   dropout schedule and cost ledger (counterpart of
//!   [`crate::fault_tolerant_secure_average`]);
//! * [`RingSacActor`] — the sans-IO message-driven engine implementing
//!   the same `Actor` interface and round-supervision contract as
//!   [`crate::SacPeerActor`] (deadlines, `Abort`, one degraded retry
//!   with `k' = min(k, n')`, roster-driven reconfiguration).
//!
//! [`SacEngine`] selects between the engines per run; it travels in
//! [`crate::SacConfig`] and is replicated through the FedAvg-layer
//! config so a subgroup can never mix engines within a round.

mod engine;
pub(crate) mod plan;
mod sync;

pub use engine::{RingMsg, RingSacActor, SacEngine};
pub use plan::RingPlan;
pub use sync::{
    ring_secure_average, ANNOUNCE_BYTES, RING_PHASE_ANNOUNCE, RING_PHASE_RECOVERY,
    RING_PHASE_REQUEST, RING_PHASE_SHARE, RING_PHASE_TOTAL,
};
