//! Message-driven Ring-SAC engine over `p2pfl-simnet`.
//!
//! Runs the same fault-tolerant secure-average protocol as
//! [`crate::engine::SacPeerActor`] but over the staged ring layout of
//! [`RingPlan`]: each peer shares only with its successor stage
//! (`O(log n)` fan-out instead of `n - 1`), and the leader reconstructs
//! the global sum from `n` per-stage partition totals.
//!
//! Protocol (one aggregation round, leader-driven):
//!
//! 1. every peer divides its model into `m` additive shares (`m` = size
//!    of its successor stage) and sends each successor-stage member its
//!    replicated block (`StageShare`), then announces completion to the
//!    leader (`Shared`) — the announcement replaces the leader's
//!    all-to-all visibility in the pairwise engine;
//! 2. when every member has announced — or the share deadline expires —
//!    the leader freezes the contributor set and broadcasts
//!    `ComputeOver`;
//! 3. every live peer totals its block of predecessor-stage shares over
//!    the frozen set; the *primary owner* of each `(stage, partition)`
//!    sends its total to the leader (`StageTotal`);
//! 4. after a collection deadline the leader requests missing totals from
//!    alternate in-stage replica holders (`StageTotalRequest`);
//! 5. with all `n` totals the leader averages and completes.
//!
//! The round supervision contract is identical to the pairwise engine:
//! round-tagged deadlines, `Abort` + one degraded retry with
//! `k' = min(k, n')`, follower abandonment, next-round stashing, and
//! roster-driven reconfiguration.

use crate::divide::divide;
use crate::engine::{SacConfig, SacPhase};
use crate::ring::plan::RingPlan;
use crate::weights::WeightVector;
use p2pfl_simnet::{Actor, NodeId, Payload, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Which secure-aggregation engine a subgroup runs. Replicated through
/// the FedAvg-layer config (`FedConfig`) so every member of a subgroup
/// agrees on the engine before a round starts — a round must never mix
/// engines, which the checker's `EngineAgreement` oracle enforces.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum SacEngine {
    /// Paper Alg. 4: all-to-all replicated share blocks, O(n²) messages.
    #[default]
    Pairwise,
    /// Staged ring layout: successor-stage sharing, O(n log n) messages.
    Ring,
}

/// Messages exchanged by the Ring-SAC engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RingMsg {
    /// Leader tells followers to begin round `round`.
    Begin {
        /// Round number.
        round: u64,
    },
    /// A contributor's replicated block of `(stage-local partition index,
    /// partition)` pairs, sent only to successor-stage members.
    StageShare {
        /// Round number.
        round: u64,
        /// Sender's global position within the subgroup.
        from_pos: usize,
        /// The stage-local partitions assigned to the receiver.
        parts: Vec<(usize, WeightVector)>,
    },
    /// A peer tells the leader its shares are distributed. The leader
    /// never sees most shares in the ring layout, so contributor
    /// freezing is driven by these announcements instead of received
    /// blocks.
    Shared {
        /// Round number.
        round: u64,
        /// Announcer's global position.
        from_pos: usize,
    },
    /// Leader freezes the contributor set.
    ComputeOver {
        /// Round number.
        round: u64,
        /// Positions whose models are included this round.
        contributors: Vec<usize>,
    },
    /// A computed per-stage partition total.
    StageTotal {
        /// Round number.
        round: u64,
        /// Receiving stage the total belongs to.
        stage: usize,
        /// Stage-local partition index.
        idx: usize,
        /// Sum of the partition over the frozen predecessor-stage
        /// contributors.
        value: WeightVector,
    },
    /// Leader asks an in-stage replica holder for a missing total.
    StageTotalRequest {
        /// Round number.
        round: u64,
        /// Receiving stage of the missing total.
        stage: usize,
        /// Stage-local partition index to recover.
        idx: usize,
    },
    /// Leader aborts the round (same discard semantics as the pairwise
    /// engine: all mask material of the round is dropped, never reused).
    Abort {
        /// The aborted round.
        round: u64,
        /// Human-readable cause, for logs and traces.
        reason: String,
    },
    /// Leader restarts aggregation after an abort with a degraded roster;
    /// receivers re-derive the ring plan from the new `(group, k)`.
    Reconfigure {
        /// The retry round (always a fresh round number).
        round: u64,
        /// Surviving subgroup members, in position order.
        group: Vec<NodeId>,
        /// Recomputed threshold `k' = min(k, n')`.
        k: usize,
    },
}

impl Payload for RingMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            RingMsg::Begin { .. } => 16,
            RingMsg::StageShare { parts, .. } => {
                parts.iter().map(|(_, v)| v.wire_bytes()).sum::<u64>() + 8
            }
            RingMsg::Shared { .. } => 16,
            RingMsg::ComputeOver { contributors, .. } => 16 + contributors.len() as u64,
            RingMsg::StageTotal { value, .. } => value.wire_bytes() + 16,
            RingMsg::StageTotalRequest { .. } => 24,
            RingMsg::Abort { reason, .. } => 16 + reason.len() as u64,
            RingMsg::Reconfigure { group, .. } => 24 + 4 * group.len() as u64,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            RingMsg::Begin { .. } => "ring.begin",
            RingMsg::StageShare { .. } => "ring.share",
            RingMsg::Shared { .. } => "ring.shared",
            RingMsg::ComputeOver { .. } => "ring.ctrl",
            RingMsg::StageTotal { .. } => "ring.total",
            RingMsg::StageTotalRequest { .. } => "ring.request",
            RingMsg::Abort { .. } => "ring.abort",
            RingMsg::Reconfigure { .. } => "ring.reconf",
        }
    }
}

const TIMER_SHARE_DEADLINE: u64 = 1;
const TIMER_COLLECT_DEADLINE: u64 = 2;
const TIMER_ROUND_DEADLINE: u64 = 3;

/// Round-tagged timers, same scheme as the pairwise engine: a deadline
/// armed for an aborted round can never misfire into its retry.
fn timer_tag(base: u64, round: u64) -> u64 {
    (round << 8) | base
}

/// A subgroup member executing fault-tolerant Ring-SAC over the
/// simulator. Shares [`SacConfig`] and [`SacPhase`] with the pairwise
/// engine — a runtime picks one of the two actors per
/// [`SacConfig::engine`].
pub struct RingSacActor {
    cfg: SacConfig,
    plan: RingPlan,
    model: WeightVector,
    rng: StdRng,
    /// Current round number.
    pub round: u64,
    /// Protocol phase.
    pub phase: SacPhase,
    /// The leader's computed average once `phase == Done`.
    pub result: Option<WeightVector>,
    /// Contributor positions of the completed round (leader only).
    pub contributors: Vec<usize>,
    /// Recoveries performed in the completed round (leader only).
    pub recoveries: usize,
    /// Rounds aborted on this peer (same semantics as the pairwise
    /// engine).
    pub aborts: u64,
    /// Rounds a follower abandoned locally at the round deadline.
    pub abandoned: u64,
    /// Next-round stash messages evicted because the `4n` bound was hit.
    pub stash_evicted: u64,
    // blocks[from_pos][stage-local idx] = partition share from the
    // predecessor-stage contributor at global position from_pos.
    blocks: BTreeMap<usize, BTreeMap<usize, WeightVector>>,
    // Leader: positions that announced `Shared` this round (self
    // included).
    announced: BTreeSet<usize>,
    frozen: Option<BTreeSet<usize>>,
    // totals[(stage, idx)]: on every peer the own-block totals; on the
    // leader additionally everything collected via `StageTotal`.
    totals: BTreeMap<(usize, usize), WeightVector>,
    requested: BTreeSet<(usize, usize)>,
    sent_primary: bool,
    pending_requests: Vec<((usize, usize), NodeId)>,
    // Next-round stash, same rationale and bound as the pairwise engine.
    future: Vec<(NodeId, RingMsg)>,
    aborted: Option<u64>,
    retried: bool,
    // Mask-stream domains adopted so far (construction seed, then one per
    // `rekey`); surface of the NoMaskReuseAcrossRekey oracle.
    mask_keys: Vec<u64>,
}

impl RingSacActor {
    /// Creates an idle engine participant holding `model`.
    pub fn new(cfg: SacConfig, model: WeightVector) -> Self {
        assert!(cfg.position < cfg.group.len(), "position out of range");
        assert!(
            cfg.leader_pos < cfg.group.len(),
            "leader position out of range"
        );
        assert!(cfg.k >= 1 && cfg.k <= cfg.group.len(), "invalid threshold");
        let plan = RingPlan::new(cfg.group.len(), cfg.k);
        let mask_domain = cfg.seed ^ (cfg.position as u64) << 32;
        let rng = StdRng::seed_from_u64(mask_domain);
        RingSacActor {
            cfg,
            plan,
            model,
            rng,
            round: 0,
            phase: SacPhase::Idle,
            result: None,
            contributors: Vec::new(),
            recoveries: 0,
            aborts: 0,
            abandoned: 0,
            stash_evicted: 0,
            blocks: BTreeMap::new(),
            announced: BTreeSet::new(),
            frozen: None,
            totals: BTreeMap::new(),
            requested: BTreeSet::new(),
            sent_primary: false,
            pending_requests: Vec::new(),
            future: Vec::new(),
            aborted: None,
            retried: false,
            mask_keys: vec![mask_domain],
        }
    }

    /// Replaces the local model (between rounds).
    pub fn set_model(&mut self, model: WeightVector) {
        self.model = model;
    }

    // ------------------------------------------------------------------
    // Inspection accessors for the invariant checker (`p2pfl-check`)
    // ------------------------------------------------------------------

    /// This participant's static configuration.
    pub fn sac_config(&self) -> &SacConfig {
        &self.cfg
    }

    /// The stage layout this participant derived from `(n, k)`.
    pub fn plan(&self) -> &RingPlan {
        &self.plan
    }

    /// The local model being aggregated this round.
    pub fn model(&self) -> &WeightVector {
        &self.model
    }

    /// Every share partition held locally: `blocks[from_pos][idx]`.
    pub fn held_blocks(&self) -> &BTreeMap<usize, BTreeMap<usize, WeightVector>> {
        &self.blocks
    }

    /// The frozen contributor set, once decided.
    pub fn frozen_set(&self) -> Option<&BTreeSet<usize>> {
        self.frozen.as_ref()
    }

    /// Stage totals held locally (`(stage, idx) -> value`); on the leader
    /// these are the collected per-partition sums over the frozen set.
    pub fn held_totals(&self) -> &BTreeMap<(usize, usize), WeightVector> {
        &self.totals
    }

    /// Leader entry point: begins round `round`, instructing followers
    /// and distributing this peer's own shares.
    pub fn start_round(&mut self, ctx: &mut dyn Transport<RingMsg>, round: u64) {
        assert!(self.cfg.is_leader(), "only the leader starts rounds");
        self.retried = false;
        self.reset_for(round);
        let group = self.cfg.group.clone();
        let me = self.me();
        for &peer in &group {
            if peer != me {
                ctx.send(peer, RingMsg::Begin { round });
            }
        }
        self.distribute_shares(ctx);
        ctx.set_timer(
            self.cfg.share_deadline,
            timer_tag(TIMER_SHARE_DEADLINE, round),
        );
        self.arm_round_deadline(ctx);
        self.phase = SacPhase::Sharing;
        self.maybe_freeze(ctx); // n = 1: the leader's own announcement completes the set
        self.replay_future(ctx);
    }

    fn me(&self) -> NodeId {
        self.cfg.group[self.cfg.position]
    }

    fn arm_round_deadline(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        if let Some(d) = self.cfg.round_deadline {
            ctx.set_timer(d, timer_tag(TIMER_ROUND_DEADLINE, self.round));
        }
    }

    /// Adopts a new roster mid-life; same contract as the pairwise
    /// engine, plus re-deriving the ring plan from the new `(n', k')`.
    /// Returns whether the roster was adopted.
    pub fn reconfigure(&mut self, group: Vec<NodeId>, leader: NodeId, k: usize) -> bool {
        let me = self.me();
        // Same policy as the pairwise engine: an invalid roster (missing
        // this peer or the leader, unsatisfiable threshold) is ignored
        // rather than allowed to crash the engine.
        let (Some(position), Some(leader_pos)) = (
            group.iter().position(|&p| p == me),
            group.iter().position(|&p| p == leader),
        ) else {
            return false;
        };
        if k < 1 || k > group.len() {
            return false;
        }
        self.plan = RingPlan::new(group.len(), k);
        self.cfg.group = group;
        self.cfg.position = position;
        self.cfg.leader_pos = leader_pos;
        self.cfg.k = k;
        let round = self.round;
        self.reset_for(round);
        true
    }

    /// Adopts a new roster *and* a fresh mask domain — the elastic
    /// split/merge re-key; same contract as the pairwise engine's
    /// [`crate::SacPeerActor::rekey`]: the stage-share RNG is reseeded
    /// under the per-peer `roster_key`, so no mask drawn for the retired
    /// roster can recur under the new one, even if the member set is
    /// identical. A rejected roster leaves the mask stream untouched.
    pub fn rekey(&mut self, group: Vec<NodeId>, leader: NodeId, k: usize, roster_key: u64) -> bool {
        if !self.reconfigure(group, leader, k) {
            return false;
        }
        let domain = self.cfg.seed ^ roster_key ^ (self.cfg.position as u64) << 32;
        self.rng = StdRng::seed_from_u64(domain);
        self.mask_keys.push(domain);
        true
    }

    /// The mask-stream domains this engine has drawn from, in adoption
    /// order (construction seed first, then one entry per re-key).
    pub fn mask_keys(&self) -> &[u64] {
        &self.mask_keys
    }

    /// Leader-side dead end: abort the round everywhere, then — unless
    /// the round was already a retry, or fewer than two members survive —
    /// restart with the surviving roster and `k' = min(k, n')`.
    fn supervise(
        &mut self,
        ctx: &mut dyn Transport<RingMsg>,
        suspects: &BTreeSet<usize>,
        reason: &str,
    ) {
        let old_round = self.round;
        let me = self.me();
        for &peer in &self.cfg.group.clone() {
            if peer != me {
                ctx.send(
                    peer,
                    RingMsg::Abort {
                        round: old_round,
                        reason: reason.to_string(),
                    },
                );
            }
        }
        self.aborted = Some(old_round);
        self.aborts += 1;
        let survivors: Vec<NodeId> = self
            .cfg
            .group
            .iter()
            .enumerate()
            .filter(|(j, _)| *j == self.cfg.position || !suspects.contains(j))
            .map(|(_, &p)| p)
            .collect();
        if self.retried {
            self.reset_for(old_round);
            self.phase = SacPhase::Failed(format!("{reason} (after retry)"));
            return;
        }
        if survivors.len() < 2 {
            self.reset_for(old_round);
            self.phase = SacPhase::Failed(format!(
                "degraded below 2 members (n' = {}): {reason}",
                survivors.len()
            ));
            return;
        }
        self.retried = true;
        let k = self.cfg.k.min(survivors.len());
        let next = old_round + 1;
        self.reconfigure(survivors.clone(), me, k);
        for &peer in &survivors {
            if peer != me {
                ctx.send(
                    peer,
                    RingMsg::Reconfigure {
                        round: next,
                        group: survivors.clone(),
                        k,
                    },
                );
            }
        }
        self.reset_for(next);
        self.distribute_shares(ctx);
        ctx.set_timer(
            self.cfg.share_deadline,
            timer_tag(TIMER_SHARE_DEADLINE, next),
        );
        self.arm_round_deadline(ctx);
        self.phase = SacPhase::Sharing;
        self.replay_future(ctx);
    }

    /// Re-dispatches stashed next-round messages now that the round has
    /// advanced.
    fn replay_future(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        for (from, msg) in std::mem::take(&mut self.future) {
            self.on_message(ctx, from, msg);
        }
    }

    fn reset_for(&mut self, round: u64) {
        self.round = round;
        self.phase = SacPhase::Idle;
        self.result = None;
        self.contributors.clear();
        self.recoveries = 0;
        self.blocks.clear();
        self.announced.clear();
        self.frozen = None;
        self.totals.clear();
        self.requested.clear();
        self.sent_primary = false;
        self.pending_requests.clear();
    }

    /// Splits the model into `m` shares (`m` = successor-stage size) and
    /// sends each successor-stage member its replicated block — the
    /// O(log n) fan-out that replaces the pairwise engine's `n - 1`
    /// sends. Finishes by announcing completion to the leader.
    fn distribute_shares(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        let t = self.plan.stage_of(self.cfg.position);
        let s = self.plan.succ_stage(t);
        let m = self.plan.stage_len(s);
        #[allow(unused_mut)]
        let mut parts = divide(&self.model, m, self.cfg.scheme, &mut self.rng);
        #[cfg(feature = "mutants")]
        if crate::mutants::active(crate::mutants::Mutant::ShareSkew) {
            if let Some(p0) = parts.get_mut(0) {
                p0.scale(0.5);
            }
        }
        for i in 0..m {
            let gpos = self.plan.global_pos(s, i);
            let block: Vec<(usize, WeightVector)> = self
                .plan
                .assigned(s, i)
                .into_iter()
                .map(|p| (p, parts[p].clone()))
                .collect();
            if gpos == self.cfg.position {
                // Single-stage ring (L = 1): keep our own block locally.
                let mine = self.blocks.entry(self.cfg.position).or_default();
                for (p, v) in block {
                    mine.insert(p, v);
                }
            } else {
                ctx.send(
                    self.cfg.group[gpos],
                    RingMsg::StageShare {
                        round: self.round,
                        from_pos: self.cfg.position,
                        parts: block,
                    },
                );
            }
        }
        if self.cfg.is_leader() {
            self.announced.insert(self.cfg.position);
        } else {
            ctx.send(
                self.cfg.group[self.cfg.leader_pos],
                RingMsg::Shared {
                    round: self.round,
                    from_pos: self.cfg.position,
                },
            );
        }
    }

    /// Leader: freeze as soon as every member has announced.
    fn maybe_freeze(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        if self.cfg.is_leader()
            && self.phase == SacPhase::Sharing
            && self.announced.len() == self.cfg.group.len()
        {
            self.freeze_and_collect(ctx);
        }
    }

    fn freeze_and_collect(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        let contributors = self.announced.clone();
        if contributors.is_empty() {
            self.phase = SacPhase::Failed("no contributors".into());
            return;
        }
        if contributors.len() < self.cfg.k {
            // Same dead-end rule as the pairwise engine: never publish an
            // average the round's `k` policy does not sanction. Supervised
            // rounds abort and retry/fail; unsupervised rounds just fail.
            if self.cfg.round_deadline.is_some() {
                let suspects: BTreeSet<usize> = (0..self.plan.n())
                    .filter(|j| !contributors.contains(j))
                    .collect();
                self.supervise(ctx, &suspects, "fewer than k contributors at freeze");
            } else {
                self.phase = SacPhase::Failed(format!(
                    "fewer than k contributors at freeze ({} < {})",
                    contributors.len(),
                    self.cfg.k
                ));
            }
            return;
        }
        if let Some(stage) = self
            .plan
            .lone_contributor_stage(|p| contributors.contains(&p))
        {
            // A stage frozen down to one contributor would make that
            // stage's totals sum to the lone peer's individual model,
            // shrinking the anonymity set from "contributors" to
            // "contributors per stage". Same dead-end rule as below-k:
            // supervised rounds retry on the contributor roster (the
            // re-derived plan re-chunks the stages, restoring balance);
            // unsupervised rounds fail rather than disclose.
            if self.cfg.round_deadline.is_some() {
                let suspects: BTreeSet<usize> = (0..self.plan.n())
                    .filter(|j| !contributors.contains(j))
                    .collect();
                self.supervise(
                    ctx,
                    &suspects,
                    &format!("stage {stage} frozen to a single contributor"),
                );
            } else {
                self.phase = SacPhase::Failed(format!(
                    "stage {stage} frozen to a single contributor \
                     (per-stage anonymity set below 2)"
                ));
            }
            return;
        }
        self.frozen = Some(contributors.clone());
        let msg = RingMsg::ComputeOver {
            round: self.round,
            contributors: contributors.iter().copied().collect(),
        };
        let me = self.cfg.group[self.cfg.position];
        for &peer in &self.cfg.group.clone() {
            if peer != me {
                ctx.send(peer, msg.clone());
            }
        }
        // Compute our own block's totals immediately (predecessor-stage
        // blocks may still be in flight; late arrivals re-trigger this).
        self.compute_own_totals();
        self.phase = SacPhase::Collecting;
        ctx.set_timer(
            self.cfg.collect_deadline,
            timer_tag(TIMER_COLLECT_DEADLINE, self.round),
        );
        self.maybe_finish();
    }

    /// Total of own-stage partition `p` over the frozen contributors of
    /// the predecessor stage; `None` while some contributor's block is
    /// missing locally. Zero contributors in the predecessor stage yield
    /// a zero vector — the leader still needs the total to close the sum.
    fn total_over_frozen(&self, p: usize) -> Option<WeightVector> {
        let frozen = self.frozen.as_ref()?;
        let t = self.plan.stage_of(self.cfg.position);
        let pred = self.plan.pred_stage(t);
        let mut acc = WeightVector::zeros(self.model.dim());
        for c in self.plan.members(pred) {
            if !frozen.contains(&c) {
                continue;
            }
            acc.add_assign(self.blocks.get(&c)?.get(&p)?);
        }
        Some(acc)
    }

    fn compute_own_totals(&mut self) {
        let t = self.plan.stage_of(self.cfg.position);
        let i = self.plan.local_index(self.cfg.position);
        for p in self.plan.assigned(t, i) {
            if self.totals.contains_key(&(t, p)) {
                continue;
            }
            if let Some(v) = self.total_over_frozen(p) {
                self.totals.insert((t, p), v);
            }
        }
    }

    fn maybe_finish(&mut self) {
        if self.phase != SacPhase::Collecting {
            return;
        }
        if self.totals.len() < self.plan.total_partitions() {
            return;
        }
        let Some(frozen) = self.frozen.as_ref() else {
            return;
        };
        // Iterate the (stage, partition) grid explicitly so a spurious
        // key can never substitute for a missing total.
        let mut avg = WeightVector::zeros(self.model.dim());
        for t in 0..self.plan.num_stages() {
            for p in 0..self.plan.stage_len(t) {
                let Some(v) = self.totals.get(&(t, p)) else {
                    return;
                };
                avg.add_assign(v);
            }
        }
        avg.scale(1.0 / frozen.len() as f64);
        self.contributors = frozen.iter().copied().collect();
        self.result = Some(avg);
        self.phase = SacPhase::Done;
    }

    /// Progress after a share block or `ComputeOver` arrives: recompute
    /// own totals, let the leader try to finish, let a follower send its
    /// primary total, and serve recovery requests that were waiting on
    /// missing blocks.
    fn progress(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        if self.frozen.is_none() {
            return;
        }
        self.compute_own_totals();
        if self.cfg.is_leader() {
            self.maybe_finish();
        } else if !self.sent_primary {
            let t = self.plan.stage_of(self.cfg.position);
            let i = self.plan.local_index(self.cfg.position);
            if !self.leader_holds(t, i) {
                if let Some(v) = self.totals.get(&(t, i)).cloned() {
                    self.sent_primary = true;
                    ctx.send(
                        self.cfg.group[self.cfg.leader_pos],
                        RingMsg::StageTotal {
                            round: self.round,
                            stage: t,
                            idx: i,
                            value: v,
                        },
                    );
                }
            }
        }
        let pending = std::mem::take(&mut self.pending_requests);
        for ((stage, idx), from) in pending {
            if let Some(v) = self.total_over_frozen(idx) {
                ctx.send(
                    from,
                    RingMsg::StageTotal {
                        round: self.round,
                        stage,
                        idx,
                        value: v,
                    },
                );
            } else {
                self.pending_requests.push(((stage, idx), from));
            }
        }
    }

    /// Whether the leader computes total `(t, i)` itself (it is in stage
    /// `t` and `i` is in its assigned block), making a primary send
    /// redundant.
    fn leader_holds(&self, t: usize, i: usize) -> bool {
        let lt = self.plan.stage_of(self.cfg.leader_pos);
        lt == t
            && self
                .plan
                .assigned(lt, self.plan.local_index(self.cfg.leader_pos))
                .contains(&i)
    }

    fn request_missing(&mut self, ctx: &mut dyn Transport<RingMsg>) {
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for t in 0..self.plan.num_stages() {
            for p in 0..self.plan.stage_len(t) {
                if !self.totals.contains_key(&(t, p)) {
                    missing.push((t, p));
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        for &(t, p) in &missing {
            if self.requested.contains(&(t, p)) {
                // Second deadline with the request still unanswered: the
                // whole in-stage replica neighborhood is gone. Under
                // supervision the round aborts and retries without the
                // unresponsive holders; without it this is terminal.
                if self.cfg.round_deadline.is_some() {
                    let mut suspects = BTreeSet::new();
                    for &(qt, qp) in &missing {
                        if self.requested.contains(&(qt, qp)) {
                            suspects.extend(self.plan.holders_of(qt, qp));
                        }
                    }
                    suspects.remove(&self.cfg.position);
                    self.supervise(
                        ctx,
                        &suspects,
                        &format!("stage total ({t},{p}) unrecoverable"),
                    );
                } else {
                    self.phase = SacPhase::Failed(format!("stage total ({t},{p}) unrecoverable"));
                }
                return;
            }
            self.requested.insert((t, p));
            // Ask every alternate in-stage holder; first response wins,
            // duplicates are idempotent inserts.
            for g in self.plan.holders_of(t, p) {
                if g != self.cfg.position && self.plan.local_index(g) != p {
                    ctx.send(
                        self.cfg.group[g],
                        RingMsg::StageTotalRequest {
                            round: self.round,
                            stage: t,
                            idx: p,
                        },
                    );
                }
            }
            self.recoveries += 1;
        }
        ctx.set_timer(
            self.cfg.collect_deadline,
            timer_tag(TIMER_COLLECT_DEADLINE, self.round),
        );
    }
}

impl Actor<RingMsg> for RingSacActor {
    fn on_message(&mut self, ctx: &mut dyn Transport<RingMsg>, from: NodeId, msg: RingMsg) {
        // Next-round stash and aborted-round discard: identical to the
        // pairwise engine (`Begin` / `Reconfigure` advance the round
        // themselves, so they are never stashed).
        let msg_round = match &msg {
            RingMsg::Begin { .. } | RingMsg::Reconfigure { .. } => None,
            RingMsg::StageShare { round, .. }
            | RingMsg::Shared { round, .. }
            | RingMsg::ComputeOver { round, .. }
            | RingMsg::StageTotal { round, .. }
            | RingMsg::StageTotalRequest { round, .. }
            | RingMsg::Abort { round, .. } => Some(*round),
        };
        if let Some(r) = msg_round {
            if r == self.round + 1 {
                if self.future.len() < 4 * self.cfg.group.len() {
                    self.future.push((from, msg));
                } else {
                    // Counted in `stash_evicted`, surfaced via NetStats.
                    self.stash_evicted += 1;
                }
                return;
            }
            if self.aborted == Some(r) && r == self.round {
                return;
            }
        }
        match msg {
            RingMsg::Begin { round } => {
                if self.cfg.is_leader() {
                    return; // only followers react to Begin
                }
                // Single-randomization rule, same as the pairwise engine.
                #[cfg(feature = "mutants")]
                let guard_disabled =
                    crate::mutants::active(crate::mutants::Mutant::BeginRerandomize);
                #[cfg(not(feature = "mutants"))]
                let guard_disabled = false;
                if !guard_disabled
                    && (round < self.round
                        || (round == self.round && self.phase != SacPhase::Idle)
                        || self.aborted == Some(round))
                {
                    return;
                }
                self.reset_for(round);
                self.distribute_shares(ctx);
                self.arm_round_deadline(ctx);
                self.phase = SacPhase::Sharing;
                self.replay_future(ctx);
            }
            RingMsg::StageShare {
                round,
                from_pos,
                parts,
            } => {
                if round != self.round {
                    return;
                }
                // Shape gate: sender position, partition indices, and
                // dimensions must fit the roster/plan/model before the
                // block can reach `add_assign` (which panics on
                // dimension mismatch).
                let dim = self.model.dim();
                if from_pos >= self.cfg.group.len()
                    || parts
                        .iter()
                        .any(|(p, v)| *p >= self.plan.total_partitions() || v.dim() != dim)
                {
                    return;
                }
                let entry = self.blocks.entry(from_pos).or_default();
                for (p, v) in parts {
                    entry.insert(p, v);
                }
                self.progress(ctx);
            }
            RingMsg::Shared { round, from_pos } => {
                if round != self.round || !self.cfg.is_leader() {
                    return;
                }
                if self.phase != SacPhase::Sharing {
                    return; // late announcement after freeze
                }
                if from_pos >= self.cfg.group.len() {
                    return;
                }
                self.announced.insert(from_pos);
                self.maybe_freeze(ctx);
            }
            RingMsg::ComputeOver {
                round,
                contributors,
            } => {
                if round != self.round || self.cfg.is_leader() {
                    return;
                }
                let _ = from; // leader is the sender of ComputeOver
                let set: BTreeSet<usize> = contributors.into_iter().collect();
                if self
                    .plan
                    .lone_contributor_stage(|p| set.contains(&p))
                    .is_some()
                {
                    // A correct leader never freezes a set that isolates
                    // one contributor in a stage (see freeze_and_collect);
                    // totalling it would hand a curious leader that peer's
                    // model. Drop the message — the round ends via Abort
                    // or this follower's round deadline.
                    return;
                }
                self.frozen = Some(set);
                self.progress(ctx);
            }
            RingMsg::StageTotal {
                round,
                stage,
                idx,
                value,
            } => {
                if round != self.round || !self.cfg.is_leader() {
                    return;
                }
                if stage >= self.plan.num_stages() || idx >= self.plan.stage_len(stage) {
                    return; // outside the (stage, partition) grid
                }
                if value.dim() != self.model.dim() {
                    return; // wrong shape must not enter the average
                }
                self.totals.entry((stage, idx)).or_insert(value);
                self.maybe_finish();
            }
            RingMsg::StageTotalRequest { round, stage, idx } => {
                if round != self.round {
                    return;
                }
                if stage != self.plan.stage_of(self.cfg.position)
                    || idx >= self.plan.stage_len(stage)
                {
                    // Not our stage, or outside the grid: never servable,
                    // so don't let it occupy a pending-request slot.
                    return;
                }
                if let Some(v) = self.total_over_frozen(idx) {
                    ctx.send(
                        from,
                        RingMsg::StageTotal {
                            round: self.round,
                            stage,
                            idx,
                            value: v,
                        },
                    );
                } else {
                    // Can't serve yet (missing predecessor blocks, or the
                    // contributor set is not frozen here yet); answer when
                    // the missing pieces arrive.
                    self.pending_requests.push(((stage, idx), from));
                }
            }
            RingMsg::Abort { round, reason } => {
                if round != self.round || self.cfg.is_leader() {
                    return;
                }
                let _ = reason;
                self.reset_for(round);
                self.aborted = Some(round);
                self.aborts += 1;
            }
            RingMsg::Reconfigure { round, group, k } => {
                if self.cfg.is_leader() {
                    return;
                }
                // Same freshness rules as Begin.
                if round < self.round
                    || (round == self.round && self.phase != SacPhase::Idle)
                    || self.aborted == Some(round)
                {
                    return;
                }
                if k < 1 || k > group.len() {
                    return;
                }
                let me = self.me();
                if !group.contains(&me) {
                    return; // evicted from the retry roster
                }
                if !group.contains(&from) {
                    return;
                }
                self.reconfigure(group, from, k);
                self.reset_for(round);
                self.distribute_shares(ctx);
                self.arm_round_deadline(ctx);
                self.phase = SacPhase::Sharing;
                self.replay_future(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport<RingMsg>, tag: u64) {
        let (base, round) = (tag & 0xff, tag >> 8);
        if round != self.round {
            return; // armed for a round that has since ended or aborted
        }
        match base {
            TIMER_SHARE_DEADLINE if self.cfg.is_leader() && self.phase == SacPhase::Sharing => {
                self.freeze_and_collect(ctx);
            }
            TIMER_COLLECT_DEADLINE
                if self.cfg.is_leader() && self.phase == SacPhase::Collecting =>
            {
                self.request_missing(ctx);
            }
            TIMER_ROUND_DEADLINE => {
                if self.cfg.is_leader() {
                    if matches!(self.phase, SacPhase::Sharing | SacPhase::Collecting) {
                        let suspects: BTreeSet<usize> = (0..self.cfg.group.len())
                            .filter(|j| !self.announced.contains(j))
                            .collect();
                        self.supervise(ctx, &suspects, "round deadline expired");
                    }
                } else if self.phase == SacPhase::Sharing {
                    if self.frozen.is_none() {
                        self.abandoned += 1;
                    }
                    self.reset_for(round);
                    self.aborted = Some(round);
                }
            }
            _ => {}
        }
    }

    fn stash_evicted(&self) -> u64 {
        self.stash_evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divide::ShareScheme;
    use p2pfl_simnet::{Sim, SimDuration, SimTime, TimerId};

    fn config(ids: &[NodeId], i: usize, k: usize, seed: u64) -> SacConfig {
        SacConfig {
            group: ids.to_vec(),
            position: i,
            leader_pos: 0,
            k,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Ring,
            share_deadline: SimDuration::from_millis(100),
            collect_deadline: SimDuration::from_millis(100),
            round_deadline: None,
            seed,
        }
    }

    fn build(
        n: usize,
        k: usize,
        dim: usize,
        seed: u64,
    ) -> (Sim<RingMsg>, Vec<NodeId>, Vec<WeightVector>) {
        let mut sim = Sim::new(seed);
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed + 999);
        let models: Vec<WeightVector> = (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect();
        for i in 0..n {
            let cfg = config(&ids, i, k, seed + i as u64);
            let actual = sim.add_node(RingSacActor::new(cfg, models[i].clone()));
            assert_eq!(actual, ids[i]);
        }
        (sim, ids, models)
    }

    fn build_supervised(
        n: usize,
        k: usize,
        dim: usize,
        seed: u64,
        round_deadline: SimDuration,
    ) -> (Sim<RingMsg>, Vec<NodeId>, Vec<WeightVector>) {
        let (mut sim, ids, models) = {
            let mut sim = Sim::new(seed);
            let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
            let mut rng = StdRng::seed_from_u64(seed + 999);
            let models: Vec<WeightVector> = (0..n)
                .map(|_| WeightVector::random(dim, 1.0, &mut rng))
                .collect();
            for i in 0..n {
                let mut cfg = config(&ids, i, k, seed + i as u64);
                cfg.round_deadline = Some(round_deadline);
                let actual = sim.add_node(RingSacActor::new(cfg, models[i].clone()));
                assert_eq!(actual, ids[i]);
            }
            (sim, ids, models)
        };
        sim.run_until_quiet(100);
        (sim, ids, models)
    }

    fn start(sim: &mut Sim<RingMsg>, leader: NodeId, round: u64) {
        sim.run_until_quiet(100); // flush on_start events
        sim.exec::<RingSacActor, _, _>(leader, |a, ctx| a.start_round(ctx, round));
    }

    fn plain_mean(models: &[WeightVector], idx: &[usize]) -> WeightVector {
        WeightVector::mean(idx.iter().map(|&i| &models[i]))
    }

    #[test]
    fn rekey_reseeds_and_the_round_still_averages() {
        let (mut sim, ids, models) = build(5, 2, 8, 61);
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.actor::<RingSacActor>(ids[0]).phase, SacPhase::Done);
        for (i, &id) in ids.iter().enumerate() {
            let group = ids.clone();
            let adopted =
                sim.actor_mut::<RingSacActor>(id)
                    .rekey(group, ids[0], 2, 0x0005_1a9e + i as u64);
            assert!(adopted);
        }
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 2));
        sim.run_until(SimTime::from_secs(4));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4])) < 1e-9);
    }

    #[test]
    fn rekey_history_stays_fresh_and_rejects_bad_rosters() {
        let (mut sim, ids, _) = build(4, 2, 4, 62);
        sim.run_until_quiet(100);
        let a = sim.actor_mut::<RingSacActor>(ids[1]);
        assert!(a.rekey(ids.clone(), ids[0], 2, 7));
        assert!(a.rekey(ids.clone(), ids[0], 2, 8));
        let hist = a.mask_keys().to_vec();
        assert_eq!(hist.len(), 3);
        let mut dedup = hist.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hist.len(), "mask domain reused: {hist:?}");
        // Invalid rosters leave the stream untouched.
        assert!(!a.rekey(vec![ids[0], ids[2]], ids[0], 2, 9));
        assert_eq!(a.mask_keys().len(), 3);
    }

    #[test]
    fn happy_path_completes_with_plain_mean_across_sizes() {
        // Covers L = 1 (all-to-all degenerate), L = 2 and L = 4 rings.
        for (n, k) in [(3usize, 2usize), (4, 2), (5, 3), (6, 2), (8, 4), (16, 8)] {
            let (mut sim, ids, models) = build(n, k, 16, 42 + n as u64);
            start(&mut sim, ids[0], 1);
            sim.run_until(SimTime::from_secs(2));
            let leader = sim.actor::<RingSacActor>(ids[0]);
            assert_eq!(leader.phase, SacPhase::Done, "n={n}: {:?}", leader.phase);
            assert_eq!(leader.contributors, (0..n).collect::<Vec<_>>());
            assert_eq!(leader.recoveries, 0, "n={n}");
            let all: Vec<usize> = (0..n).collect();
            let avg = leader.result.as_ref().unwrap();
            assert!(
                avg.linf_distance(&plain_mean(&models, &all)) < 1e-9,
                "n={n}: error {}",
                avg.linf_distance(&plain_mean(&models, &all))
            );
        }
    }

    #[test]
    fn after_share_crash_is_recovered() {
        // n = 6 -> stages [3, 3], k = 2 -> k_m = 2 (each partition held
        // by two stage members). Peer 4 (stage 1) crashes after sharing:
        // its primary total is recovered from an in-stage replica holder.
        let (mut sim, ids, models) = build(6, 2, 8, 7);
        start(&mut sim, ids[0], 1);
        sim.schedule_crash(ids[4], SimTime::from_millis(40));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 3, 4, 5]);
        assert!(leader.recoveries >= 1);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4, 5])) < 1e-9);
    }

    #[test]
    fn before_share_crash_is_excluded() {
        let (mut sim, ids, models) = build(6, 2, 8, 11);
        sim.run_until_quiet(100);
        sim.schedule_crash(ids[3], sim.now() + SimDuration::from_millis(1));
        sim.run_until_quiet(100);
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 4, 5]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 4, 5])) < 1e-9);
    }

    #[test]
    fn unrecoverable_when_whole_stage_dies() {
        // k = n means k_m = m: no in-stage replication, so one post-share
        // crash outside the leader's block is fatal without supervision.
        let (mut sim, ids, _) = build(4, 4, 4, 13);
        start(&mut sim, ids[0], 1);
        sim.schedule_crash(ids[3], SimTime::from_millis(40));
        sim.run_until(SimTime::from_secs(3));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert!(
            matches!(leader.phase, SacPhase::Failed(_)),
            "phase: {:?}",
            leader.phase
        );
    }

    #[test]
    fn supervised_unrecoverable_degrades_and_completes() {
        // Same dead end as above, but supervised: the leader aborts,
        // evicts the unresponsive holder, and retries degraded.
        let (mut sim, ids, models) = build_supervised(4, 4, 4, 13, SimDuration::from_millis(600));
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.schedule_crash(ids[3], sim.now() + SimDuration::from_millis(40));
        sim.run_until(SimTime::from_secs(5));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.aborts, 1);
        assert_eq!(leader.round, 2, "retry must use a fresh round number");
        assert_eq!(leader.sac_config().group, vec![ids[0], ids[1], ids[2]]);
        assert_eq!(leader.sac_config().k, 3, "k' = min(k, n')");
        assert_eq!(leader.contributors, vec![0, 1, 2]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2])) < 1e-9);
    }

    #[test]
    fn supervised_refuses_below_two_members() {
        let (mut sim, ids, _) = build_supervised(3, 3, 4, 17, SimDuration::from_millis(600));
        let t = sim.now() + SimDuration::from_millis(1);
        sim.schedule_crash(ids[1], t);
        sim.schedule_crash(ids[2], t);
        sim.run_until_quiet(100);
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(5));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert!(
            matches!(&leader.phase, SacPhase::Failed(r) if r.contains("no contributors")
                || r.contains("below 2 members")),
            "phase: {:?}",
            leader.phase
        );
    }

    #[test]
    fn singleton_frozen_stage_fails_unsupervised() {
        // n = 4, k = 2: stages [2, 2]. Peer 3 crashes before the round,
        // so the frozen set {0, 1, 2} leaves stage 1 with only peer 2 —
        // its stage totals would hand the leader peer 2's individual
        // model. The leader must refuse even though k is satisfied.
        let (mut sim, ids, _) = build(4, 2, 8, 23);
        sim.run_until_quiet(100);
        sim.schedule_crash(ids[3], sim.now() + SimDuration::from_millis(1));
        sim.run_until_quiet(100);
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert!(
            matches!(&leader.phase, SacPhase::Failed(r) if r.contains("single contributor")),
            "phase: {:?}",
            leader.phase
        );
        assert!(leader.result.is_none());
    }

    #[test]
    fn supervised_singleton_frozen_stage_degrades_and_completes() {
        // Same isolation as above, but supervised: the leader aborts and
        // retries on the contributor roster; the re-derived 3-member plan
        // is a single stage, so the per-stage anonymity set is the whole
        // contributor set again and the round completes.
        let (mut sim, ids, models) = build_supervised(4, 2, 8, 23, SimDuration::from_millis(600));
        sim.schedule_crash(ids[3], sim.now() + SimDuration::from_millis(1));
        sim.run_until_quiet(100);
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(5));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.aborts, 1);
        assert_eq!(leader.sac_config().group, vec![ids[0], ids[1], ids[2]]);
        assert_eq!(leader.plan().num_stages(), 1);
        assert_eq!(leader.contributors, vec![0, 1, 2]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2])) < 1e-9);
    }

    #[test]
    fn follower_drops_compute_over_isolating_a_stage() {
        // Defense in depth against a curious leader: a follower refuses
        // to total a contributor set that isolates one peer in a stage.
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId(i as u32)).collect();
        let mut actor =
            RingSacActor::new(config(&ids, 1, 2, 29), WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[1],
            sent: Vec::new(),
        };
        actor.on_message(&mut net, ids[0], RingMsg::Begin { round: 1 });
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::ComputeOver {
                round: 1,
                contributors: vec![0, 1, 2], // stage 1 = {2, 3} isolated to {2}
            },
        );
        assert!(actor.frozen_set().is_none(), "isolating freeze accepted");
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::ComputeOver {
                round: 1,
                contributors: vec![0, 1, 2, 3],
            },
        );
        assert!(actor.frozen_set().is_some(), "balanced freeze rejected");
    }

    #[test]
    fn share_traffic_is_log_fan_out() {
        // n = 8 -> stages [4, 4], k = 4: m = 4, n - k = 4 gives the raw
        // threshold m - (n - k) = 0, floored to the privacy minimum
        // k_m = 2 — each receiver gets 3 of the 4 partitions, never a
        // full share set. The point of the assertion is the message
        // count: 8 senders x 4 receivers = 32 StageShares instead of the
        // pairwise n(n-1) = 56.
        let (mut sim, ids, models) = build(8, 4, 64, 33);
        let wire = models[0].wire_bytes();
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        let m = sim.metrics();
        let share = m.kind("ring.share");
        assert_eq!(share.msgs, 32);
        // Each StageShare carries min(m-1, n-k+1) = 3 partitions (+8B hdr).
        assert_eq!(share.bytes, 32 * (3 * wire + 8));
        // Announcements: n - 1 small control messages.
        assert_eq!(m.kind("ring.shared").msgs, 7);
        // Primary totals: all (stage, idx) pairs the leader does not
        // compute itself. Leader pos 0 (stage 0) holds its assigned block
        // {0, 1, 2} of stage 0, leaving stage 0's partition 3 and stage
        // 1's 4 primaries on the wire.
        assert_eq!(m.kind("ring.total").msgs, 5);
    }

    /// Transport stub recording sends — same adversarial-order harness as
    /// the pairwise engine tests.
    struct StubNet {
        id: NodeId,
        sent: Vec<(NodeId, RingMsg)>,
    }

    impl Transport<RingMsg> for StubNet {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn send(&mut self, to: NodeId, msg: RingMsg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _delay: SimDuration, _tag: u64) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _id: TimerId) {}
    }

    #[test]
    fn next_round_share_arriving_before_begin_is_replayed() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId(i as u32)).collect();
        // Position 2 is in stage 1 of the [2, 2] layout; its predecessor
        // stage is stage 0, so a share from position 1 (stage 0) is
        // legitimate traffic.
        let mut actor =
            RingSacActor::new(config(&ids, 2, 2, 77), WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[2],
            sent: Vec::new(),
        };
        let early = RingMsg::StageShare {
            round: 1,
            from_pos: 1,
            parts: vec![(0, WeightVector::new(vec![0.5, 0.5]))],
        };
        actor.on_message(&mut net, ids[1], early);
        assert_eq!(actor.round, 0, "early block must not advance the round");
        assert!(actor.blocks.is_empty());
        actor.on_message(&mut net, ids[0], RingMsg::Begin { round: 1 });
        assert_eq!(actor.round, 1);
        assert_eq!(actor.phase, SacPhase::Sharing);
        assert!(
            actor.blocks.contains_key(&1),
            "stashed block must be replayed after Begin"
        );

        // Round+2 is outside the stash window; a flood stays bounded.
        actor.on_message(
            &mut net,
            ids[1],
            RingMsg::StageTotalRequest {
                round: 3,
                stage: 1,
                idx: 0,
            },
        );
        assert!(actor.future.is_empty(), "round+2 must not be stashed");
        for _ in 0..100 {
            actor.on_message(
                &mut net,
                ids[1],
                RingMsg::StageTotalRequest {
                    round: 2,
                    stage: 1,
                    idx: 0,
                },
            );
        }
        assert_eq!(actor.future.len(), 16, "stash must stay at the 4n bound");
        assert_eq!(actor.stash_evicted, 84);
    }

    #[test]
    fn abort_after_late_share_is_idempotent() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId(i as u32)).collect();
        let mut cfg = config(&ids, 2, 2, 99);
        cfg.round_deadline = Some(SimDuration::from_secs(10));
        let mut actor = RingSacActor::new(cfg, WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[2],
            sent: Vec::new(),
        };
        actor.on_message(&mut net, ids[0], RingMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Sharing);
        let block = RingMsg::StageShare {
            round: 1,
            from_pos: 1,
            parts: vec![(0, WeightVector::new(vec![0.5, 0.5]))],
        };
        actor.on_message(&mut net, ids[1], block.clone());
        assert!(actor.blocks.contains_key(&1));
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::Abort {
                round: 1,
                reason: "test".into(),
            },
        );
        assert_eq!(actor.phase, SacPhase::Idle);
        assert!(actor.blocks.is_empty(), "abort must drop all mask material");
        assert_eq!(actor.aborts, 1);

        // Late share, duplicate abort, re-delivered Begin: all no-ops.
        actor.on_message(&mut net, ids[1], block);
        assert!(actor.blocks.is_empty(), "late block after abort ignored");
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::Abort {
                round: 1,
                reason: "dup".into(),
            },
        );
        assert_eq!(actor.aborts, 1, "duplicate abort must not double-count");
        let sends_before = net.sent.len();
        actor.on_message(&mut net, ids[0], RingMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Idle);
        assert_eq!(net.sent.len(), sends_before, "no re-randomized shares");

        // The retry Reconfigure restarts cleanly under the new roster and
        // a freshly derived plan.
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::Reconfigure {
                round: 2,
                group: vec![ids[0], ids[2], ids[3]],
                k: 2,
            },
        );
        assert_eq!(actor.round, 2);
        assert_eq!(actor.phase, SacPhase::Sharing);
        assert_eq!(actor.sac_config().position, 1);
        assert_eq!(actor.plan().n(), 3);
        assert!(
            net.sent.len() > sends_before,
            "retry must distribute fresh shares"
        );
    }

    #[test]
    fn reconfigure_excluding_this_peer_is_ignored() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId(i as u32)).collect();
        let mut actor = RingSacActor::new(config(&ids, 1, 2, 5), WeightVector::new(vec![1.0]));
        let mut net = StubNet {
            id: ids[1],
            sent: Vec::new(),
        };
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::Reconfigure {
                round: 2,
                group: vec![ids[0], ids[2]],
                k: 2,
            },
        );
        assert_eq!(actor.round, 0, "evicted peer sits the round out");
        assert_eq!(actor.phase, SacPhase::Idle);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn follower_round_deadline_abandons_unclosed_round() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId(i as u32)).collect();
        let mut cfg = config(&ids, 1, 2, 6);
        cfg.round_deadline = Some(SimDuration::from_secs(2));
        let mut actor = RingSacActor::new(cfg, WeightVector::new(vec![1.0]));
        let mut net = StubNet {
            id: ids[1],
            sent: Vec::new(),
        };
        actor.on_message(&mut net, ids[0], RingMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Sharing);
        actor.on_timer(&mut net, timer_tag(TIMER_ROUND_DEADLINE, 7));
        assert_eq!(actor.phase, SacPhase::Sharing, "foreign-round deadline");
        actor.on_timer(&mut net, timer_tag(TIMER_ROUND_DEADLINE, 1));
        assert_eq!(actor.phase, SacPhase::Idle);
        assert_eq!(actor.abandoned, 1);
        assert!(actor.blocks.is_empty());
        // A late recovery request for the retired round is not served.
        let sends = net.sent.len();
        actor.on_message(
            &mut net,
            ids[0],
            RingMsg::StageTotalRequest {
                round: 1,
                stage: 0,
                idx: 1,
            },
        );
        assert_eq!(net.sent.len(), sends);
        assert!(actor.pending_requests.is_empty());
    }

    #[test]
    fn bogus_stage_total_cannot_complete_the_round() {
        // A total outside the (stage, partition) grid must neither count
        // toward the n-totals finish condition nor panic the averaging.
        let (mut sim, ids, _) = build(6, 2, 4, 51);
        start(&mut sim, ids[0], 1);
        sim.inject(
            ids[1],
            ids[0],
            RingMsg::StageTotal {
                round: 1,
                stage: 9,
                idx: 9,
                value: WeightVector::zeros(4),
            },
            SimDuration::from_millis(1),
        );
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        assert!(!leader.held_totals().contains_key(&(9, 9)));
    }

    #[test]
    fn second_round_reuses_the_engine() {
        let (mut sim, ids, models) = build(6, 2, 8, 61);
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.actor::<RingSacActor>(ids[0]).phase, SacPhase::Done);
        sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 2));
        sim.run_until(SimTime::from_secs(4));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        assert_eq!(leader.round, 2);
        let all: Vec<usize> = (0..6).collect();
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &all)) < 1e-9);
    }
}
