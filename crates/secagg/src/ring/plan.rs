//! Stage layout for the Ring-SAC engine.
//!
//! The `n` subgroup positions are chunked into `L ≈ n / ⌈log₂ n⌉`
//! consecutive *stages* of `g ≈ ⌈log₂ n⌉` members each, arranged in a
//! ring: every peer splits its masked model into additive shares and
//! sends them only to the members of its *successor* stage, never to the
//! whole subgroup. Stage-`t` members then own the per-partition sums over
//! everything stage `t-1` contributed, so the leader can reconstruct the
//! global sum from `n` stage totals instead of `n` full share matrices —
//! Turbo-Aggregate's circular multi-group layout (arXiv 2002.04156)
//! grafted onto the paper's replicated k-out-of-n share blocks.
//!
//! Within each receiving stage of size `m` the shares are replicated with
//! the stage-local threshold `k_m = min(m, max(2, m - (n - k)))`, i.e.
//! each partition has `min(m - 1, n - k + 1)` holders (for `m >= 2`). The
//! floor at 2 is a *privacy* floor, not a dropout one: with `k_m = 1`
//! every receiver would hold all `m` additive shares of each predecessor
//! contributor and could sum them back into that peer's individual model.
//! Capping the per-receiver block at `m - 1` partitions keeps every
//! single holder's view information-theoretically independent of any one
//! model, at the cost of shrinking the in-stage dropout budget from
//! `min(m - 1, n - k)` to `min(m - 2, n - k)` crashes per stage.

use crate::replicated::{assigned_partitions, holders};

/// The ring/stage arrangement of one subgroup, derived from `(n, k)`.
///
/// Stages are consecutive position ranges (`positions 0..n` chunked in
/// order), so the layout is a pure function of the roster length — every
/// member derives the identical plan with no extra coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingPlan {
    n: usize,
    k: usize,
    /// `(start position, length)` per stage, covering `0..n` exactly.
    stages: Vec<(usize, usize)>,
}

impl RingPlan {
    /// Derives the stage layout for `n` members with global threshold `k`.
    ///
    /// Panics unless `n >= 1` and `1 <= k <= n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "empty subgroup has no ring layout");
        assert!(k >= 1 && k <= n, "invalid threshold");
        // Target stage size g = ⌈log₂ n⌉, floored at 2 so no stage is a
        // singleton (a stage of one would hand the leader a per-peer sum,
        // collapsing the anonymity set to a single model).
        let mut g = ceil_log2(n).max(2);
        if g > n {
            g = n; // n = 1: a single one-member "stage"
        }
        let num = (n / g).max(1);
        let base = n / num;
        let extra = n % num;
        let mut stages = Vec::with_capacity(num);
        let mut start = 0;
        for t in 0..num {
            let len = base + usize::from(t < extra);
            stages.push((start, len));
            start += len;
        }
        debug_assert_eq!(start, n);
        RingPlan { n, k, stages }
    }

    /// Number of stages `L` (1 for tiny groups, where the ring degenerates
    /// to the all-to-all pairwise layout).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Subgroup size this plan was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The stage containing global position `pos`.
    pub fn stage_of(&self, pos: usize) -> usize {
        assert!(pos < self.n, "position out of range");
        self.stages
            .iter()
            .position(|&(s, l)| pos >= s && pos < s + l)
            .expect("stages cover 0..n")
    }

    /// Number of members in stage `t`.
    pub fn stage_len(&self, t: usize) -> usize {
        self.stages[t].1
    }

    /// Global positions of stage `t`, in order.
    pub fn members(&self, t: usize) -> std::ops::Range<usize> {
        let (s, l) = self.stages[t];
        s..s + l
    }

    /// Global position of the stage-`t` member with stage-local index `i`.
    pub fn global_pos(&self, t: usize, i: usize) -> usize {
        assert!(i < self.stages[t].1, "stage-local index out of range");
        self.stages[t].0 + i
    }

    /// Stage-local index of global position `pos` within its own stage.
    pub fn local_index(&self, pos: usize) -> usize {
        pos - self.stages[self.stage_of(pos)].0
    }

    /// The stage that receives stage `t`'s shares.
    pub fn succ_stage(&self, t: usize) -> usize {
        (t + 1) % self.stages.len()
    }

    /// The stage whose shares stage `t` receives.
    pub fn pred_stage(&self, t: usize) -> usize {
        (t + self.stages.len() - 1) % self.stages.len()
    }

    /// Stage-local reconstruction threshold
    /// `k_m = min(m, max(2, m - (n - k)))` for the stage of size
    /// `m = stage_len(t)`: each partition gets `min(m - 1, n - k + 1)`
    /// replica holders (for `m >= 2`).
    ///
    /// The floor at 2 is load-bearing for privacy: a receiver's block has
    /// `m - k_m + 1` partitions, so `k_m >= 2` guarantees every receiver
    /// misses at least one additive share of each predecessor contributor
    /// and can never reassemble an individual model on its own. The price
    /// is in-stage dropout tolerance: a stage survives `m - k_m =
    /// min(m - 2, n - k)` of its members crashing instead of the pairwise
    /// engine's full `n - k`. `k_m = 1` only for a one-member subgroup
    /// (`m = 1`), where there is nothing to hide from anyone.
    pub fn stage_k(&self, t: usize) -> usize {
        let m = self.stage_len(t);
        m.saturating_sub(self.n - self.k).max(2).min(m)
    }

    /// How many additive shares the peer at `pos` splits its model into:
    /// the size of its successor stage.
    pub fn parts_of(&self, pos: usize) -> usize {
        self.stage_len(self.succ_stage(self.stage_of(pos)))
    }

    /// Stage-local partition indices assigned to the stage-`t` member with
    /// local index `i` (the block of its predecessor stage's shares it
    /// holds and totals).
    pub fn assigned(&self, t: usize, i: usize) -> Vec<usize> {
        assigned_partitions(self.stage_len(t), self.stage_k(t), i)
    }

    /// Global positions of every stage-`t` member holding partition `p`.
    pub fn holders_of(&self, t: usize, p: usize) -> Vec<usize> {
        holders(self.stage_len(t), self.stage_k(t), p)
            .into_iter()
            .map(|h| self.global_pos(t, h))
            .collect()
    }

    /// Total number of `(stage, partition)` totals the leader collects:
    /// always exactly `n`.
    pub fn total_partitions(&self) -> usize {
        self.n
    }

    /// A stage whose contributor count (per `is_contributor`, over global
    /// positions) is exactly 1, if the plan has two or more stages.
    ///
    /// Such a stage's totals sum to the lone contributor's individual
    /// model, so the leader must refuse to freeze (and followers must
    /// refuse to total) a contributor set that isolates one. Single-stage
    /// plans return `None`: there the stage sum *is* the whole round's
    /// aggregate, exactly the disclosure the pairwise engine makes.
    /// Stages with zero contributors are fine — an empty sum reveals
    /// nothing.
    pub fn lone_contributor_stage(
        &self,
        mut is_contributor: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        if self.num_stages() < 2 {
            return None;
        }
        (0..self.num_stages())
            .find(|&t| self.members(t).filter(|&p| is_contributor(p)).count() == 1)
    }
}

/// `⌈log₂ n⌉` for `n >= 1` (0 for `n = 1`).
fn ceil_log2(n: usize) -> usize {
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_float() {
        for n in 1..=1024usize {
            assert_eq!(ceil_log2(n), (n as f64).log2().ceil() as usize, "n={n}");
        }
    }

    #[test]
    fn stages_partition_positions_exactly() {
        for n in 1..=64 {
            let plan = RingPlan::new(n, n.div_ceil(2));
            let mut covered = vec![false; n];
            for t in 0..plan.num_stages() {
                for pos in plan.members(t) {
                    assert!(!covered[pos], "position {pos} in two stages");
                    covered[pos] = true;
                    assert_eq!(plan.stage_of(pos), t);
                    assert_eq!(plan.global_pos(t, plan.local_index(pos)), pos);
                }
            }
            assert!(covered.into_iter().all(|c| c), "n={n} not fully covered");
            assert_eq!(plan.total_partitions(), n);
        }
    }

    #[test]
    fn no_singleton_stages_above_one_member() {
        // A stage of one would expose a single peer's masked sum to the
        // leader; the layout floors stage sizes at 2 whenever n >= 2.
        for n in 2..=128 {
            let plan = RingPlan::new(n, 1);
            for t in 0..plan.num_stages() {
                assert!(plan.stage_len(t) >= 2, "n={n} stage {t} is a singleton");
            }
        }
    }

    #[test]
    fn stage_sizes_are_logarithmic() {
        // Stage size tracks ⌈log₂ n⌉, so per-peer fan-out is O(log n):
        // that is the entire complexity claim of the ring engine.
        for n in 6..=256 {
            let plan = RingPlan::new(n, 2);
            let g = ceil_log2(n);
            for t in 0..plan.num_stages() {
                assert!(
                    plan.stage_len(t) <= 2 * g,
                    "n={n} stage {t} len {} exceeds 2·⌈log₂ n⌉ = {}",
                    plan.stage_len(t),
                    2 * g
                );
            }
        }
    }

    #[test]
    fn known_layouts() {
        assert_eq!(RingPlan::new(3, 2).stages, vec![(0, 3)]);
        assert_eq!(RingPlan::new(4, 2).stages, vec![(0, 2), (2, 2)]);
        assert_eq!(RingPlan::new(5, 3).stages, vec![(0, 5)]);
        assert_eq!(RingPlan::new(6, 2).stages, vec![(0, 3), (3, 3)]);
        assert_eq!(RingPlan::new(8, 4).stages, vec![(0, 4), (4, 4)]);
        assert_eq!(
            RingPlan::new(16, 8).stages,
            vec![(0, 4), (4, 4), (8, 4), (12, 4)]
        );
    }

    #[test]
    fn ring_orientation_is_a_bijection() {
        let plan = RingPlan::new(16, 8);
        for t in 0..plan.num_stages() {
            assert_eq!(plan.pred_stage(plan.succ_stage(t)), t);
            assert_eq!(plan.succ_stage(plan.pred_stage(t)), t);
        }
    }

    #[test]
    fn stage_threshold_trades_dropout_budget_for_privacy() {
        for n in 2..=64 {
            for k in 1..=n {
                let plan = RingPlan::new(n, k);
                for t in 0..plan.num_stages() {
                    let m = plan.stage_len(t);
                    let k_m = plan.stage_k(t);
                    assert!((2..=m).contains(&k_m), "n={n} k={k} stage {t}");
                    // Replication factor min(m-1, n-k+1): the stage
                    // survives min(m-2, n-k) of its members crashing, and
                    // no receiver's block is a full share set.
                    assert_eq!(m - k_m + 1, (m - 1).min(n - k + 1));
                }
            }
        }
    }

    #[test]
    fn no_receiver_block_is_a_full_share_set() {
        // The high-severity privacy invariant: a stage member must never
        // be assigned all m partitions of its predecessor contributors,
        // or it could sum them back into an individual model. Holds for
        // every (n, k), not just the advertised operating points.
        for n in 2..=64 {
            for k in 1..=n {
                let plan = RingPlan::new(n, k);
                for t in 0..plan.num_stages() {
                    let m = plan.stage_len(t);
                    for i in 0..m {
                        assert!(
                            plan.assigned(t, i).len() < m,
                            "n={n} k={k}: stage {t} member {i} holds all {m} shares"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lone_contributor_stage_detection() {
        // n = 6, k = 2: stages [3, 3].
        let plan = RingPlan::new(6, 2);
        let all = |_p: usize| true;
        assert_eq!(plan.lone_contributor_stage(all), None);
        let only_five = |p: usize| p < 3 || p == 5;
        assert_eq!(plan.lone_contributor_stage(only_five), Some(1));
        let stage1_empty = |p: usize| p < 3;
        assert_eq!(plan.lone_contributor_stage(stage1_empty), None);
        // Single-stage plans never isolate: the stage sum is the round
        // aggregate, same disclosure as the pairwise engine.
        let single = RingPlan::new(5, 3);
        assert_eq!(single.lone_contributor_stage(|p| p == 0), None);
    }

    #[test]
    fn holders_are_stage_members_holding_the_partition() {
        let plan = RingPlan::new(16, 8);
        for t in 0..plan.num_stages() {
            for p in 0..plan.stage_len(t) {
                for g in plan.holders_of(t, p) {
                    assert_eq!(plan.stage_of(g), t);
                    assert!(plan.assigned(t, plan.local_index(g)).contains(&p));
                }
            }
        }
    }
}
