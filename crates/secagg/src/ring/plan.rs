//! Stage layout for the Ring-SAC engine.
//!
//! The `n` subgroup positions are chunked into `L ≈ n / ⌈log₂ n⌉`
//! consecutive *stages* of `g ≈ ⌈log₂ n⌉` members each, arranged in a
//! ring: every peer splits its masked model into additive shares and
//! sends them only to the members of its *successor* stage, never to the
//! whole subgroup. Stage-`t` members then own the per-partition sums over
//! everything stage `t-1` contributed, so the leader can reconstruct the
//! global sum from `n` stage totals instead of `n` full share matrices —
//! Turbo-Aggregate's circular multi-group layout (arXiv 2002.04156)
//! grafted onto the paper's replicated k-out-of-n share blocks.
//!
//! Within each receiving stage of size `m` the shares are replicated with
//! the stage-local threshold `k_m = max(1, m - (n - k))`, i.e. each
//! partition has `min(m, n-k+1)` holders: the global dropout budget of
//! `n - k` crashes is honored even when all of them land in one stage
//! (capped at `m - 1`, the most a stage can lose and still reconstruct).

use crate::replicated::{assigned_partitions, holders};

/// The ring/stage arrangement of one subgroup, derived from `(n, k)`.
///
/// Stages are consecutive position ranges (`positions 0..n` chunked in
/// order), so the layout is a pure function of the roster length — every
/// member derives the identical plan with no extra coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingPlan {
    n: usize,
    k: usize,
    /// `(start position, length)` per stage, covering `0..n` exactly.
    stages: Vec<(usize, usize)>,
}

impl RingPlan {
    /// Derives the stage layout for `n` members with global threshold `k`.
    ///
    /// Panics unless `n >= 1` and `1 <= k <= n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "empty subgroup has no ring layout");
        assert!(k >= 1 && k <= n, "invalid threshold");
        // Target stage size g = ⌈log₂ n⌉, floored at 2 so no stage is a
        // singleton (a stage of one would hand the leader a per-peer sum,
        // collapsing the anonymity set to a single model).
        let mut g = ceil_log2(n).max(2);
        if g > n {
            g = n; // n = 1: a single one-member "stage"
        }
        let num = (n / g).max(1);
        let base = n / num;
        let extra = n % num;
        let mut stages = Vec::with_capacity(num);
        let mut start = 0;
        for t in 0..num {
            let len = base + usize::from(t < extra);
            stages.push((start, len));
            start += len;
        }
        debug_assert_eq!(start, n);
        RingPlan { n, k, stages }
    }

    /// Number of stages `L` (1 for tiny groups, where the ring degenerates
    /// to the all-to-all pairwise layout).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Subgroup size this plan was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The stage containing global position `pos`.
    pub fn stage_of(&self, pos: usize) -> usize {
        assert!(pos < self.n, "position out of range");
        self.stages
            .iter()
            .position(|&(s, l)| pos >= s && pos < s + l)
            .expect("stages cover 0..n")
    }

    /// Number of members in stage `t`.
    pub fn stage_len(&self, t: usize) -> usize {
        self.stages[t].1
    }

    /// Global positions of stage `t`, in order.
    pub fn members(&self, t: usize) -> std::ops::Range<usize> {
        let (s, l) = self.stages[t];
        s..s + l
    }

    /// Global position of the stage-`t` member with stage-local index `i`.
    pub fn global_pos(&self, t: usize, i: usize) -> usize {
        assert!(i < self.stages[t].1, "stage-local index out of range");
        self.stages[t].0 + i
    }

    /// Stage-local index of global position `pos` within its own stage.
    pub fn local_index(&self, pos: usize) -> usize {
        pos - self.stages[self.stage_of(pos)].0
    }

    /// The stage that receives stage `t`'s shares.
    pub fn succ_stage(&self, t: usize) -> usize {
        (t + 1) % self.stages.len()
    }

    /// The stage whose shares stage `t` receives.
    pub fn pred_stage(&self, t: usize) -> usize {
        (t + self.stages.len() - 1) % self.stages.len()
    }

    /// Stage-local reconstruction threshold `k_m = max(1, m - (n - k))`
    /// for the stage of size `m = stage_len(t)`: each partition gets
    /// `min(m, n-k+1)` replica holders, preserving the global `n - k`
    /// dropout budget inside any single stage (up to losing `m - 1` of
    /// its `m` members).
    pub fn stage_k(&self, t: usize) -> usize {
        self.stage_len(t).saturating_sub(self.n - self.k).max(1)
    }

    /// How many additive shares the peer at `pos` splits its model into:
    /// the size of its successor stage.
    pub fn parts_of(&self, pos: usize) -> usize {
        self.stage_len(self.succ_stage(self.stage_of(pos)))
    }

    /// Stage-local partition indices assigned to the stage-`t` member with
    /// local index `i` (the block of its predecessor stage's shares it
    /// holds and totals).
    pub fn assigned(&self, t: usize, i: usize) -> Vec<usize> {
        assigned_partitions(self.stage_len(t), self.stage_k(t), i)
    }

    /// Global positions of every stage-`t` member holding partition `p`.
    pub fn holders_of(&self, t: usize, p: usize) -> Vec<usize> {
        holders(self.stage_len(t), self.stage_k(t), p)
            .into_iter()
            .map(|h| self.global_pos(t, h))
            .collect()
    }

    /// Total number of `(stage, partition)` totals the leader collects:
    /// always exactly `n`.
    pub fn total_partitions(&self) -> usize {
        self.n
    }
}

/// `⌈log₂ n⌉` for `n >= 1` (0 for `n = 1`).
fn ceil_log2(n: usize) -> usize {
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_float() {
        for n in 1..=1024usize {
            assert_eq!(ceil_log2(n), (n as f64).log2().ceil() as usize, "n={n}");
        }
    }

    #[test]
    fn stages_partition_positions_exactly() {
        for n in 1..=64 {
            let plan = RingPlan::new(n, n.div_ceil(2));
            let mut covered = vec![false; n];
            for t in 0..plan.num_stages() {
                for pos in plan.members(t) {
                    assert!(!covered[pos], "position {pos} in two stages");
                    covered[pos] = true;
                    assert_eq!(plan.stage_of(pos), t);
                    assert_eq!(plan.global_pos(t, plan.local_index(pos)), pos);
                }
            }
            assert!(covered.into_iter().all(|c| c), "n={n} not fully covered");
            assert_eq!(plan.total_partitions(), n);
        }
    }

    #[test]
    fn no_singleton_stages_above_one_member() {
        // A stage of one would expose a single peer's masked sum to the
        // leader; the layout floors stage sizes at 2 whenever n >= 2.
        for n in 2..=128 {
            let plan = RingPlan::new(n, 1);
            for t in 0..plan.num_stages() {
                assert!(plan.stage_len(t) >= 2, "n={n} stage {t} is a singleton");
            }
        }
    }

    #[test]
    fn stage_sizes_are_logarithmic() {
        // Stage size tracks ⌈log₂ n⌉, so per-peer fan-out is O(log n):
        // that is the entire complexity claim of the ring engine.
        for n in 6..=256 {
            let plan = RingPlan::new(n, 2);
            let g = ceil_log2(n);
            for t in 0..plan.num_stages() {
                assert!(
                    plan.stage_len(t) <= 2 * g,
                    "n={n} stage {t} len {} exceeds 2·⌈log₂ n⌉ = {}",
                    plan.stage_len(t),
                    2 * g
                );
            }
        }
    }

    #[test]
    fn known_layouts() {
        assert_eq!(RingPlan::new(3, 2).stages, vec![(0, 3)]);
        assert_eq!(RingPlan::new(4, 2).stages, vec![(0, 2), (2, 2)]);
        assert_eq!(RingPlan::new(5, 3).stages, vec![(0, 5)]);
        assert_eq!(RingPlan::new(6, 2).stages, vec![(0, 3), (3, 3)]);
        assert_eq!(RingPlan::new(8, 4).stages, vec![(0, 4), (4, 4)]);
        assert_eq!(
            RingPlan::new(16, 8).stages,
            vec![(0, 4), (4, 4), (8, 4), (12, 4)]
        );
    }

    #[test]
    fn ring_orientation_is_a_bijection() {
        let plan = RingPlan::new(16, 8);
        for t in 0..plan.num_stages() {
            assert_eq!(plan.pred_stage(plan.succ_stage(t)), t);
            assert_eq!(plan.succ_stage(plan.pred_stage(t)), t);
        }
    }

    #[test]
    fn stage_threshold_preserves_global_dropout_budget() {
        for n in 2..=64 {
            for k in 1..=n {
                let plan = RingPlan::new(n, k);
                for t in 0..plan.num_stages() {
                    let m = plan.stage_len(t);
                    let k_m = plan.stage_k(t);
                    assert!((1..=m).contains(&k_m), "n={n} k={k} stage {t}");
                    // Replication factor min(m, n-k+1): the stage survives
                    // min(m-1, n-k) of its members crashing.
                    assert_eq!(m - k_m + 1, m.min(n - k + 1));
                }
            }
        }
    }

    #[test]
    fn holders_are_stage_members_holding_the_partition() {
        let plan = RingPlan::new(16, 8);
        for t in 0..plan.num_stages() {
            for p in 0..plan.stage_len(t) {
                for g in plan.holders_of(t, p) {
                    assert_eq!(plan.stage_of(g), t);
                    assert!(plan.assigned(t, plan.local_index(g)).contains(&p));
                }
            }
        }
    }
}
