//! Synchronous Ring-SAC reference — the circular counterpart of
//! [`crate::ftsac::fault_tolerant_secure_average`], with the same dropout
//! schedule semantics and cost ledger, used by the round runner when a
//! subgroup's replicated config selects [`SacEngine::Ring`].
//!
//! Per contributor the share fan-out is the successor-stage size
//! `m ≈ ⌈log₂ n⌉` instead of `n - 1`, so a no-dropout round moves
//! `n·m·min(m-1, n-k+1)·|w|` share bytes (pairwise: `n(n-1)(n-k+1)|w|`)
//! plus `n` small `Shared` announcements to the leader.
//!
//! [`SacEngine::Ring`]: crate::ring::SacEngine::Ring

use crate::divide::{divide, ShareScheme};
use crate::ftsac::{DropPhase, Dropout, FtSacError, FtSacOutcome, REQUEST_BYTES};
use crate::ledger::TransferLog;
use crate::ring::plan::RingPlan;
use crate::weights::WeightVector;
use rand::Rng;
use std::collections::HashMap;

/// Phase label for stage-share exchange (successor-stage blocks).
pub const RING_PHASE_SHARE: &str = "ringsac.share";
/// Phase label for the per-peer `Shared` announcements to the leader.
pub const RING_PHASE_ANNOUNCE: &str = "ringsac.shared";
/// Phase label for routine stage-total collection at the leader.
pub const RING_PHASE_TOTAL: &str = "ringsac.total";
/// Phase label for recovery requests (small control messages).
pub const RING_PHASE_REQUEST: &str = "ringsac.request";
/// Phase label for recovered totals served by alternate in-stage holders.
pub const RING_PHASE_RECOVERY: &str = "ringsac.recovery";

/// Size charged for one `Shared` announcement control message.
pub const ANNOUNCE_BYTES: u64 = 16;

/// Runs one round of staged Ring-SAC led by `leader`, with the given
/// dropout schedule. Same error surface and outcome shape as the
/// pairwise [`crate::ftsac::fault_tolerant_secure_average`], so the
/// round runner can dispatch between the two on the replicated engine
/// selection.
pub fn ring_secure_average<R: Rng + ?Sized>(
    models: &[WeightVector],
    k: usize,
    leader: usize,
    dropouts: &[Dropout],
    scheme: ShareScheme,
    rng: &mut R,
) -> Result<FtSacOutcome, FtSacError> {
    let n = models.len();
    if k == 0 || k > n {
        return Err(FtSacError::InvalidThreshold { n, k });
    }
    assert!(leader < n, "leader index out of range");
    let dim = models[0].dim();
    assert!(
        models.iter().all(|m| m.dim() == dim),
        "all models must share a dimension"
    );
    let wire = models[0].wire_bytes();

    let mut phase_of: HashMap<usize, DropPhase> = HashMap::new();
    for d in dropouts {
        assert!(d.peer < n, "dropout peer index out of range");
        phase_of.insert(d.peer, d.phase);
    }
    if phase_of.contains_key(&leader) {
        return Err(FtSacError::LeaderCrashed);
    }

    let alive: Vec<bool> = (0..n).map(|i| !phase_of.contains_key(&i)).collect();
    let contributors: Vec<usize> = (0..n)
        .filter(|i| phase_of.get(i) != Some(&DropPhase::BeforeShare))
        .collect();
    if contributors.is_empty() {
        return Err(FtSacError::NoContributors);
    }

    let plan = RingPlan::new(n, k);
    if let Some(stage) = plan.lone_contributor_stage(|p| contributors.binary_search(&p).is_ok()) {
        // A stage with exactly one contributor would hand the leader that
        // peer's individual model as the stage sum (same guard as
        // `RingSacActor::freeze_and_collect`).
        return Err(FtSacError::StageIsolation { stage });
    }
    let mut log = TransferLog::new();

    // Phase 1: each contributor splits its model into m shares (m = its
    // successor stage's size) and sends every successor-stage member its
    // replicated block, then announces completion to the leader.
    let mut shares: HashMap<usize, Vec<WeightVector>> = HashMap::new();
    for &i in &contributors {
        let s = plan.succ_stage(plan.stage_of(i));
        let m = plan.stage_len(s);
        shares.insert(i, divide(&models[i], m, scheme, rng));
        for r in 0..m {
            if plan.global_pos(s, r) != i {
                log.record(RING_PHASE_SHARE, plan.assigned(s, r).len() as u64 * wire);
            }
        }
        if i != leader {
            log.record(RING_PHASE_ANNOUNCE, ANNOUNCE_BYTES);
        }
    }

    // Phase 2: stage totals. Total (t, p) sums partition p of every
    // contributor in t's predecessor stage; summing the full
    // (stage, partition) grid telescopes to Σ models over contributors.
    let total = |t: usize, p: usize| -> WeightVector {
        let pred = plan.pred_stage(t);
        let mut acc = WeightVector::zeros(dim);
        for c in plan.members(pred) {
            if let Some(parts) = shares.get(&c) {
                acc.add_assign(&parts[p]);
            }
        }
        acc
    };

    // Phase 3: the leader gathers all n totals — its own block directly,
    // the rest from primary owners, alternate in-stage holders covering
    // crashed owners.
    let lt = plan.stage_of(leader);
    let leader_block = plan.assigned(lt, plan.local_index(leader));
    let mut collected: HashMap<(usize, usize), WeightVector> = HashMap::new();
    let mut recoveries = 0usize;
    for t in 0..plan.num_stages() {
        for p in 0..plan.stage_len(t) {
            if t == lt && leader_block.contains(&p) {
                collected.insert((t, p), total(t, p));
                continue;
            }
            let owner = plan.global_pos(t, p);
            if alive[owner] {
                log.record(RING_PHASE_TOTAL, wire);
                collected.insert((t, p), total(t, p));
                continue;
            }
            // Owner crashed: ask the other in-stage replica holders.
            let alt = plan
                .holders_of(t, p)
                .into_iter()
                .find(|&h| h != owner && alive[h]);
            match alt {
                Some(_h) => {
                    log.record(RING_PHASE_REQUEST, REQUEST_BYTES);
                    log.record(RING_PHASE_RECOVERY, wire);
                    recoveries += 1;
                    collected.insert((t, p), total(t, p));
                }
                None => {
                    return Err(FtSacError::TooManyDropouts {
                        partition: plan.global_pos(t, p),
                    })
                }
            }
        }
    }

    // Phase 4: average over contributors.
    let mut average = WeightVector::zeros(dim);
    for t in 0..plan.num_stages() {
        for p in 0..plan.stage_len(t) {
            average.add_assign(&collected[&(t, p)]);
        }
    }
    average.scale(1.0 / contributors.len() as f64);

    Ok(FtSacOutcome {
        average,
        contributors,
        recoveries,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(n: usize, dim: usize, seed: u64) -> Vec<WeightVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect()
    }

    fn mean_of(ms: &[WeightVector], idx: &[usize]) -> WeightVector {
        WeightVector::mean(idx.iter().map(|&i| &ms[i]))
    }

    #[test]
    fn no_dropouts_matches_plain_mean_across_sizes() {
        for (n, k) in [(3usize, 2usize), (5, 3), (6, 2), (8, 4), (16, 8), (24, 12)] {
            let ms = models(n, 20, n as u64);
            let mut rng = StdRng::seed_from_u64(2);
            let out = ring_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng).unwrap();
            assert_eq!(out.contributors, (0..n).collect::<Vec<_>>());
            assert_eq!(out.recoveries, 0);
            let all: Vec<usize> = (0..n).collect();
            assert!(
                out.average.linf_distance(&mean_of(&ms, &all)) < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn share_phase_cost_is_log_fan_out() {
        // n = 8, k = 4: stages [4, 4], k_m floored at the privacy minimum
        // 2, so blocks carry min(m-1, n-k+1) = 3 of the 4 partitions —
        // never a full share set. 8 senders x 4 receivers = 32 block
        // messages of 3|w| each — against pairwise n(n-1) = 56 blocks of
        // 5|w|.
        let (n, k) = (8usize, 4usize);
        let ms = models(n, 10, 3);
        let wire = ms[0].wire_bytes();
        let mut rng = StdRng::seed_from_u64(4);
        let out = ring_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng).unwrap();
        assert_eq!(out.log.phase(RING_PHASE_SHARE), (32, 32 * 3 * wire));
        assert_eq!(out.log.phase(RING_PHASE_ANNOUNCE), (7, 7 * ANNOUNCE_BYTES));
        // Leader (stage 0) holds its block {0, 1, 2} of stage 0; stage
        // 0's partition 3 and stage 1's 4 primaries travel.
        assert_eq!(out.log.phase(RING_PHASE_TOTAL), (5, 5 * wire));
        assert_eq!(out.log.phase(RING_PHASE_RECOVERY), (0, 0));
    }

    #[test]
    fn after_share_dropout_still_contributes() {
        let ms = models(6, 16, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = ring_secure_average(
            &ms,
            2,
            0,
            &[Dropout {
                peer: 4,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.contributors, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(out.recoveries, 1);
        assert_eq!(out.log.phase(RING_PHASE_REQUEST).0, 1);
        let plain = mean_of(&ms, &[0, 1, 2, 3, 4, 5]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn before_share_dropout_is_excluded() {
        let ms = models(6, 16, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = ring_secure_average(
            &ms,
            2,
            1,
            &[Dropout {
                peer: 3,
                phase: DropPhase::BeforeShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.contributors, vec![0, 1, 2, 4, 5]);
        let plain = mean_of(&ms, &[0, 1, 2, 4, 5]);
        assert!(out.average.linf_distance(&plain) < 1e-9);
    }

    #[test]
    fn tolerates_in_stage_dropout_budget_after_share() {
        // n = 6, k = 2: stages [3, 3] with k_m = 2, so each stage
        // tolerates min(m-2, n-k) = 1 post-share crash. One crash per
        // stage: every lost primary total is recovered from an in-stage
        // alternate holder.
        let (n, k) = (6usize, 2usize);
        let ms = models(n, 8, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let dropouts: Vec<Dropout> = [2usize, 4]
            .iter()
            .map(|&p| Dropout {
                peer: p,
                phase: DropPhase::AfterShare,
            })
            .collect();
        let out = ring_secure_average(&ms, k, 0, &dropouts, ShareScheme::Masked, &mut rng).unwrap();
        assert_eq!(out.recoveries, 2);
        let all: Vec<usize> = (0..n).collect();
        assert!(out.average.linf_distance(&mean_of(&ms, &all)) < 1e-9);
    }

    #[test]
    fn exceeding_in_stage_budget_is_unrecoverable() {
        // The privacy floor k_m >= 2 deliberately trades the pairwise
        // engine's full n - k budget for min(m-2, n-k) per stage: with
        // m = 3 both holders of a partition can die in two in-stage
        // crashes, and the reference reports it instead of silently
        // widening replication back to a full (reconstructable) set.
        let ms = models(6, 8, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let dropouts: Vec<Dropout> = [1usize, 2]
            .iter()
            .map(|&p| Dropout {
                peer: p,
                phase: DropPhase::AfterShare,
            })
            .collect();
        let err =
            ring_secure_average(&ms, 2, 0, &dropouts, ShareScheme::Masked, &mut rng).unwrap_err();
        assert!(matches!(err, FtSacError::TooManyDropouts { .. }));
    }

    #[test]
    fn singleton_contributor_stage_is_refused() {
        // Peers 3 and 4 never share, leaving stage 1 = {3, 4, 5} with the
        // lone contributor 5: its stage totals would sum to peer 5's
        // individual model, so the round is refused outright.
        let ms = models(6, 8, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let dropouts: Vec<Dropout> = [3usize, 4]
            .iter()
            .map(|&p| Dropout {
                peer: p,
                phase: DropPhase::BeforeShare,
            })
            .collect();
        let err =
            ring_secure_average(&ms, 2, 0, &dropouts, ShareScheme::Masked, &mut rng).unwrap_err();
        assert_eq!(err, FtSacError::StageIsolation { stage: 1 });
    }

    #[test]
    fn leader_crash_is_reported() {
        let ms = models(6, 4, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let err = ring_secure_average(
            &ms,
            2,
            0,
            &[Dropout {
                peer: 0,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, FtSacError::LeaderCrashed);
    }

    #[test]
    fn invalid_threshold_is_reported() {
        let ms = models(3, 4, 15);
        let mut rng = StdRng::seed_from_u64(16);
        for k in [0usize, 4] {
            let err =
                ring_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng).unwrap_err();
            assert!(matches!(err, FtSacError::InvalidThreshold { .. }));
        }
    }

    #[test]
    fn k_equals_n_with_a_dropout_is_unrecoverable() {
        // k = n gives k_m = m: no in-stage replication, so a crashed
        // owner outside the leader's block loses its total.
        let ms = models(4, 4, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let err = ring_secure_average(
            &ms,
            4,
            0,
            &[Dropout {
                peer: 3,
                phase: DropPhase::AfterShare,
            }],
            ShareScheme::Masked,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, FtSacError::TooManyDropouts { .. }));
    }

    #[test]
    fn ring_beats_pairwise_bytes_at_moderate_n() {
        // The whole point of the subsystem: beyond the crossover the ring
        // share phase moves strictly fewer bytes and messages.
        use crate::ftsac::{fault_tolerant_secure_average, PHASE_SHARE};
        for n in [8usize, 16, 32] {
            let k = n / 2;
            let ms = models(n, 16, 19 + n as u64);
            let mut rng = StdRng::seed_from_u64(20);
            let ring = ring_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng).unwrap();
            let pair = fault_tolerant_secure_average(&ms, k, 0, &[], ShareScheme::Masked, &mut rng)
                .unwrap();
            let (rm, rb) = ring.log.phase(RING_PHASE_SHARE);
            let (pm, pb) = pair.log.phase(PHASE_SHARE);
            assert!(rm < pm, "n={n}: ring {rm} msgs vs pairwise {pm}");
            assert!(rb < pb, "n={n}: ring {rb} bytes vs pairwise {pb}");
        }
    }
}
