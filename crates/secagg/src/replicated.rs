//! Replicated additive secret sharing — the k-out-of-n share *assignment*.
//!
//! Paper Alg. 4 (lines 3–9) makes peer `i` send peer `j` the block of
//! `n - k + 1` *consecutive* partitions `j, j+1, …, j+(n-k) (mod n)` of its
//! model. Consequently every partition index `p` is replicated on the
//! `n - k + 1` peers `p, p-1, …, p-(n-k) (mod n)`, so any set of at most
//! `n - k` crashed peers still leaves at least one live holder per
//! partition — the invariant that makes the aggregation `k`-out-of-`n`.

/// The consecutive partition indices peer `j` holds under `k`-out-of-`n`
/// replication (paper Alg. 4, lines 5–7). Indices are `0..n`.
///
/// Panics unless `1 <= k <= n` and `j < n`.
pub fn assigned_partitions(n: usize, k: usize, j: usize) -> Vec<usize> {
    validate(n, k);
    assert!(j < n, "peer index out of range");
    (0..=(n - k)).map(|t| (j + t) % n).collect()
}

/// The peers holding partition index `p` under `k`-out-of-`n` replication —
/// exactly the peers that can serve a recovery request for subtotal `p`
/// (paper Alg. 4, line 18).
pub fn holders(n: usize, k: usize, p: usize) -> Vec<usize> {
    validate(n, k);
    assert!(p < n, "partition index out of range");
    (0..=(n - k)).map(|t| (p + n - t) % n).collect()
}

/// Number of partitions each peer holds: `n - k + 1`.
pub fn replication_factor(n: usize, k: usize) -> usize {
    validate(n, k);
    n - k + 1
}

/// Whether the live peer set `alive` (indices `< n`) suffices to reconstruct
/// every partition, i.e. every partition has at least one live holder.
pub fn can_reconstruct(n: usize, k: usize, alive: &[bool]) -> bool {
    validate(n, k);
    assert_eq!(alive.len(), n, "alive mask length mismatch");
    (0..n).all(|p| holders(n, k, p).iter().any(|&h| alive[h]))
}

fn validate(n: usize, k: usize) {
    assert!(n >= 1, "need at least one peer");
    assert!(k >= 1 && k <= n, "threshold k must satisfy 1 <= k <= n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_out_of_n_degenerates_to_one_partition_each() {
        for n in 1..8 {
            for j in 0..n {
                assert_eq!(assigned_partitions(n, n, j), vec![j]);
            }
        }
    }

    #[test]
    fn two_out_of_three_matches_paper_fig3() {
        // In the paper's 2-out-of-3 walkthrough each peer ends up holding
        // two consecutive subtotals (e.g. S_circle and S_square).
        assert_eq!(assigned_partitions(3, 2, 0), vec![0, 1]);
        assert_eq!(assigned_partitions(3, 2, 1), vec![1, 2]);
        assert_eq!(assigned_partitions(3, 2, 2), vec![2, 0]);
    }

    #[test]
    fn holders_inverts_assignment() {
        for n in 1..10 {
            for k in 1..=n {
                for p in 0..n {
                    for h in holders(n, k, p) {
                        assert!(
                            assigned_partitions(n, k, h).contains(&p),
                            "n={n} k={k} p={p} h={h}"
                        );
                    }
                    // And no one else holds it.
                    let hs = holders(n, k, p);
                    for j in 0..n {
                        if !hs.contains(&j) {
                            assert!(!assigned_partitions(n, k, j).contains(&p));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn replication_factor_is_n_minus_k_plus_1() {
        assert_eq!(replication_factor(5, 3), 3);
        assert_eq!(replication_factor(3, 2), 2);
        for n in 1..10 {
            for k in 1..=n {
                assert_eq!(assigned_partitions(n, k, 0).len(), replication_factor(n, k));
                assert_eq!(holders(n, k, 0).len(), replication_factor(n, k));
            }
        }
    }

    #[test]
    fn survives_any_n_minus_k_crashes() {
        // Exhaustively check all crash sets of size <= n-k for small n.
        for n in 1..=7usize {
            for k in 1..=n {
                let max_crash = n - k;
                for mask in 0u32..(1 << n) {
                    let crashed = mask.count_ones() as usize;
                    let alive: Vec<bool> = (0..n).map(|i| mask & (1 << i) == 0).collect();
                    let ok = can_reconstruct(n, k, &alive);
                    if crashed <= max_crash {
                        assert!(ok, "n={n} k={k} mask={mask:b} should reconstruct");
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_consecutive_crashes_break_reconstruction() {
        // Crashing all n-k+1 holders of one partition defeats recovery.
        let n = 5;
        let k = 3;
        let mut alive = vec![true; n];
        for h in holders(n, k, 0) {
            alive[h] = false;
        }
        assert!(!can_reconstruct(n, k, &alive));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        assigned_partitions(3, 0, 0);
    }
}
