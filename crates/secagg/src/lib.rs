//! # p2pfl-secagg — Secure Average Computation
//!
//! Implements the secret-sharing machinery of the reproduced paper:
//!
//! * [`divide`] / [`divide_scaled`] / [`divide_masked`] — paper Alg. 1 and
//!   the standard additive-masking variant (see [`ShareScheme`]);
//! * [`secure_average`] — paper Alg. 2, n-out-of-n SAC with full subtotal
//!   broadcast (cost `2N(N-1)|w|`), plus the leader-collect variant used
//!   inside two-layer subgroups (cost `(N²-1)|w|`);
//! * [`replicated`] — the consecutive k-out-of-n share assignment of
//!   Replicated Additive Secret Sharing;
//! * [`fault_tolerant_secure_average`] — paper Alg. 4, tolerating up to
//!   `n-k` peer dropouts per round;
//! * [`SacPeerActor`] — a message-driven engine executing the
//!   fault-tolerant protocol over `p2pfl-simnet`, with timeout-based crash
//!   detection and replica recovery;
//! * [`fixed`] — an exact fixed-point ring-sharing backend (extension);
//! * [`dp`] — Gaussian-mechanism differential privacy for peer updates,
//!   the hardening the paper's Sec. IV-D points to (extension);
//! * [`pairwise`] — the Bonawitz-style pairwise-mask baseline from the
//!   paper's related work (Sec. II-B), with dropout recovery;
//! * [`ring`] — the Ring-SAC engine: staged successor-stage sharing with
//!   O(n log n) traffic instead of O(n²), selectable per run via
//!   [`SacEngine`].
//!
//! ## Quick example
//!
//! ```
//! use p2pfl_secagg::{secure_average, ShareScheme, WeightVector};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let models = vec![
//!     WeightVector::new(vec![1.0, 2.0]),
//!     WeightVector::new(vec![3.0, 4.0]),
//! ];
//! let out = secure_average(&models, ShareScheme::Masked, &mut rng);
//! assert!((out.average[0] - 2.0).abs() < 1e-9);
//! assert!((out.average[1] - 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod divide;
pub mod dp;
mod engine;
pub mod fixed;
mod ftsac;
mod ledger;
#[cfg(feature = "mutants")]
pub mod mutants;
pub mod pairwise;
pub mod replicated;
pub mod ring;
mod sac;
mod weights;

pub use divide::{
    divide, divide_masked, divide_masked_with_bound, divide_scaled, ShareScheme, DEFAULT_MASK_BOUND,
};
pub use engine::{SacConfig, SacMsg, SacPeerActor, SacPhase};
pub use ftsac::{
    fault_tolerant_secure_average, DropPhase, Dropout, FtSacError, FtSacOutcome, REQUEST_BYTES,
};
pub use ledger::TransferLog;
pub use ring::{ring_secure_average, RingMsg, RingPlan, RingSacActor, SacEngine};
pub use sac::{secure_average, secure_average_with_leader, SacOutcome};
pub use weights::{WeightVector, WIRE_BYTES_PER_PARAM};
