//! Message-driven fault-tolerant SAC engine over `p2pfl-simnet`.
//!
//! [`crate::ftsac`] executes Alg. 4 synchronously; this module runs the same
//! protocol as real message exchange between simulator actors, with crash
//! detection by timeout and subtotal recovery from replica holders — the
//! form the paper actually deploys inside each subgroup.
//!
//! Protocol (one aggregation round, leader-driven):
//!
//! 1. every peer divides its model into `n` partitions and sends each other
//!    peer its consecutive `n-k+1`-partition block (`ShareBlock`);
//! 2. when the leader has blocks from everyone — or its share deadline
//!    expires — it freezes the contributor set and broadcasts `ComputeOver`;
//! 3. every live peer computes the subtotals of its block over that set and
//!    the *primary owner* of each index sends it to the leader (`Subtotal`);
//! 4. after a collection deadline the leader requests missing subtotals
//!    from alternate replica holders (`SubtotalRequest`), which respond with
//!    the recovered `Subtotal`;
//! 5. with all `n` subtotals the leader averages and completes.
//!
//! The `ComputeOver` control broadcast has no counterpart in the paper's
//! pseudo-code (which assumes a synchronous view of who contributed); it is
//! required for consistency once peers can crash mid-protocol, and is
//! counted in its own ledger phase as a small control message.

use crate::divide::{divide, ShareScheme};
use crate::replicated::{assigned_partitions, holders};
use crate::ring::SacEngine;
use crate::weights::WeightVector;
use p2pfl_simnet::{Actor, NodeId, Payload, SimDuration, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Messages exchanged by the SAC engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SacMsg {
    /// Leader tells followers to begin round `round` (the trigger the
    /// FedAvg layer sends down in the full system).
    Begin {
        /// Round number.
        round: u64,
    },
    /// A contributor's digest commitments to its full partition set for
    /// the round, broadcast *before* its `ShareBlock`s: `digests[p]` is
    /// the [`WeightVector::digest`] of partition `p`. Receivers check the
    /// blocks they are later sent against these digests — a sender whose
    /// share disagrees with its own commitment is Byzantine, and its
    /// contribution is rejected (links are FIFO, so the commitment always
    /// precedes the block it covers).
    Commit {
        /// Round number.
        round: u64,
        /// Sender's position within the subgroup.
        from_pos: usize,
        /// Per-partition digests, indexed by partition.
        digests: Vec<u64>,
    },
    /// A contributor's block of `(partition index, partition)` pairs.
    ShareBlock {
        /// Round number.
        round: u64,
        /// Sender's position within the subgroup.
        from_pos: usize,
        /// The consecutive partitions assigned to the receiver.
        parts: Vec<(usize, WeightVector)>,
    },
    /// Leader freezes the contributor set.
    ComputeOver {
        /// Round number.
        round: u64,
        /// Positions whose models are included this round.
        contributors: Vec<usize>,
    },
    /// A computed subtotal for one partition index.
    Subtotal {
        /// Round number.
        round: u64,
        /// Partition index.
        idx: usize,
        /// The subtotal vector.
        value: WeightVector,
    },
    /// Leader asks a replica holder for a missing subtotal.
    SubtotalRequest {
        /// Round number.
        round: u64,
        /// Partition index to recover.
        idx: usize,
    },
    /// Leader aborts the round: the supervisor deadline expired or a
    /// partition became unrecoverable. Receivers discard every share and
    /// subtotal of the round — the mask material is never reused, so an
    /// abort cannot leak a pairwise secret.
    Abort {
        /// The aborted round.
        round: u64,
        /// Human-readable cause, for logs and traces.
        reason: String,
    },
    /// Leader restarts aggregation after an abort with a degraded roster:
    /// the receiver recomputes its position in `group`, adopts `k`, and
    /// begins `round` as if a fresh `Begin` had arrived. Peers absent from
    /// `group` have been evicted for this round and simply ignore it.
    Reconfigure {
        /// The retry round (always a fresh round number).
        round: u64,
        /// Surviving subgroup members, in position order.
        group: Vec<NodeId>,
        /// Recomputed threshold `k' = min(k, n')`.
        k: usize,
    },
}

impl Payload for SacMsg {
    fn size_bytes(&self) -> u64 {
        match self {
            SacMsg::Begin { .. } => 16,
            SacMsg::Commit { digests, .. } => 16 + 8 * digests.len() as u64,
            SacMsg::ShareBlock { parts, .. } => {
                parts.iter().map(|(_, v)| v.wire_bytes()).sum::<u64>() + 8
            }
            SacMsg::ComputeOver { contributors, .. } => 16 + contributors.len() as u64,
            SacMsg::Subtotal { value, .. } => value.wire_bytes() + 8,
            SacMsg::SubtotalRequest { .. } => 16,
            SacMsg::Abort { reason, .. } => 16 + reason.len() as u64,
            SacMsg::Reconfigure { group, .. } => 24 + 4 * group.len() as u64,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            SacMsg::Begin { .. } => "sac.begin",
            SacMsg::Commit { .. } => "sac.commit",
            SacMsg::ShareBlock { .. } => "sac.share",
            SacMsg::ComputeOver { .. } => "sac.ctrl",
            SacMsg::Subtotal { .. } => "sac.subtotal",
            SacMsg::SubtotalRequest { .. } => "sac.request",
            SacMsg::Abort { .. } => "sac.abort",
            SacMsg::Reconfigure { .. } => "sac.reconf",
        }
    }
}

/// Where the engine is in the round.
#[derive(Debug, Clone, PartialEq)]
pub enum SacPhase {
    /// Waiting for `Begin` (followers) or `start_round` (leader).
    Idle,
    /// Shares sent; collecting blocks.
    Sharing,
    /// Contributor set frozen; collecting subtotals (leader only).
    Collecting,
    /// Round finished; `result` holds the average (leader only).
    Done,
    /// Round failed.
    Failed(String),
}

const TIMER_SHARE_DEADLINE: u64 = 1;
const TIMER_COLLECT_DEADLINE: u64 = 2;
const TIMER_ROUND_DEADLINE: u64 = 3;

/// Timer tags carry the round in their upper bits so a deadline armed for
/// an aborted round can never misfire into its successor: abort/retry
/// re-enters the `Sharing` phase under a *new* round number, which a bare
/// phase guard cannot distinguish from the round the timer was armed for.
fn timer_tag(base: u64, round: u64) -> u64 {
    (round << 8) | base
}

/// Static configuration of one SAC engine participant.
#[derive(Debug, Clone)]
pub struct SacConfig {
    /// All subgroup members, in position order (position = index here).
    pub group: Vec<NodeId>,
    /// This peer's position within `group`.
    pub position: usize,
    /// The leader's position within `group`.
    pub leader_pos: usize,
    /// Reconstruction threshold `k` (`1..=n`).
    pub k: usize,
    /// Share construction scheme.
    pub scheme: ShareScheme,
    /// Which aggregation engine this subgroup runs. The config struct is
    /// shared by both engines; a runtime constructs [`SacPeerActor`] for
    /// `Pairwise` and [`crate::ring::RingSacActor`] for `Ring`. All
    /// members of a subgroup must agree on the engine for a round — the
    /// value is replicated through the FedAvg-layer config.
    pub engine: SacEngine,
    /// Leader grace period for the share phase.
    pub share_deadline: SimDuration,
    /// Leader grace period for subtotal collection before recovery kicks in.
    pub collect_deadline: SimDuration,
    /// Supervisor deadline for the whole round. `None` keeps the legacy
    /// behavior (an unrecoverable partition fails the round terminally).
    /// When set, the leader converts every dead end into one abort +
    /// retry with the surviving `n'` members and `k' = min(k, n')`,
    /// refusing only when `n' < 2`; followers abandon a round that is
    /// still open when the deadline fires, discarding its mask material.
    /// Should comfortably exceed `share_deadline + 2 * collect_deadline`
    /// so it only fires on rounds no phase deadline can finish.
    pub round_deadline: Option<SimDuration>,
    /// RNG seed for share randomness.
    pub seed: u64,
}

impl SacConfig {
    /// Subgroup size `n`.
    pub fn n(&self) -> usize {
        self.group.len()
    }
    /// Whether this participant is the round leader.
    pub fn is_leader(&self) -> bool {
        self.position == self.leader_pos
    }
}

/// A subgroup member executing fault-tolerant SAC over the simulator.
pub struct SacPeerActor {
    cfg: SacConfig,
    model: WeightVector,
    rng: StdRng,
    /// Current round number.
    pub round: u64,
    /// Protocol phase.
    pub phase: SacPhase,
    /// The leader's computed average once `phase == Done`.
    pub result: Option<WeightVector>,
    /// Contributor positions of the completed round (leader only).
    pub contributors: Vec<usize>,
    /// Recoveries performed in the completed round (leader only).
    pub recoveries: usize,
    /// Rounds aborted on this peer (leader: deadline/unrecoverable abort;
    /// follower: processed `Abort`).
    pub aborts: u64,
    /// Rounds a follower abandoned locally when the round deadline fired
    /// with the round still open (the leader's outcome is unknown to it).
    pub abandoned: u64,
    /// Next-round stash messages evicted because the `4n` bound was hit.
    pub stash_evicted: u64,
    /// Whether received share blocks are checked against the sender's
    /// broadcast digest commitments (on by default). Disabling this models
    /// an undefended deployment — used by the pinned negative tests.
    pub verify_commitments: bool,
    /// Byzantine fault injection: when set, this peer *commits* to its
    /// honest partition digests but scales the shares it actually sends by
    /// this factor — the commit-then-skew attack the commitment check is
    /// built to catch. Set by the fault-plan interpreters.
    pub byz_share_skew: Option<f64>,
    /// Share blocks rejected because they disagreed with the sender's own
    /// commitment.
    pub shares_rejected: u64,
    /// Positions convicted of sending shares inconsistent with their
    /// commitments (cumulative across rounds; the round supervisor reads
    /// this to drive roster evictions).
    pub byzantine_detected: BTreeSet<usize>,
    // commitments[from_pos] = per-partition digests for the current round
    commitments: BTreeMap<usize, Vec<u64>>,
    // blocks[from_pos][idx] = partition
    blocks: BTreeMap<usize, BTreeMap<usize, WeightVector>>,
    frozen: Option<BTreeSet<usize>>,
    subtotals: BTreeMap<usize, WeightVector>,
    requested: BTreeSet<usize>,
    sent_primary: bool,
    pending_requests: Vec<(usize, NodeId)>,
    // Messages that arrived for the *next* round before this peer's
    // `Begin` did. Real transports order frames per connection only, so a
    // fast peer's `ShareBlock` for round r+1 can beat the leader's
    // `Begin { r+1 }`; dropping it would stall the round into recovery
    // (or unrecoverability). Stashed here and replayed after the round
    // advances. Bounded to one message burst per peer.
    future: Vec<(NodeId, SacMsg)>,
    // The most recently aborted round: messages addressed to it are dead
    // on arrival (its mask material was discarded; a late ShareBlock must
    // not resurrect partial state), and a re-delivered `Begin` for it must
    // not redistribute shares — the same single-randomization rule the
    // Begin-idempotence guard enforces.
    aborted: Option<u64>,
    // Whether the current round is already the retry of an aborted one
    // (each externally started round gets at most one supervised retry).
    retried: bool,
    // Every mask-stream domain this engine has drawn from, in adoption
    // order (construction seed, then one per `rekey`). The checker's
    // NoMaskReuseAcrossRekey oracle asserts all entries are distinct.
    mask_keys: Vec<u64>,
}

impl SacPeerActor {
    /// Creates an idle engine participant holding `model`.
    pub fn new(cfg: SacConfig, model: WeightVector) -> Self {
        assert!(cfg.position < cfg.n(), "position out of range");
        assert!(cfg.leader_pos < cfg.n(), "leader position out of range");
        assert!(cfg.k >= 1 && cfg.k <= cfg.n(), "invalid threshold");
        let mask_domain = cfg.seed ^ (cfg.position as u64) << 32;
        let rng = StdRng::seed_from_u64(mask_domain);
        SacPeerActor {
            cfg,
            model,
            rng,
            round: 0,
            phase: SacPhase::Idle,
            result: None,
            contributors: Vec::new(),
            recoveries: 0,
            aborts: 0,
            abandoned: 0,
            stash_evicted: 0,
            verify_commitments: true,
            byz_share_skew: None,
            shares_rejected: 0,
            byzantine_detected: BTreeSet::new(),
            commitments: BTreeMap::new(),
            blocks: BTreeMap::new(),
            frozen: None,
            subtotals: BTreeMap::new(),
            requested: BTreeSet::new(),
            sent_primary: false,
            pending_requests: Vec::new(),
            future: Vec::new(),
            aborted: None,
            retried: false,
            mask_keys: vec![mask_domain],
        }
    }

    /// Replaces the local model (between rounds).
    pub fn set_model(&mut self, model: WeightVector) {
        self.model = model;
    }

    // ------------------------------------------------------------------
    // Inspection accessors for the invariant checker (`p2pfl-check`)
    // ------------------------------------------------------------------

    /// This participant's static configuration.
    pub fn sac_config(&self) -> &SacConfig {
        &self.cfg
    }

    /// The local model being aggregated this round.
    pub fn model(&self) -> &WeightVector {
        &self.model
    }

    /// Every share partition held locally: `blocks[from_pos][idx]`.
    pub fn held_blocks(&self) -> &BTreeMap<usize, BTreeMap<usize, WeightVector>> {
        &self.blocks
    }

    /// The frozen contributor set, once decided.
    pub fn frozen_set(&self) -> Option<&BTreeSet<usize>> {
        self.frozen.as_ref()
    }

    /// Subtotals held locally (`idx -> value`); on the leader these are the
    /// collected per-partition sums over the frozen set.
    pub fn held_subtotals(&self) -> &BTreeMap<usize, WeightVector> {
        &self.subtotals
    }

    /// Leader entry point: begins round `round`, instructing followers and
    /// distributing this peer's own shares.
    pub fn start_round(&mut self, ctx: &mut dyn Transport<SacMsg>, round: u64) {
        assert!(self.cfg.is_leader(), "only the leader starts rounds");
        self.retried = false;
        self.reset_for(round);
        let group = self.cfg.group.clone();
        let me = self.me();
        for &peer in &group {
            if peer != me {
                ctx.send(peer, SacMsg::Begin { round });
            }
        }
        self.distribute_shares(ctx);
        ctx.set_timer(
            self.cfg.share_deadline,
            timer_tag(TIMER_SHARE_DEADLINE, round),
        );
        self.arm_round_deadline(ctx);
        self.phase = SacPhase::Sharing;
        self.replay_future(ctx);
    }

    fn me(&self) -> NodeId {
        self.cfg.group[self.cfg.position]
    }

    fn arm_round_deadline(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        if let Some(d) = self.cfg.round_deadline {
            ctx.set_timer(d, timer_tag(TIMER_ROUND_DEADLINE, self.round));
        }
    }

    /// Adopts a new roster mid-life (after a supervised abort or a
    /// membership change replicated by the layer above): recomputes this
    /// peer's position, moves the leadership to `leader`, adopts `k`, and
    /// discards all state of the current round. The caller starts the next
    /// round (with a fresh round number) afterwards. Returns whether the
    /// roster was adopted.
    pub fn reconfigure(&mut self, group: Vec<NodeId>, leader: NodeId, k: usize) -> bool {
        let me = self.me();
        // A roster that drops this peer or its leader, or carries an
        // unsatisfiable threshold, is invalid (a supervised restart never
        // produces one). Ignore it and keep the current configuration —
        // the supervisor aborts/retries — rather than crash the engine.
        let (Some(position), Some(leader_pos)) = (
            group.iter().position(|&p| p == me),
            group.iter().position(|&p| p == leader),
        ) else {
            return false;
        };
        if k < 1 || k > group.len() {
            return false;
        }
        self.cfg.group = group;
        self.cfg.position = position;
        self.cfg.leader_pos = leader_pos;
        self.cfg.k = k;
        let round = self.round;
        self.reset_for(round);
        true
    }

    /// Adopts a new roster *and* a fresh mask domain — the elastic
    /// split/merge re-key. Beyond [`SacPeerActor::reconfigure`], the RNG
    /// driving every subsequent share polynomial and mask partition is
    /// reseeded under `roster_key` (the replicated layer derives it per
    /// peer and transition, strictly fresh), so no mask drawn for the old
    /// roster can recur under the new one — even when a merge reunites the
    /// exact member set a split divided. Returns whether the roster was
    /// adopted; a rejected roster leaves the mask stream untouched.
    pub fn rekey(&mut self, group: Vec<NodeId>, leader: NodeId, k: usize, roster_key: u64) -> bool {
        if !self.reconfigure(group, leader, k) {
            return false;
        }
        let domain = self.cfg.seed ^ roster_key ^ (self.cfg.position as u64) << 32;
        self.rng = StdRng::seed_from_u64(domain);
        self.mask_keys.push(domain);
        true
    }

    /// The mask-stream domains this engine has drawn from, in adoption
    /// order (construction seed first, then one entry per re-key).
    pub fn mask_keys(&self) -> &[u64] {
        &self.mask_keys
    }

    /// Leader-side dead end: abort the round everywhere, then — unless the
    /// round was already a retry, or fewer than two members survive —
    /// restart with the surviving roster and `k' = min(k, n')`.
    fn supervise(
        &mut self,
        ctx: &mut dyn Transport<SacMsg>,
        suspects: &BTreeSet<usize>,
        reason: &str,
    ) {
        let old_round = self.round;
        let me = self.me();
        for &peer in &self.cfg.group.clone() {
            if peer != me {
                ctx.send(
                    peer,
                    SacMsg::Abort {
                        round: old_round,
                        reason: reason.to_string(),
                    },
                );
            }
        }
        self.aborted = Some(old_round);
        self.aborts += 1;
        let survivors: Vec<NodeId> = self
            .cfg
            .group
            .iter()
            .enumerate()
            .filter(|(j, _)| *j == self.cfg.position || !suspects.contains(j))
            .map(|(_, &p)| p)
            .collect();
        if self.retried {
            self.reset_for(old_round);
            self.phase = SacPhase::Failed(format!("{reason} (after retry)"));
            return;
        }
        if survivors.len() < 2 {
            self.reset_for(old_round);
            self.phase = SacPhase::Failed(format!(
                "degraded below 2 members (n' = {}): {reason}",
                survivors.len()
            ));
            return;
        }
        self.retried = true;
        let k = self.cfg.k.min(survivors.len());
        let next = old_round + 1;
        self.reconfigure(survivors.clone(), me, k);
        for &peer in &survivors {
            if peer != me {
                ctx.send(
                    peer,
                    SacMsg::Reconfigure {
                        round: next,
                        group: survivors.clone(),
                        k,
                    },
                );
            }
        }
        self.reset_for(next);
        self.distribute_shares(ctx);
        ctx.set_timer(
            self.cfg.share_deadline,
            timer_tag(TIMER_SHARE_DEADLINE, next),
        );
        self.arm_round_deadline(ctx);
        self.phase = SacPhase::Sharing;
        self.replay_future(ctx);
    }

    /// Re-dispatches stashed next-round messages now that the round has
    /// advanced; anything not matching the current round is filtered out
    /// by the per-message round guards.
    fn replay_future(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        for (from, msg) in std::mem::take(&mut self.future) {
            self.on_message(ctx, from, msg);
        }
    }

    fn reset_for(&mut self, round: u64) {
        self.round = round;
        self.phase = SacPhase::Idle;
        self.result = None;
        self.contributors.clear();
        self.recoveries = 0;
        self.commitments.clear();
        self.blocks.clear();
        self.frozen = None;
        self.subtotals.clear();
        self.requested.clear();
        self.sent_primary = false;
        self.pending_requests.clear();
    }

    fn distribute_shares(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        let n = self.cfg.n();
        #[allow(unused_mut)]
        let mut parts = divide(&self.model, n, self.cfg.scheme, &mut self.rng);
        #[cfg(feature = "mutants")]
        if crate::mutants::active(crate::mutants::Mutant::ShareSkew) {
            if let Some(p0) = parts.get_mut(0) {
                p0.scale(0.5);
            }
        }
        // Commit to the partition digests before sending any shares. Links
        // are FIFO, so every receiver sees the commitment before the block
        // it covers. A Byzantine peer injected with `byz_share_skew` still
        // commits honestly here and skews only what it sends below — which
        // is exactly what the receivers' digest check convicts.
        let digests: Vec<u64> = parts.iter().map(|p| p.digest()).collect();
        let round = self.round;
        let me = self.me();
        for &peer in &self.cfg.group.clone() {
            if peer != me {
                ctx.send(
                    peer,
                    SacMsg::Commit {
                        round,
                        from_pos: self.cfg.position,
                        digests: digests.clone(),
                    },
                );
            }
        }
        for (j, &peer) in self.cfg.group.clone().iter().enumerate() {
            let block: Vec<(usize, WeightVector)> = assigned_partitions(n, self.cfg.k, j)
                .into_iter()
                .map(|p| (p, parts[p].clone()))
                .collect();
            if j == self.cfg.position {
                // Keep our own block locally.
                let mine = self.blocks.entry(self.cfg.position).or_default();
                for (p, v) in block {
                    mine.insert(p, v);
                }
            } else {
                let block = match self.byz_share_skew {
                    Some(factor) => block
                        .into_iter()
                        .map(|(p, mut v)| {
                            v.scale(factor);
                            (p, v)
                        })
                        .collect(),
                    None => block,
                };
                ctx.send(
                    peer,
                    SacMsg::ShareBlock {
                        round: self.round,
                        from_pos: self.cfg.position,
                        parts: block,
                    },
                );
            }
        }
    }

    /// Positions whose blocks this peer has fully received.
    fn received_from(&self) -> BTreeSet<usize> {
        self.blocks.keys().copied().collect()
    }

    fn freeze_and_request_subtotals(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        let contributors = self.received_from();
        if contributors.is_empty() {
            self.phase = SacPhase::Failed("no contributors".into());
            return;
        }
        if contributors.len() < self.cfg.k {
            // Freezing below the threshold would publish an average the
            // round's `k` policy does not sanction (a retry round can get
            // here when its `Reconfigure` reaches the survivors after the
            // new share deadline). Treat it as a dead end: supervised
            // rounds abort and retry/fail, unsupervised rounds just fail.
            if self.cfg.round_deadline.is_some() {
                let suspects: BTreeSet<usize> = (0..self.cfg.n())
                    .filter(|j| !contributors.contains(j))
                    .collect();
                self.supervise(ctx, &suspects, "fewer than k contributors at freeze");
            } else {
                self.phase = SacPhase::Failed(format!(
                    "fewer than k contributors at freeze ({} < {})",
                    contributors.len(),
                    self.cfg.k
                ));
            }
            return;
        }
        self.frozen = Some(contributors.clone());
        let msg = SacMsg::ComputeOver {
            round: self.round,
            contributors: contributors.iter().copied().collect(),
        };
        let me = self.cfg.group[self.cfg.position];
        for &peer in &self.cfg.group.clone() {
            if peer != me {
                ctx.send(peer, msg.clone());
            }
        }
        // Compute our own block's subtotals immediately.
        self.compute_own_subtotals();
        self.phase = SacPhase::Collecting;
        ctx.set_timer(
            self.cfg.collect_deadline,
            timer_tag(TIMER_COLLECT_DEADLINE, self.round),
        );
        self.maybe_finish();
    }

    /// Subtotal for partition `p` over the frozen contributor set; `None`
    /// if some contributor's partition is missing locally.
    fn subtotal_over_frozen(&self, p: usize) -> Option<WeightVector> {
        let frozen = self.frozen.as_ref()?;
        let mut acc = WeightVector::zeros(self.model.dim());
        for &c in frozen {
            acc.add_assign(self.blocks.get(&c)?.get(&p)?);
        }
        Some(acc)
    }

    fn compute_own_subtotals(&mut self) {
        let n = self.cfg.n();
        for p in assigned_partitions(n, self.cfg.k, self.cfg.position) {
            if let Some(s) = self.subtotal_over_frozen(p) {
                self.subtotals.insert(p, s);
            }
        }
    }

    fn maybe_finish(&mut self) {
        if self.phase != SacPhase::Collecting {
            return;
        }
        let n = self.cfg.n();
        if self.subtotals.len() < n {
            return;
        }
        let Some(frozen) = self.frozen.as_ref() else {
            return;
        };
        let mut avg = WeightVector::zeros(self.model.dim());
        for p in 0..n {
            // Explicit grid check: the count alone does not prove every
            // partition 0..n is present.
            let Some(s) = self.subtotals.get(&p) else {
                return;
            };
            avg.add_assign(s);
        }
        avg.scale(1.0 / frozen.len() as f64);
        self.contributors = frozen.iter().copied().collect();
        self.result = Some(avg);
        self.phase = SacPhase::Done;
    }

    /// Follower-side progress: once the contributor set is frozen, send
    /// the primary subtotal as soon as it becomes computable (share blocks
    /// can arrive *after* `ComputeOver` on slow links), and answer any
    /// recovery requests that were waiting on missing partitions.
    fn follower_progress(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        if self.frozen.is_none() {
            return;
        }
        self.compute_own_subtotals();
        if !self.cfg.is_leader() && !self.sent_primary {
            let leader_block = assigned_partitions(self.cfg.n(), self.cfg.k, self.cfg.leader_pos);
            if !leader_block.contains(&self.cfg.position) {
                if let Some(s) = self.subtotals.get(&self.cfg.position).cloned() {
                    self.sent_primary = true;
                    ctx.send(
                        self.cfg.group[self.cfg.leader_pos],
                        SacMsg::Subtotal {
                            round: self.round,
                            idx: self.cfg.position,
                            value: s,
                        },
                    );
                }
            }
        }
        let pending = std::mem::take(&mut self.pending_requests);
        for (idx, from) in pending {
            if let Some(s) = self.subtotal_over_frozen(idx) {
                ctx.send(
                    from,
                    SacMsg::Subtotal {
                        round: self.round,
                        idx,
                        value: s,
                    },
                );
            } else {
                self.pending_requests.push((idx, from));
            }
        }
    }

    fn request_missing(&mut self, ctx: &mut dyn Transport<SacMsg>) {
        let n = self.cfg.n();
        let missing: Vec<usize> = (0..n).filter(|p| !self.subtotals.contains_key(p)).collect();
        if missing.is_empty() {
            return;
        }
        for &p in &missing {
            if self.requested.contains(&p) {
                // Second deadline with the request still unanswered: the
                // whole replica neighborhood is gone. Under supervision
                // the round aborts and retries without the unresponsive
                // holders; without it this is terminal.
                if self.cfg.round_deadline.is_some() {
                    let suspects: BTreeSet<usize> = missing
                        .iter()
                        .filter(|q| self.requested.contains(q))
                        .flat_map(|&q| holders(n, self.cfg.k, q))
                        .collect();
                    self.supervise(ctx, &suspects, &format!("partition {p} unrecoverable"));
                } else {
                    self.phase = SacPhase::Failed(format!("partition {p} unrecoverable"));
                }
                return;
            }
            self.requested.insert(p);
            // Ask every alternate holder; first response wins, duplicates
            // are idempotent inserts.
            for h in holders(n, self.cfg.k, p) {
                if h != self.cfg.position && h != p {
                    let peer = self.cfg.group[h];
                    ctx.send(
                        peer,
                        SacMsg::SubtotalRequest {
                            round: self.round,
                            idx: p,
                        },
                    );
                }
            }
            self.recoveries += 1;
        }
        ctx.set_timer(
            self.cfg.collect_deadline,
            timer_tag(TIMER_COLLECT_DEADLINE, self.round),
        );
    }
}

impl Actor<SacMsg> for SacPeerActor {
    fn on_message(&mut self, ctx: &mut dyn Transport<SacMsg>, from: NodeId, msg: SacMsg) {
        // Stash anything addressed to the round right after ours: our
        // `Begin` is still in flight on another connection. `Begin` and
        // `Reconfigure` advance the round themselves, so they are never
        // stashed. The bound makes a hostile or deeply desynchronized peer
        // a no-op, not a memory leak — and evictions are counted and
        // logged, not silent.
        let msg_round = match &msg {
            SacMsg::Begin { .. } | SacMsg::Reconfigure { .. } => None,
            SacMsg::Commit { round, .. }
            | SacMsg::ShareBlock { round, .. }
            | SacMsg::ComputeOver { round, .. }
            | SacMsg::Subtotal { round, .. }
            | SacMsg::SubtotalRequest { round, .. }
            | SacMsg::Abort { round, .. } => Some(*round),
        };
        if let Some(r) = msg_round {
            if r == self.round + 1 {
                if self.future.len() < 4 * self.cfg.n() {
                    self.future.push((from, msg));
                } else {
                    // Counted in `stash_evicted`, surfaced via NetStats.
                    self.stash_evicted += 1;
                }
                return;
            }
            // Messages for an aborted round are dead on arrival: its mask
            // material is gone, and a late ShareBlock (or a re-delivered
            // Abort) must not resurrect partial round state.
            if self.aborted == Some(r) && r == self.round {
                return;
            }
        }
        match msg {
            SacMsg::Begin { round } => {
                if self.cfg.is_leader() {
                    return; // only followers react to Begin
                }
                // Share distribution draws fresh randomness, so it must
                // run exactly once per round: a duplicated Begin for the
                // round in progress would emit a *different* share set and
                // break mask cancellation, and a stale Begin re-delivered
                // from an earlier round would regress the actor.
                #[cfg(feature = "mutants")]
                let guard_disabled =
                    crate::mutants::active(crate::mutants::Mutant::BeginRerandomize);
                #[cfg(not(feature = "mutants"))]
                let guard_disabled = false;
                if !guard_disabled
                    && (round < self.round
                        || (round == self.round && self.phase != SacPhase::Idle)
                        || self.aborted == Some(round))
                {
                    return;
                }
                self.reset_for(round);
                self.distribute_shares(ctx);
                self.arm_round_deadline(ctx);
                self.phase = SacPhase::Sharing;
                self.replay_future(ctx);
            }
            SacMsg::Commit {
                round,
                from_pos,
                digests,
            } => {
                // Out-of-roster sender positions are rejected so the
                // commitment table stays bounded by the roster size.
                if round != self.round || from_pos >= self.cfg.n() {
                    return;
                }
                self.commitments.insert(from_pos, digests);
            }
            SacMsg::ShareBlock {
                round,
                from_pos,
                parts,
            } => {
                if round != self.round {
                    return;
                }
                // Shape gate: a block whose sender position, partition
                // indices, or dimensions don't fit the roster/model is
                // Byzantine by construction. Reject it *before* it can
                // reach the subtotal arithmetic, whose `add_assign`
                // panics on dimension mismatch.
                let dim = self.model.dim();
                if from_pos >= self.cfg.n()
                    || parts
                        .iter()
                        .any(|(p, v)| *p >= self.cfg.n() || v.dim() != dim)
                {
                    self.shares_rejected += 1;
                    if from_pos < self.cfg.n() {
                        self.byzantine_detected.insert(from_pos);
                    }
                    return;
                }
                // Commitment check: every partition in the block must hash
                // to the digest its sender committed to for this round. A
                // mismatch convicts the sender (the commitment and the
                // block carry the same signature — its position — over the
                // same FIFO link) and rejects the whole block, turning the
                // Byzantine sender into an ordinary dropout. An absent
                // commitment is *not* a conviction: a peer that never
                // committed simply predates the check (mixed versions) and
                // is accepted as before.
                if self.verify_commitments {
                    if let Some(digests) = self.commitments.get(&from_pos) {
                        let consistent = parts
                            .iter()
                            .all(|(p, v)| digests.get(*p).is_some_and(|&d| d == v.digest()));
                        if !consistent {
                            self.shares_rejected += 1;
                            self.byzantine_detected.insert(from_pos);
                            self.blocks.remove(&from_pos);
                            return;
                        }
                    }
                }
                let entry = self.blocks.entry(from_pos).or_default();
                for (p, v) in parts {
                    entry.insert(p, v);
                }
                if self.cfg.is_leader() {
                    // Rejected senders will never be heard from again this
                    // round; counting them lets the leader freeze as soon
                    // as every *honest* block is in instead of burning the
                    // share deadline.
                    let settled = self.received_from().len()
                        + self
                            .byzantine_detected
                            .iter()
                            .filter(|p| !self.blocks.contains_key(p))
                            .count();
                    if self.phase == SacPhase::Sharing && settled == self.cfg.n() {
                        self.freeze_and_request_subtotals(ctx);
                    }
                } else {
                    self.follower_progress(ctx);
                }
            }
            SacMsg::ComputeOver {
                round,
                contributors,
            } => {
                if round != self.round || self.cfg.is_leader() {
                    return;
                }
                let _ = from; // leader is the sender of ComputeOver
                self.frozen = Some(contributors.into_iter().collect());
                // Primary-owner rule (paper lines 14-16): the k-1 peers
                // whose index the leader does not hold send their subtotal
                // — as soon as it is computable (blocks may still be in
                // flight on slow links).
                self.follower_progress(ctx);
            }
            SacMsg::Subtotal { round, idx, value } => {
                if round != self.round || !self.cfg.is_leader() {
                    return;
                }
                // Bounds/shape gate: an out-of-range index or a wrong-
                // dimension value must not enter the average.
                if idx >= self.cfg.n() || value.dim() != self.model.dim() {
                    self.shares_rejected += 1;
                    return;
                }
                self.subtotals.entry(idx).or_insert(value);
                self.maybe_finish();
            }
            SacMsg::SubtotalRequest { round, idx } => {
                if round != self.round || idx >= self.cfg.n() {
                    return;
                }
                if let Some(s) = self.subtotal_over_frozen(idx) {
                    ctx.send(
                        from,
                        SacMsg::Subtotal {
                            round: self.round,
                            idx,
                            value: s,
                        },
                    );
                } else {
                    // Can't serve yet (missing partitions); answer when the
                    // missing blocks arrive.
                    self.pending_requests.push((idx, from));
                }
            }
            SacMsg::Abort { round, reason } => {
                if round != self.round || self.cfg.is_leader() {
                    return;
                }
                let _ = reason;
                self.reset_for(round);
                self.aborted = Some(round);
                self.aborts += 1;
            }
            SacMsg::Reconfigure { round, group, k } => {
                if self.cfg.is_leader() {
                    return;
                }
                // Same freshness rules as Begin: never regress, never
                // re-randomize a round in progress, never revive an
                // aborted round.
                if round < self.round
                    || (round == self.round && self.phase != SacPhase::Idle)
                    || self.aborted == Some(round)
                {
                    return;
                }
                if k < 1 || k > group.len() {
                    return;
                }
                let me = self.me();
                if !group.contains(&me) {
                    // Evicted from the retry roster; sit this round out
                    // (the layer above re-admits us via the join path).
                    return;
                }
                if !group.contains(&from) {
                    return;
                }
                self.reconfigure(group, from, k);
                self.reset_for(round);
                self.distribute_shares(ctx);
                self.arm_round_deadline(ctx);
                self.phase = SacPhase::Sharing;
                self.replay_future(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport<SacMsg>, tag: u64) {
        let (base, round) = (tag & 0xff, tag >> 8);
        if round != self.round {
            return; // armed for a round that has since ended or aborted
        }
        match base {
            TIMER_SHARE_DEADLINE if self.cfg.is_leader() && self.phase == SacPhase::Sharing => {
                self.freeze_and_request_subtotals(ctx);
            }
            TIMER_COLLECT_DEADLINE
                if self.cfg.is_leader() && self.phase == SacPhase::Collecting =>
            {
                self.request_missing(ctx);
            }
            TIMER_ROUND_DEADLINE => {
                if self.cfg.is_leader() {
                    if matches!(self.phase, SacPhase::Sharing | SacPhase::Collecting) {
                        // The phase deadlines failed to finish the round in
                        // a whole supervisor window: abort and retry with
                        // whoever has been heard from.
                        let heard = self.received_from();
                        let suspects: BTreeSet<usize> =
                            (0..self.cfg.n()).filter(|j| !heard.contains(j)).collect();
                        self.supervise(ctx, &suspects, "round deadline expired");
                    }
                } else if self.phase == SacPhase::Sharing {
                    // Retire the round's share material: recovery requests
                    // for it will no longer be served. Count it as
                    // abandoned only if the contributor set never froze —
                    // a follower has no way to see a healthy round end, so
                    // a frozen round at deadline is a normal retirement.
                    if self.frozen.is_none() {
                        self.abandoned += 1;
                    }
                    self.reset_for(round);
                    self.aborted = Some(round);
                }
            }
            _ => {}
        }
    }

    fn stash_evicted(&self) -> u64 {
        self.stash_evicted
    }

    fn shares_rejected(&self) -> u64 {
        self.shares_rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_simnet::{Sim, SimTime, TimerId};

    fn build(
        n: usize,
        k: usize,
        dim: usize,
        seed: u64,
    ) -> (Sim<SacMsg>, Vec<NodeId>, Vec<WeightVector>) {
        let mut sim = Sim::new(seed);
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed + 999);
        let models: Vec<WeightVector> = (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect();
        for i in 0..n {
            let cfg = SacConfig {
                group: ids.clone(),
                position: i,
                leader_pos: 0,
                k,
                scheme: ShareScheme::Masked,
                engine: SacEngine::Pairwise,
                share_deadline: SimDuration::from_millis(100),
                collect_deadline: SimDuration::from_millis(100),
                round_deadline: None,
                seed: seed + i as u64,
            };
            let actual = sim.add_node(SacPeerActor::new(cfg, models[i].clone()));
            assert_eq!(actual, ids[i]);
        }
        (sim, ids, models)
    }

    fn start(sim: &mut Sim<SacMsg>, leader: NodeId, round: u64) {
        sim.run_until_quiet(100); // flush on_start events
        sim.exec::<SacPeerActor, _, _>(leader, |a, ctx| a.start_round(ctx, round));
    }

    /// Like [`build`] but with the round supervisor enabled on every peer.
    fn build_supervised(
        n: usize,
        k: usize,
        dim: usize,
        seed: u64,
        round_deadline: SimDuration,
    ) -> (Sim<SacMsg>, Vec<NodeId>, Vec<WeightVector>) {
        let mut sim = Sim::new(seed);
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed + 999);
        let models: Vec<WeightVector> = (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect();
        for i in 0..n {
            let cfg = SacConfig {
                group: ids.clone(),
                position: i,
                leader_pos: 0,
                k,
                scheme: ShareScheme::Masked,
                engine: SacEngine::Pairwise,
                share_deadline: SimDuration::from_millis(100),
                collect_deadline: SimDuration::from_millis(100),
                round_deadline: Some(round_deadline),
                seed: seed + i as u64,
            };
            let actual = sim.add_node(SacPeerActor::new(cfg, models[i].clone()));
            assert_eq!(actual, ids[i]);
        }
        (sim, ids, models)
    }

    fn plain_mean(models: &[WeightVector], idx: &[usize]) -> WeightVector {
        WeightVector::mean(idx.iter().map(|&i| &models[i]))
    }

    #[test]
    fn rekey_reseeds_and_the_round_still_averages() {
        // Re-keying every member onto the same roster must leave the
        // arithmetic intact: the fresh mask streams still cancel, so the
        // next round's result is exactly the plain mean.
        let (mut sim, ids, models) = build(4, 2, 8, 51);
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.actor::<SacPeerActor>(ids[0]).phase, SacPhase::Done);
        for (i, &id) in ids.iter().enumerate() {
            let group = ids.clone();
            let adopted =
                sim.actor_mut::<SacPeerActor>(id)
                    .rekey(group, ids[0], 2, 0xe1a5_71c0 + i as u64);
            assert!(adopted);
        }
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 2));
        sim.run_until(SimTime::from_secs(4));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3])) < 1e-9);
    }

    #[test]
    fn rekey_history_stays_fresh_for_identical_rosters() {
        let (mut sim, ids, _) = build(3, 2, 4, 52);
        sim.run_until_quiet(100);
        let a = sim.actor_mut::<SacPeerActor>(ids[1]);
        assert_eq!(a.mask_keys().len(), 1);
        // Same roster, same leader, twice — only the roster key differs
        // (a split immediately undone by a merge). Every domain is fresh.
        assert!(a.rekey(ids.clone(), ids[0], 2, 1));
        assert!(a.rekey(ids.clone(), ids[0], 2, 2));
        let hist = a.mask_keys().to_vec();
        assert_eq!(hist.len(), 3);
        let mut dedup = hist.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hist.len(), "mask domain reused: {hist:?}");
    }

    #[test]
    fn rekey_rejects_roster_without_this_peer() {
        let (mut sim, ids, _) = build(3, 2, 4, 53);
        sim.run_until_quiet(100);
        let a = sim.actor_mut::<SacPeerActor>(ids[2]);
        let before = a.mask_keys().to_vec();
        // A roster that drops this peer (or its leader) must be refused
        // without touching the mask stream.
        assert!(!a.rekey(vec![ids[0], ids[1]], ids[0], 2, 9));
        assert!(!a.rekey(ids.clone(), NodeId(99), 2, 9));
        assert!(!a.rekey(ids.clone(), ids[0], 4, 9));
        assert_eq!(a.mask_keys(), &before[..]);
    }

    #[test]
    fn happy_path_completes_with_plain_mean() {
        let (mut sim, ids, models) = build(5, 3, 16, 42);
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        assert_eq!(leader.contributors, vec![0, 1, 2, 3, 4]);
        assert_eq!(leader.recoveries, 0);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4])) < 1e-9);
    }

    #[test]
    fn after_share_crash_is_recovered() {
        let (mut sim, ids, models) = build(5, 3, 8, 7);
        start(&mut sim, ids[0], 1);
        // Shares settle within ~2 link delays (30ms); crash peer 4 after.
        sim.schedule_crash(ids[4], SimTime::from_millis(40));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        // Crashed peer shared before dying, so it still contributes.
        assert_eq!(leader.contributors, vec![0, 1, 2, 3, 4]);
        assert!(leader.recoveries >= 1);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4])) < 1e-9);
    }

    #[test]
    fn before_share_crash_is_excluded() {
        let (mut sim, ids, models) = build(5, 3, 8, 11);
        // Peer 3 dies before the round even starts.
        sim.run_until_quiet(100);
        sim.schedule_crash(ids[3], sim.now() + SimDuration::from_millis(1));
        sim.run_until_quiet(100);
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 4]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 4])) < 1e-9);
    }

    #[test]
    fn unrecoverable_when_all_holders_die() {
        // k = n means no replication: one post-share crash is fatal.
        let (mut sim, ids, _) = build(4, 4, 4, 13);
        start(&mut sim, ids[0], 1);
        sim.schedule_crash(ids[2], SimTime::from_millis(40));
        sim.run_until(SimTime::from_secs(3));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert!(
            matches!(leader.phase, SacPhase::Failed(_)),
            "phase: {:?}",
            leader.phase
        );
    }

    /// Transport stub recording sends — for driving an actor directly with
    /// an adversarial message *order*, which the simulator cannot express
    /// (its per-link delivery never reorders a `Begin` behind a later
    /// cross-peer `ShareBlock` deterministically).
    struct StubNet {
        id: NodeId,
        sent: Vec<(NodeId, SacMsg)>,
    }

    impl Transport<SacMsg> for StubNet {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn send(&mut self, to: NodeId, msg: SacMsg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _delay: SimDuration, _tag: u64) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _id: TimerId) {}
    }

    #[test]
    fn next_round_share_arriving_before_begin_is_replayed() {
        // Real transports only order frames per connection: peer 2 can see
        // peer 1's round-1 ShareBlock before the leader's Begin { 1 }.
        // The block must survive the race and count after Begin arrives.
        let ids: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();
        let cfg = SacConfig {
            group: ids.clone(),
            position: 2,
            leader_pos: 0,
            k: 3,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(1),
            collect_deadline: SimDuration::from_secs(1),
            round_deadline: None,
            seed: 77,
        };
        let mut actor = SacPeerActor::new(cfg, WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[2],
            sent: Vec::new(),
        };
        let early = SacMsg::ShareBlock {
            round: 1,
            from_pos: 1,
            parts: vec![(0, WeightVector::new(vec![0.5, 0.5]))],
        };
        actor.on_message(&mut net, ids[1], early);
        assert_eq!(actor.round, 0, "early block must not advance the round");
        assert!(
            actor.blocks.is_empty(),
            "early block must not be applied before Begin"
        );
        actor.on_message(&mut net, ids[0], SacMsg::Begin { round: 1 });
        assert_eq!(actor.round, 1);
        assert_eq!(actor.phase, SacPhase::Sharing);
        assert!(
            actor.blocks.contains_key(&1),
            "stashed block must be replayed after Begin"
        );

        // A message two rounds ahead is outside the stash window and a
        // flood cannot grow the stash without bound.
        actor.on_message(
            &mut net,
            ids[1],
            SacMsg::SubtotalRequest { round: 3, idx: 0 },
        );
        assert!(actor.future.is_empty(), "round+2 must not be stashed");
        for _ in 0..100 {
            actor.on_message(
                &mut net,
                ids[1],
                SacMsg::SubtotalRequest { round: 2, idx: 0 },
            );
        }
        assert!(actor.future.len() <= 12, "stash must stay bounded");
    }

    #[test]
    fn begin_aimed_at_leader_is_ignored() {
        let (mut sim, ids, _) = build(3, 2, 4, 42);
        sim.inject(
            ids[1],
            ids[0],
            SacMsg::Begin { round: 5 },
            SimDuration::from_millis(1),
        );
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.actor::<SacPeerActor>(ids[0]).phase, SacPhase::Idle);
    }

    #[test]
    fn duplicate_and_stale_begins_are_ignored() {
        let (mut sim, ids, models) = build(5, 3, 8, 31);
        start(&mut sim, ids[0], 2);
        // Re-deliver the in-flight Begin to one follower and a stale
        // round-1 Begin to another: neither may trigger a second share
        // distribution (fresh randomness would break mask cancellation)
        // or regress the follower's round.
        sim.inject(
            ids[0],
            ids[2],
            SacMsg::Begin { round: 2 },
            SimDuration::from_millis(20),
        );
        sim.inject(
            ids[0],
            ids[3],
            SacMsg::Begin { round: 1 },
            SimDuration::from_millis(25),
        );
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 3, 4]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4])) < 1e-9);
        assert_eq!(sim.actor::<SacPeerActor>(ids[3]).round, 2);
    }

    #[test]
    fn stale_round_messages_are_ignored() {
        let (mut sim, ids, _) = build(3, 2, 4, 21);
        start(&mut sim, ids[0], 3);
        // A stray share from an old round must not pollute round 3.
        sim.inject(
            ids[1],
            ids[0],
            SacMsg::Subtotal {
                round: 2,
                idx: 0,
                value: WeightVector::zeros(4),
            },
            SimDuration::from_millis(1),
        );
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done);
        assert_eq!(leader.round, 3);
    }

    #[test]
    fn share_traffic_dominates_ledger() {
        let (mut sim, ids, models) = build(5, 3, 64, 33);
        let wire = models[0].wire_bytes();
        start(&mut sim, ids[0], 1);
        sim.run_until(SimTime::from_secs(2));
        let m = sim.metrics();
        // Share phase: n(n-1) block messages of (n-k+1)|w| each (+8B header).
        let share = m.kind("sac.share");
        assert_eq!(share.msgs, 20);
        assert_eq!(share.bytes, 20 * (3 * wire + 8));
        // Subtotal phase: primary owners outside the leader's block.
        let sub = m.kind("sac.subtotal");
        assert_eq!(sub.msgs, 2); // k-1 = 2
    }

    #[test]
    fn supervised_unrecoverable_degrades_and_completes() {
        // Same scenario as `unrecoverable_when_all_holders_die` (k = n, so
        // a post-share crash kills the only holder of one partition), but
        // with the supervisor enabled: instead of a terminal failure the
        // leader aborts, evicts the unresponsive holder, and retries with
        // n' = 3 survivors and k' = min(4, 3) = 3 — the exact n' = k edge.
        let (mut sim, ids, models) = build_supervised(4, 4, 4, 13, SimDuration::from_millis(600));
        start(&mut sim, ids[0], 1);
        sim.schedule_crash(ids[2], SimTime::from_millis(40));
        sim.run_until(SimTime::from_secs(5));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.aborts, 1);
        assert_eq!(leader.round, 2, "retry must use a fresh round number");
        assert_eq!(leader.sac_config().group, vec![ids[0], ids[1], ids[3]]);
        assert_eq!(leader.sac_config().k, 3, "k' = min(k, n') at n' = k");
        assert_eq!(leader.contributors, vec![0, 1, 2]);
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 3])) < 1e-9);
    }

    #[test]
    fn supervised_refuses_below_two_members() {
        // Everyone but the leader dies before sharing: no retry roster of
        // size >= 2 exists, so the supervisor degrades to a refusal rather
        // than looping.
        let (mut sim, ids, _) = build_supervised(3, 3, 4, 17, SimDuration::from_millis(600));
        sim.run_until_quiet(100);
        let t = sim.now() + SimDuration::from_millis(1);
        sim.schedule_crash(ids[1], t);
        sim.schedule_crash(ids[2], t);
        sim.run_until_quiet(100);
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(5));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert!(
            matches!(&leader.phase, SacPhase::Failed(r) if r.contains("no contributors")
                || r.contains("below 2 members")),
            "phase: {:?}",
            leader.phase
        );
    }

    #[test]
    fn abort_after_late_share_block_is_idempotent() {
        let ids: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();
        let cfg = SacConfig {
            group: ids.clone(),
            position: 2,
            leader_pos: 0,
            k: 2,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(1),
            collect_deadline: SimDuration::from_secs(1),
            round_deadline: Some(SimDuration::from_secs(10)),
            seed: 99,
        };
        let mut actor = SacPeerActor::new(cfg, WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[2],
            sent: Vec::new(),
        };
        actor.on_message(&mut net, ids[0], SacMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Sharing);
        let block = SacMsg::ShareBlock {
            round: 1,
            from_pos: 1,
            parts: vec![(0, WeightVector::new(vec![0.5, 0.5]))],
        };
        actor.on_message(&mut net, ids[1], block.clone());
        assert!(actor.blocks.contains_key(&1));
        actor.on_message(
            &mut net,
            ids[0],
            SacMsg::Abort {
                round: 1,
                reason: "test".into(),
            },
        );
        assert_eq!(actor.phase, SacPhase::Idle);
        assert!(actor.blocks.is_empty(), "abort must drop all mask material");
        assert_eq!(actor.aborts, 1);

        // A late ShareBlock for the aborted round must not resurrect it.
        actor.on_message(&mut net, ids[0], block);
        assert!(actor.blocks.is_empty(), "late block after abort ignored");
        // A duplicate Abort is a no-op.
        actor.on_message(
            &mut net,
            ids[0],
            SacMsg::Abort {
                round: 1,
                reason: "dup".into(),
            },
        );
        assert_eq!(actor.aborts, 1, "duplicate abort must not double-count");
        // A re-delivered Begin for the aborted round must not redistribute
        // shares (single-randomization rule).
        let sends_before = net.sent.len();
        actor.on_message(&mut net, ids[0], SacMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Idle);
        assert_eq!(net.sent.len(), sends_before, "no re-randomized shares");

        // The retry Reconfigure restarts cleanly under the new roster.
        actor.on_message(
            &mut net,
            ids[0],
            SacMsg::Reconfigure {
                round: 2,
                group: vec![ids[0], ids[2]],
                k: 2,
            },
        );
        assert_eq!(actor.round, 2);
        assert_eq!(actor.phase, SacPhase::Sharing);
        assert_eq!(actor.sac_config().position, 1);
        assert_eq!(actor.sac_config().k, 2);
        assert!(
            net.sent.len() > sends_before,
            "retry must distribute fresh shares"
        );
    }

    #[test]
    fn reconfigure_excluding_this_peer_is_ignored() {
        let ids: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();
        let cfg = SacConfig {
            group: ids.clone(),
            position: 1,
            leader_pos: 0,
            k: 2,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(1),
            collect_deadline: SimDuration::from_secs(1),
            round_deadline: None,
            seed: 5,
        };
        let mut actor = SacPeerActor::new(cfg, WeightVector::new(vec![1.0]));
        let mut net = StubNet {
            id: ids[1],
            sent: Vec::new(),
        };
        actor.on_message(
            &mut net,
            ids[0],
            SacMsg::Reconfigure {
                round: 2,
                group: vec![ids[0], ids[2]],
                k: 2,
            },
        );
        assert_eq!(actor.round, 0, "evicted peer sits the round out");
        assert_eq!(actor.phase, SacPhase::Idle);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn follower_round_deadline_abandons_unclosed_round() {
        let ids: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();
        let cfg = SacConfig {
            group: ids.clone(),
            position: 1,
            leader_pos: 0,
            k: 2,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(1),
            collect_deadline: SimDuration::from_secs(1),
            round_deadline: Some(SimDuration::from_secs(2)),
            seed: 6,
        };
        let mut actor = SacPeerActor::new(cfg, WeightVector::new(vec![1.0]));
        let mut net = StubNet {
            id: ids[1],
            sent: Vec::new(),
        };
        actor.on_message(&mut net, ids[0], SacMsg::Begin { round: 1 });
        assert_eq!(actor.phase, SacPhase::Sharing);
        // Deadline for a *different* round is ignored.
        actor.on_timer(&mut net, timer_tag(TIMER_ROUND_DEADLINE, 7));
        assert_eq!(actor.phase, SacPhase::Sharing);
        // Deadline for the open round retires it: the leader never froze
        // the contributor set, so this counts as an abandonment.
        actor.on_timer(&mut net, timer_tag(TIMER_ROUND_DEADLINE, 1));
        assert_eq!(actor.phase, SacPhase::Idle);
        assert_eq!(actor.abandoned, 1);
        assert!(actor.blocks.is_empty());
        // A late recovery request for the retired round is not served.
        let sends = net.sent.len();
        actor.on_message(
            &mut net,
            ids[0],
            SacMsg::SubtotalRequest { round: 1, idx: 1 },
        );
        assert_eq!(net.sent.len(), sends);
        assert!(actor.pending_requests.is_empty());
    }

    #[test]
    fn skewed_shares_are_rejected_and_sender_evicted_from_round() {
        // Peer 3 commits to honest digests but sends shares scaled by 0.5
        // (the commit-then-skew attack). Every receiver's digest check must
        // reject its blocks, so the round completes over the honest four —
        // and the leader's average is the honest mean, not a poisoned one.
        let (mut sim, ids, models) = build(5, 3, 8, 51);
        sim.run_until_quiet(100);
        sim.exec::<SacPeerActor, _, _>(ids[3], |a, _| a.byz_share_skew = Some(0.5));
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 4], "skewer excluded");
        assert!(leader.shares_rejected >= 1);
        assert!(leader.byzantine_detected.contains(&3));
        let avg = leader.result.as_ref().unwrap();
        assert!(avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 4])) < 1e-9);
        // Followers reject the same blocks independently.
        for &id in &[ids[1], ids[2], ids[4]] {
            assert!(
                sim.actor::<SacPeerActor>(id).shares_rejected >= 1,
                "follower {id:?} accepted a skewed block"
            );
        }
    }

    #[test]
    fn without_commitment_checks_the_skew_poisons_the_average() {
        // The pinned negative twin of the test above: commitment checks
        // off, same attack. The skewed shares land in the sums and the
        // "secure" average is silently wrong — which is why the check
        // defaults to on.
        let (mut sim, ids, models) = build(5, 3, 8, 51);
        sim.run_until_quiet(100);
        for &id in &ids {
            sim.exec::<SacPeerActor, _, _>(id, |a, _| a.verify_commitments = false);
        }
        sim.exec::<SacPeerActor, _, _>(ids[3], |a, _| a.byz_share_skew = Some(0.5));
        sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
        sim.run_until(SimTime::from_secs(2));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "phase: {:?}", leader.phase);
        assert_eq!(leader.contributors, vec![0, 1, 2, 3, 4], "skewer included");
        assert_eq!(leader.shares_rejected, 0);
        let avg = leader.result.as_ref().unwrap();
        assert!(
            avg.linf_distance(&plain_mean(&models, &[0, 1, 2, 3, 4])) > 1e-3,
            "undefended round should have been poisoned"
        );
    }

    #[test]
    fn stash_eviction_is_counted_not_silent() {
        let ids: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();
        let cfg = SacConfig {
            group: ids.clone(),
            position: 2,
            leader_pos: 0,
            k: 3,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(1),
            collect_deadline: SimDuration::from_secs(1),
            round_deadline: None,
            seed: 77,
        };
        let mut actor = SacPeerActor::new(cfg, WeightVector::new(vec![1.0, 2.0]));
        let mut net = StubNet {
            id: ids[2],
            sent: Vec::new(),
        };
        // 4n = 12 messages fill the stash; everything beyond is evicted
        // and counted.
        for _ in 0..20 {
            actor.on_message(
                &mut net,
                ids[1],
                SacMsg::SubtotalRequest { round: 1, idx: 0 },
            );
        }
        assert_eq!(actor.future.len(), 12);
        assert_eq!(actor.stash_evicted, 8);
    }
}
