//! Lightweight communication ledger for the synchronous protocol paths.
//!
//! The message-driven engines run over `p2pfl-simnet` and use its metrics;
//! the synchronous reference implementations (used for the accuracy sweeps,
//! where simulating every byte would be pointless) count their logical
//! transfers here so the closed-form cost formulas can be cross-checked.

use std::collections::BTreeMap;

/// Counts logical peer-to-peer transfers by protocol phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferLog {
    by_phase: BTreeMap<&'static str, (u64, u64)>,
}

impl TransferLog {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer of `bytes` bytes in `phase`.
    pub fn record(&mut self, phase: &'static str, bytes: u64) {
        let e = self.by_phase.entry(phase).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// Total messages across phases.
    pub fn messages(&self) -> u64 {
        self.by_phase.values().map(|(m, _)| m).sum()
    }

    /// Total bytes across phases.
    pub fn bytes(&self) -> u64 {
        self.by_phase.values().map(|(_, b)| b).sum()
    }

    /// `(messages, bytes)` recorded for one phase.
    pub fn phase(&self, phase: &str) -> (u64, u64) {
        self.by_phase.get(phase).copied().unwrap_or((0, 0))
    }

    /// All phases in sorted order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, (u64, u64))> + '_ {
        self.by_phase.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another log into this one.
    pub fn absorb(&mut self, other: &TransferLog) {
        for (k, (m, b)) in &other.by_phase {
            let e = self.by_phase.entry(k).or_insert((0, 0));
            e.0 += m;
            e.1 += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut l = TransferLog::new();
        l.record("share", 10);
        l.record("share", 10);
        l.record("subtotal", 5);
        assert_eq!(l.messages(), 3);
        assert_eq!(l.bytes(), 25);
        assert_eq!(l.phase("share"), (2, 20));
        assert_eq!(l.phase("nothing"), (0, 0));
    }

    #[test]
    fn absorb_merges() {
        let mut a = TransferLog::new();
        a.record("x", 1);
        let mut b = TransferLog::new();
        b.record("x", 2);
        b.record("y", 3);
        a.absorb(&b);
        assert_eq!(a.phase("x"), (2, 3));
        assert_eq!(a.phase("y"), (1, 3));
    }
}
