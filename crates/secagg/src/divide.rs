//! Algorithm 1 — splitting a secret weight vector into `N` additive shares.
//!
//! Two share constructions are provided:
//!
//! * [`divide_scaled`] is the paper's Alg. 1 verbatim: draw `N` random
//!   numbers, normalize them into convex weights `prn_i`, and emit shares
//!   `par_w_i = prn_i · w`. Shares sum to `w` exactly (up to float error).
//!   Note that a *single* scaled share reveals the direction of `w`; the
//!   paper uses this construction anyway, so we keep it for fidelity and
//!   document the leak.
//! * [`divide_masked`] is standard additive masking: the first `N-1` shares
//!   are i.i.d. uniform noise in `[-mask_bound, mask_bound]` and the last is
//!   `w - Σ noise`. Any `N-1` shares are jointly independent of `w` (up to
//!   the finite mask range), which is the textbook security argument for
//!   additive secret sharing over bounded reals.
//!
//! Both satisfy the reconstruction invariant `Σ_i par_w_i = w` that every
//! SAC variant relies on.

use crate::weights::WeightVector;
use rand::Rng;

/// How shares are constructed by [`divide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ShareScheme {
    /// The paper's Alg. 1: random convex scaling of the whole vector.
    Scaled,
    /// Standard additive masking (default; see module docs).
    #[default]
    Masked,
}

/// Magnitude of the uniform masks used by [`divide_masked`]. Large enough to
/// swamp typical neural-network weights, small enough that `f64`
/// accumulation error stays ~1e-9 of a weight.
pub const DEFAULT_MASK_BOUND: f64 = 1e3;

/// Paper Alg. 1: splits `w` into `n` shares `prn_i · w` where the `prn_i`
/// are normalized positive random numbers summing to 1.
///
/// Panics if `n == 0`.
pub fn divide_scaled<R: Rng + ?Sized>(
    w: &WeightVector,
    n: usize,
    rng: &mut R,
) -> Vec<WeightVector> {
    assert!(n > 0, "cannot split into zero shares");
    // Draw strictly positive random numbers so the normalizer can't be 0.
    let rn: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..1.0)).collect();
    let total: f64 = rn.iter().sum();
    rn.iter().map(|&r| w.scaled(r / total)).collect()
}

/// Standard additive masking: `n-1` uniform noise shares plus a correction
/// share, summing exactly to `w`.
///
/// Panics if `n == 0`.
pub fn divide_masked<R: Rng + ?Sized>(
    w: &WeightVector,
    n: usize,
    rng: &mut R,
) -> Vec<WeightVector> {
    divide_masked_with_bound(w, n, DEFAULT_MASK_BOUND, rng)
}

/// [`divide_masked`] with an explicit mask magnitude.
///
/// Share generation is fused and chunked: each noise share is drawn
/// directly into its destination buffer and subtracted from the residual
/// chunk-by-chunk in the same sweep, halving the memory traffic of the
/// draw-then-subtract formulation (`divide_masked_reference`, the test
/// oracle) while drawing from the RNG in exactly the same order — the
/// shares are bit-identical to the reference.
pub fn divide_masked_with_bound<R: Rng + ?Sized>(
    w: &WeightVector,
    n: usize,
    mask_bound: f64,
    rng: &mut R,
) -> Vec<WeightVector> {
    assert!(n > 0, "cannot split into zero shares");
    let dim = w.dim();
    // Cache-sized stripe: noise generation and the residual update for one
    // chunk complete while the chunk is still resident.
    const CHUNK: usize = 4096;
    let mut shares: Vec<WeightVector> = Vec::with_capacity(n);
    let mut residual = w.clone().into_inner();
    for _ in 0..n - 1 {
        let mut noise = vec![0.0f64; dim];
        for (nc, rc) in noise.chunks_mut(CHUNK).zip(residual.chunks_mut(CHUNK)) {
            for (x, r) in nc.iter_mut().zip(rc.iter_mut()) {
                let v = rng.random_range(-mask_bound..=mask_bound);
                *x = v;
                *r -= v;
            }
        }
        shares.push(WeightVector::new(noise));
    }
    shares.push(WeightVector::new(residual));
    shares
}

/// The original two-pass formulation of [`divide_masked_with_bound`]:
/// draw a whole noise vector, then subtract it from the residual. Retained
/// as the differential-test oracle for the fused kernel.
#[cfg(test)]
pub(crate) fn divide_masked_reference<R: Rng + ?Sized>(
    w: &WeightVector,
    n: usize,
    mask_bound: f64,
    rng: &mut R,
) -> Vec<WeightVector> {
    assert!(n > 0, "cannot split into zero shares");
    let dim = w.dim();
    let mut shares: Vec<WeightVector> = Vec::with_capacity(n);
    let mut residual = w.clone();
    for _ in 0..n - 1 {
        let noise = WeightVector::random(dim, mask_bound, rng);
        residual.sub_assign(&noise);
        shares.push(noise);
    }
    shares.push(residual);
    shares
}

/// Splits `w` into `n` shares using `scheme`.
pub fn divide<R: Rng + ?Sized>(
    w: &WeightVector,
    n: usize,
    scheme: ShareScheme,
    rng: &mut R,
) -> Vec<WeightVector> {
    match scheme {
        ShareScheme::Scaled => divide_scaled(w, n, rng),
        ShareScheme::Masked => divide_masked(w, n, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstructs(shares: &[WeightVector], w: &WeightVector, tol: f64) {
        let sum = WeightVector::sum(shares.iter());
        assert!(
            sum.linf_distance(w) < tol,
            "reconstruction error {} over tol {tol}",
            sum.linf_distance(w)
        );
    }

    #[test]
    fn scaled_shares_sum_to_secret() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WeightVector::random(100, 1.0, &mut rng);
        for n in 1..=12 {
            let shares = divide_scaled(&w, n, &mut rng);
            assert_eq!(shares.len(), n);
            reconstructs(&shares, &w, 1e-12);
        }
    }

    #[test]
    fn masked_shares_sum_to_secret() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = WeightVector::random(100, 1.0, &mut rng);
        for n in 1..=12 {
            let shares = divide_masked(&w, n, &mut rng);
            assert_eq!(shares.len(), n);
            reconstructs(&shares, &w, 1e-9);
        }
    }

    #[test]
    fn single_share_is_the_secret() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = WeightVector::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(divide_scaled(&w, 1, &mut rng)[0], w);
        assert_eq!(divide_masked(&w, 1, &mut rng)[0], w);
    }

    #[test]
    fn masked_share_is_statistically_unrelated() {
        // A masked share of a zero vector and of a unit vector should look
        // the same at the resolution of the mask: its magnitude is dominated
        // by the mask bound, not the secret.
        let mut rng = StdRng::seed_from_u64(4);
        let w = WeightVector::new(vec![0.5; 1000]);
        let shares = divide_masked(&w, 5, &mut rng);
        // Non-final shares are pure noise with std ~ bound/sqrt(3).
        let rms = (shares[0].iter().map(|x| x * x).sum::<f64>() / 1000.0).sqrt();
        assert!(
            rms > DEFAULT_MASK_BOUND * 0.4,
            "rms {rms} too small for noise"
        );
    }

    #[test]
    fn scaled_share_leaks_direction() {
        // Documented limitation of the paper's Alg. 1: each share is a
        // positive multiple of w.
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightVector::new(vec![3.0, -1.0]);
        for share in divide_scaled(&w, 4, &mut rng) {
            let ratio = share[0] / w[0];
            assert!(ratio > 0.0);
            assert!((share[1] / w[1] - ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_masked_divide_is_bit_identical_to_reference() {
        // Same seed, same draw order: the fused chunked kernel must equal
        // the two-pass oracle exactly, across dims straddling the chunk
        // size and share counts from degenerate to 12.
        for (case, &dim) in [1usize, 7, 100, 4095, 4096, 4097, 9001].iter().enumerate() {
            for n in [1usize, 2, 5, 12] {
                let seed = 0xd1f + case as u64 * 31 + n as u64;
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let w = WeightVector::random(dim, 1.0, &mut StdRng::seed_from_u64(seed ^ 1));
                let fused = divide_masked_with_bound(&w, n, DEFAULT_MASK_BOUND, &mut rng_a);
                let reference = divide_masked_reference(&w, n, DEFAULT_MASK_BOUND, &mut rng_b);
                assert_eq!(fused, reference, "dim {dim}, n {n}");
            }
        }
    }

    #[test]
    fn dispatcher_routes() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = WeightVector::random(10, 1.0, &mut rng);
        reconstructs(&divide(&w, 4, ShareScheme::Scaled, &mut rng), &w, 1e-12);
        reconstructs(&divide(&w, 4, ShareScheme::Masked, &mut rng), &w, 1e-9);
    }
}
