//! Exact additive secret sharing over a fixed-point ring — an extension
//! beyond the paper.
//!
//! Floating-point additive shares (Alg. 1) reconstruct only up to rounding
//! error and their masks have bounded range, which weakens the secrecy
//! argument. This module quantizes weights to `Q32.24` fixed point and
//! shares them in the ring `Z_{2^64}` with wrapping arithmetic: shares are
//! uniform over the full ring, so any `N-1` of them are information-
//! theoretically independent of the secret, and reconstruction is *exact*.
//!
//! The two-layer system can swap this in for the float scheme when exact,
//! leak-free subgroup aggregation is worth the quantization (~6e-8 absolute
//! error per weight at the default scale).

use crate::weights::WeightVector;
use rand::Rng;

/// Fixed-point scale: 24 fractional bits.
pub const FRACT_BITS: u32 = 24;

/// One fixed-point share vector (ring elements in `Z_{2^64}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingShare(Vec<u64>);

impl RingShare {
    /// Number of elements.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Wire size: 8 bytes per ring element (twice the float wire format —
    /// the redundancy/precision trade-off is documented in DESIGN.md).
    pub fn wire_bytes(&self) -> u64 {
        self.0.len() as u64 * 8
    }

    /// Wrapping elementwise sum of shares.
    pub fn wrapping_add_assign(&mut self, other: &RingShare) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = a.wrapping_add(*b);
        }
    }
}

fn encode_one(x: f64) -> u64 {
    let scaled = (x * (1u64 << FRACT_BITS) as f64).round();
    // Two's complement embedding of the signed value into the ring.
    (scaled as i64) as u64
}

fn decode_one(r: u64) -> f64 {
    (r as i64) as f64 / (1u64 << FRACT_BITS) as f64
}

/// Quantizes a weight vector into the ring.
pub fn encode(w: &WeightVector) -> RingShare {
    RingShare(w.iter().map(|&x| encode_one(x)).collect())
}

/// Dequantizes a ring vector back to floats.
pub fn decode(r: &RingShare) -> WeightVector {
    r.0.iter().map(|&x| decode_one(x)).collect()
}

/// Splits `w` into `n` ring shares that wrap-sum to `encode(w)`. All but
/// the last share are uniform over the full ring.
pub fn divide_ring<R: Rng + ?Sized>(w: &WeightVector, n: usize, rng: &mut R) -> Vec<RingShare> {
    assert!(n > 0, "cannot split into zero shares");
    let secret = encode(w);
    let dim = secret.dim();
    let mut shares: Vec<RingShare> = (0..n - 1)
        .map(|_| RingShare((0..dim).map(|_| rng.random::<u64>()).collect()))
        .collect();
    let mut last = secret;
    for s in &shares {
        for (l, v) in last.0.iter_mut().zip(&s.0) {
            *l = l.wrapping_sub(*v);
        }
    }
    shares.push(last);
    shares
}

/// Reconstructs the secret sum of the *original* vectors from everyone's
/// shares: wrap-sum all shares, then decode. Exact up to quantization of
/// the inputs (no accumulation error).
pub fn reconstruct_sum(shares_per_peer: &[Vec<RingShare>]) -> WeightVector {
    assert!(!shares_per_peer.is_empty(), "no shares");
    let n = shares_per_peer[0].len();
    assert!(
        shares_per_peer.iter().all(|s| s.len() == n),
        "inconsistent share counts"
    );
    let dim = shares_per_peer[0][0].dim();
    let mut acc = RingShare(vec![0u64; dim]);
    for peer in shares_per_peer {
        for share in peer {
            acc.wrapping_add_assign(share);
        }
    }
    decode(&acc)
}

/// Exact SAC over the ring: returns the average of `models`.
pub fn secure_average_exact<R: Rng + ?Sized>(models: &[WeightVector], rng: &mut R) -> WeightVector {
    let n = models.len();
    assert!(n > 0, "SAC requires at least one peer");
    let all: Vec<Vec<RingShare>> = models.iter().map(|m| divide_ring(m, n, rng)).collect();
    let mut sum = reconstruct_sum(&all);
    sum.scale(1.0 / n as f64);
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_round_trip() {
        let w = WeightVector::new(vec![0.5, -1.25, 3.0e-5, -7.75]);
        let d = decode(&encode(&w));
        assert!(w.linf_distance(&d) < 1e-7);
    }

    #[test]
    fn ring_shares_reconstruct_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WeightVector::random(64, 2.0, &mut rng);
        for n in 1..=8 {
            let shares = divide_ring(&w, n, &mut rng);
            let sum = reconstruct_sum(&[shares]);
            // Exactly the quantized secret: error bounded by encode error.
            assert!(sum.linf_distance(&decode(&encode(&w))) == 0.0, "n={n}");
        }
    }

    #[test]
    fn exact_sac_matches_plain_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let ms: Vec<WeightVector> = (0..6)
            .map(|_| WeightVector::random(32, 1.0, &mut rng))
            .collect();
        let plain = WeightVector::mean(ms.iter());
        let avg = secure_average_exact(&ms, &mut rng);
        // Quantization only: 6 models * 2^-24 / 6 per element worst case.
        assert!(avg.linf_distance(&plain) < 1e-6);
    }

    #[test]
    fn shares_are_full_range_uniform() {
        // Sanity check on the security argument: the first share of a zero
        // vector should span the ring, not cluster near the encoding of 0.
        let mut rng = StdRng::seed_from_u64(3);
        let w = WeightVector::zeros(4096);
        let s = &divide_ring(&w, 3, &mut rng)[0];
        let high_bit_set = s.0.iter().filter(|&&x| x >> 63 == 1).count();
        let frac = high_bit_set as f64 / 4096.0;
        assert!((frac - 0.5).abs() < 0.05, "high-bit fraction {frac}");
    }

    #[test]
    fn negative_values_survive_wrapping() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = WeightVector::new(vec![-123.456; 8]);
        let shares = divide_ring(&w, 5, &mut rng);
        let sum = reconstruct_sum(&[shares]);
        assert!(sum.linf_distance(&w) < 1e-6);
    }
}
