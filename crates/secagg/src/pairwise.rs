//! Pairwise-mask secure aggregation — the Bonawitz et al. (ACM CCS'17)
//! baseline the paper's related work compares against (Sec. II-B, reference 8).
//!
//! Every ordered pair of peers `(i, j)` agrees on a seed (in the real
//! protocol via Diffie–Hellman; here seeds are dealt by the test harness,
//! which preserves the aggregation math and cost structure). Peer `i`
//! submits `w_i + Σ_{j>i} PRG(s_ij) − Σ_{j<i} PRG(s_ji)`; summing all
//! submissions cancels every mask. A dropout is repaired by revealing the
//! dead peer's pairwise seeds so the server can subtract its orphaned
//! masks (the paper notes the recovery overhead this creates).
//!
//! Communication per round: `N` masked models to the server plus the
//! `O(N²)` seed agreement (amortizable across rounds) — contrast with the
//! paper's two-layer system in `p2pfl::cost`.

use crate::weights::WeightVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Derives the shared mask vector for the ordered pair `(low, high)`.
/// Only used by tests as the oracle for [`apply_mask`]; production paths
/// stream the PRG instead of materializing the mask.
#[cfg(test)]
fn mask(seed: u64, dim: usize) -> WeightVector {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightVector::new((0..dim).map(|_| rng.random_range(-1e3..1e3)).collect())
}

/// Streams `sign * PRG(seed)` into `out` without allocating the mask
/// vector: the PRG draw order matches [`mask`] exactly, so the result is
/// bit-identical to materialize-then-add at half the memory traffic and
/// zero allocations — the protocol's mask-apply hot path.
fn apply_mask(out: &mut WeightVector, seed: u64, positive: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    for x in out.as_mut_slice() {
        let m: f64 = rng.random_range(-1e3..1e3);
        if positive {
            *x += m;
        } else {
            *x -= m;
        }
    }
}

/// The pairwise seeds of one aggregation group: `seed(i, j)` for `i < j`.
#[derive(Debug, Clone)]
pub struct PairwiseSeeds {
    n: usize,
    seeds: HashMap<(usize, usize), u64>,
}

impl PairwiseSeeds {
    /// Deals fresh random pairwise seeds for `n` peers.
    pub fn deal<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut seeds = HashMap::new();
        for i in 0..n {
            for j in i + 1..n {
                seeds.insert((i, j), rng.random());
            }
        }
        PairwiseSeeds { n, seeds }
    }

    /// The seed shared by `i` and `j` (order-insensitive).
    pub fn seed(&self, i: usize, j: usize) -> u64 {
        assert!(i != j, "no self seed");
        let key = (i.min(j), i.max(j));
        self.seeds[&key]
    }

    /// Number of peers.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Peer `i`'s masked submission.
pub fn masked_update(seeds: &PairwiseSeeds, i: usize, w: &WeightVector) -> WeightVector {
    let n = seeds.n();
    assert!(i < n, "peer index out of range");
    let mut out = w.clone();
    for j in 0..n {
        if j == i {
            continue;
        }
        apply_mask(&mut out, seeds.seed(i, j), i < j);
    }
    out
}

/// Server-side aggregation: sums the submissions of `alive` peers and
/// repairs the masks orphaned by `dropped` peers using their revealed
/// seeds. Returns the average over the *alive* contributors.
///
/// Panics if a dropped peer also appears in `alive`.
pub fn aggregate(
    seeds: &PairwiseSeeds,
    submissions: &[(usize, WeightVector)],
    dropped: &[usize],
) -> WeightVector {
    assert!(!submissions.is_empty(), "no submissions");
    let dim = submissions[0].1.dim();
    let alive: Vec<usize> = submissions.iter().map(|(i, _)| *i).collect();
    for d in dropped {
        assert!(!alive.contains(d), "dropped peer cannot also submit");
    }
    let mut sum = WeightVector::zeros(dim);
    for (_, s) in submissions {
        sum.add_assign(s);
    }
    // Masks between two alive peers cancel; masks between an alive peer
    // and a dropped peer are orphaned and must be subtracted using the
    // revealed seed (the Bonawitz recovery step).
    for &a in &alive {
        for &d in dropped {
            apply_mask(&mut sum, seeds.seed(a, d), a > d);
        }
    }
    sum.scale(1.0 / alive.len() as f64);
    sum
}

/// Per-round communication in model units for the pairwise baseline:
/// `N` uploads + 1 broadcast model back to each peer (`N`), ignoring the
/// (amortized) seed agreement.
pub fn pairwise_round_units(n: usize) -> f64 {
    (2 * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(n: usize, dim: usize, seed: u64) -> Vec<WeightVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WeightVector::random(dim, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn streamed_mask_matches_materialized_oracle() {
        let mut out = WeightVector::zeros(257);
        apply_mask(&mut out, 0x5eed, true);
        assert_eq!(out, mask(0x5eed, 257));
        apply_mask(&mut out, 0x5eed, false);
        assert_eq!(out, WeightVector::zeros(257), "mask must cancel exactly");
    }

    #[test]
    fn masks_cancel_with_everyone_alive() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 6;
        let ms = models(n, 32, 2);
        let seeds = PairwiseSeeds::deal(n, &mut rng);
        let subs: Vec<(usize, WeightVector)> = (0..n)
            .map(|i| (i, masked_update(&seeds, i, &ms[i])))
            .collect();
        let got = aggregate(&seeds, &subs, &[]);
        let plain = WeightVector::mean(ms.iter());
        assert!(
            got.linf_distance(&plain) < 1e-8,
            "err {}",
            got.linf_distance(&plain)
        );
    }

    #[test]
    fn single_submission_is_fully_masked() {
        // The server learns nothing from one masked update: it differs
        // from the raw model by mask-magnitude noise.
        let mut rng = StdRng::seed_from_u64(3);
        let ms = models(4, 256, 4);
        let seeds = PairwiseSeeds::deal(4, &mut rng);
        let sub = masked_update(&seeds, 0, &ms[0]);
        let rms = (sub
            .iter()
            .zip(ms[0].iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / 256.0)
            .sqrt();
        assert!(rms > 100.0, "masking too weak: rms {rms}");
    }

    #[test]
    fn dropout_recovery_subtracts_orphaned_masks() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5;
        let ms = models(n, 16, 6);
        let seeds = PairwiseSeeds::deal(n, &mut rng);
        // Peer 2 drops after the others computed their masked updates.
        let subs: Vec<(usize, WeightVector)> = (0..n)
            .filter(|&i| i != 2)
            .map(|i| (i, masked_update(&seeds, i, &ms[i])))
            .collect();
        let got = aggregate(&seeds, &subs, &[2]);
        let plain = WeightVector::mean((0..n).filter(|&i| i != 2).map(|i| &ms[i]));
        assert!(
            got.linf_distance(&plain) < 1e-8,
            "err {}",
            got.linf_distance(&plain)
        );
    }

    #[test]
    fn two_dropouts_recover_too() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 6;
        let ms = models(n, 8, 8);
        let seeds = PairwiseSeeds::deal(n, &mut rng);
        let dropped = [1usize, 4];
        let subs: Vec<(usize, WeightVector)> = (0..n)
            .filter(|i| !dropped.contains(i))
            .map(|i| (i, masked_update(&seeds, i, &ms[i])))
            .collect();
        let got = aggregate(&seeds, &subs, &dropped);
        let plain = WeightVector::mean((0..n).filter(|i| !dropped.contains(i)).map(|i| &ms[i]));
        assert!(got.linf_distance(&plain) < 1e-8);
    }

    #[test]
    fn round_units_are_linear() {
        assert_eq!(pairwise_round_units(30), 60.0);
    }

    #[test]
    #[should_panic(expected = "dropped peer cannot also submit")]
    fn inconsistent_dropout_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let ms = models(3, 4, 10);
        let seeds = PairwiseSeeds::deal(3, &mut rng);
        let subs: Vec<(usize, WeightVector)> = (0..3)
            .map(|i| (i, masked_update(&seeds, i, &ms[i])))
            .collect();
        let _ = aggregate(&seeds, &subs, &[1]);
    }
}
