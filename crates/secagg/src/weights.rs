//! Flat weight vectors — the unit of aggregation.
//!
//! Every protocol in this workspace treats a model as an opaque flat vector
//! of parameters. Arithmetic is done in `f64` for accumulation accuracy, but
//! the *wire format* is 32-bit floats (matching the paper's PyTorch models),
//! so communication cost is `4 * len` bytes per transmitted vector.

use rand::Rng;
use std::ops::{Deref, Index};

/// Bytes per parameter on the wire (f32, as in the paper's PyTorch models).
pub const WIRE_BYTES_PER_PARAM: u64 = 4;

/// A flat vector of model parameters.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct WeightVector(Vec<f64>);

impl WeightVector {
    /// Wraps an existing parameter vector.
    pub fn new(data: Vec<f64>) -> Self {
        WeightVector(data)
    }

    /// An all-zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        WeightVector(vec![0.0; dim])
    }

    /// A vector with i.i.d. uniform entries in `[-bound, bound]`.
    pub fn random<R: Rng + ?Sized>(dim: usize, bound: f64, rng: &mut R) -> Self {
        WeightVector((0..dim).map(|_| rng.random_range(-bound..=bound)).collect())
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Serialized size in bytes under the f32 wire format.
    pub fn wire_bytes(&self) -> u64 {
        self.0.len() as u64 * WIRE_BYTES_PER_PARAM
    }

    /// Borrow the raw parameters.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrow the raw parameters.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the raw parameters.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// `self += other`, elementwise. Panics on dimension mismatch.
    pub fn add_assign(&mut self, other: &WeightVector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// `self -= other`, elementwise. Panics on dimension mismatch.
    pub fn sub_assign(&mut self, other: &WeightVector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a -= b;
        }
    }

    /// `self *= s`, elementwise.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.0 {
            *a *= s;
        }
    }

    /// Fused `self += s * other` in one pass — the axpy kernel behind
    /// weighted averaging and mask application. One memory traversal and
    /// no temporary, where `scaled` + `add_assign` costs an allocation and
    /// two traversals. Panics on dimension mismatch.
    pub fn add_scaled(&mut self, other: &WeightVector, s: f64) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += s * b;
        }
    }

    /// Returns `self * s` without mutating.
    pub fn scaled(&self, s: f64) -> WeightVector {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// Sums a non-empty iterator of vectors. Panics if empty or mismatched.
    pub fn sum<'a, I: IntoIterator<Item = &'a WeightVector>>(iter: I) -> WeightVector {
        let mut it = iter.into_iter();
        let first = it.next().expect("summing zero vectors");
        let mut acc = first.clone();
        for v in it {
            acc.add_assign(v);
        }
        acc
    }

    /// Arithmetic mean of a non-empty iterator of vectors.
    pub fn mean<'a, I: IntoIterator<Item = &'a WeightVector>>(iter: I) -> WeightVector {
        let vs: Vec<&WeightVector> = iter.into_iter().collect();
        let n = vs.len();
        let mut acc = WeightVector::sum(vs);
        acc.scale(1.0 / n as f64);
        acc
    }

    /// Weighted mean `Σ w_i v_i / Σ w_i` — the FedAvg update law.
    /// Panics if `weights` and the vector count differ or all weights are 0.
    pub fn weighted_mean(vectors: &[WeightVector], weights: &[f64]) -> WeightVector {
        assert_eq!(vectors.len(), weights.len(), "weight count mismatch");
        assert!(!vectors.is_empty(), "weighted mean of zero vectors");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut acc = WeightVector::zeros(vectors[0].dim());
        for (v, &w) in vectors.iter().zip(weights) {
            acc.add_scaled(v, w / total);
        }
        acc
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn linf_distance(&self, other: &WeightVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// FNV-1a hash over the exact bit patterns of the entries. Two vectors
    /// digest equally iff they are bit-for-bit identical, which is how the
    /// real-network examples prove parity with a simulator run of the same
    /// aggregation.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for x in &self.0 {
            for b in x.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl Deref for WeightVector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl Index<usize> for WeightVector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl From<Vec<f64>> for WeightVector {
    fn from(v: Vec<f64>) -> Self {
        WeightVector(v)
    }
}

impl FromIterator<f64> for WeightVector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        WeightVector(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arithmetic() {
        let mut a = WeightVector::new(vec![1.0, 2.0]);
        let b = WeightVector::new(vec![0.5, -1.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 1.0]);
        a.sub_assign(&b);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_scaled_matches_scale_then_add() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = WeightVector::random(257, 1.0, &mut rng);
        let w = WeightVector::random(257, 1.0, &mut rng);
        let mut fused = v.clone();
        fused.add_scaled(&w, -0.375);
        let mut two_pass = v.clone();
        two_pass.add_assign(&w.scaled(-0.375));
        assert_eq!(fused, two_pass, "fused axpy must be bit-identical");
    }

    #[test]
    fn mean_and_weighted_mean() {
        let vs = vec![
            WeightVector::new(vec![1.0, 0.0]),
            WeightVector::new(vec![3.0, 2.0]),
        ];
        assert_eq!(WeightVector::mean(vs.iter()).as_slice(), &[2.0, 1.0]);
        // Weighted: 3:1 toward the second vector.
        let wm = WeightVector::weighted_mean(&vs, &[1.0, 3.0]);
        assert_eq!(wm.as_slice(), &[2.5, 1.5]);
    }

    #[test]
    fn wire_bytes_is_four_per_param() {
        assert_eq!(WeightVector::zeros(1_248_394).wire_bytes(), 4 * 1_248_394);
    }

    #[test]
    fn distances() {
        let a = WeightVector::new(vec![0.0, 3.0]);
        let b = WeightVector::new(vec![4.0, 0.0]);
        assert_eq!(a.linf_distance(&b), 4.0);
        assert_eq!(b.l2_norm(), 4.0);
    }

    #[test]
    fn digest_distinguishes_bit_changes() {
        let a = WeightVector::new(vec![1.0, 2.0, 3.0]);
        let b = WeightVector::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.digest(), b.digest());
        // One ulp — the smallest possible bitwise change.
        let c = WeightVector::new(vec![1.0, 2.0, f64::from_bits(3.0f64.to_bits() + 1)]);
        assert_ne!(a.digest(), c.digest());
        // -0.0 == 0.0 numerically but differs bitwise; digest must see it.
        assert_ne!(
            WeightVector::new(vec![0.0]).digest(),
            WeightVector::new(vec![-0.0]).digest()
        );
    }

    #[test]
    fn random_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = WeightVector::random(1000, 0.25, &mut rng);
        assert!(v.iter().all(|x| x.abs() <= 0.25));
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let mut a = WeightVector::zeros(2);
        a.add_assign(&WeightVector::zeros(3));
    }
}
