//! `#[derive(Serialize, Deserialize)]` for the workspace serde shim.
//!
//! Implemented directly on the compiler's `proc_macro` token API (no
//! syn/quote — the container is offline). The parser extracts exactly what
//! code generation needs: the type name, its generic parameters, and field
//! *names* per struct/variant. Field *types* are never parsed: generated
//! deserialization code binds each field through a struct literal, so the
//! compiler infers every `Deserialize` call's target type.
//!
//! Supported shapes: structs (named, tuple, unit) and enums whose variants
//! are unit, named, or tuple; generics with optional bounds. `where` clauses
//! and const generics are not supported — the workspace doesn't use them on
//! serialized types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

impl Mode {
    fn bound(self) -> &'static str {
        match self {
            Mode::Ser => "::serde::Serialize",
            Mode::De => "::serde::Deserialize",
        }
    }
}

/// One generic parameter as written, e.g. `'a`, `C`, or `C: Command`.
struct GenericParam {
    /// Source text of the whole parameter (ident plus any bounds).
    src: String,
    /// Just the parameter name, e.g. `'a` or `C`.
    ident: String,
    /// Whether the parameter already has a `:` bounds list.
    has_bounds: bool,
    /// Whether this is a lifetime parameter.
    is_lifetime: bool,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<GenericParam>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = parse_input(input);
    let code = match mode {
        Mode::Ser => gen_serialize(&parsed),
        Mode::De => gen_deserialize(&parsed),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    let generics = if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        parse_generics(&tokens, &mut i)
    } else {
        Vec::new()
    };

    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive: `where` clauses are not supported");
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, i)),
        "enum" => Shape::Enum(parse_enum_body(&tokens, i)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };

    Input {
        name,
        generics,
        shape,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Parses `<...>` starting at the `<`; leaves `i` past the matching `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    *i += 1; // consume '<'
    let mut depth = 1usize;
    let mut body = Vec::new();
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                body.push(tokens[*i].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    body.push(tokens[*i].clone());
                }
            }
            Some(t) => body.push(t.clone()),
            None => panic!("serde_derive: unterminated generic parameter list"),
        }
        *i += 1;
    }

    split_top_level(&body)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let is_lifetime = matches!(&seg[0], TokenTree::Punct(p) if p.as_char() == '\'');
            let ident = if is_lifetime {
                format!("'{}", seg[1])
            } else {
                match &seg[0] {
                    TokenTree::Ident(id) if id.to_string() == "const" => {
                        panic!("serde_derive: const generics are not supported")
                    }
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: unexpected generic token {other}"),
                }
            };
            let has_bounds = seg
                .iter()
                .any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ':'));
            GenericParam {
                src: tokens_to_string(&seg),
                ident,
                has_bounds,
                is_lifetime,
            }
        })
        .collect()
}

/// Splits a token slice on commas that are not nested inside `<...>`
/// (group delimiters nest automatically as single tokens).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                out.last_mut().unwrap().push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                out.last_mut().unwrap().push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(Vec::new());
            }
            _ => out.last_mut().unwrap().push(t.clone()),
        }
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        s.push_str(&t.to_string());
        s.push(' ');
    }
    s
}

fn parse_struct_body(tokens: &[TokenTree], i: usize) -> Fields {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_field_names(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(count_tuple_fields(&inner))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("serde_derive: unexpected struct body {other:?}"),
    }
}

/// Extracts field names from `name: Type, ...` (attributes/vis allowed).
fn parse_named_field_names(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(tokens)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut j = 0;
            skip_attrs_and_vis(&seg, &mut j);
            match &seg[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    split_top_level(tokens)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_enum_body(tokens: &[TokenTree], i: usize) -> Vec<Variant> {
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: expected enum body, found {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&inner)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut j = 0;
            skip_attrs_and_vis(&seg, &mut j);
            let name = match &seg[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            j += 1;
            let fields = match seg.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_field_names(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                None => Fields::Unit,
                other => panic!("serde_derive: unexpected variant body {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

// ----------------------------------------------------------- generation

/// `<C: Command + ::serde::Serialize, 'a>`-style impl generics.
fn impl_generics(input: &Input, mode: Mode) -> String {
    if input.generics.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = input
        .generics
        .iter()
        .map(|g| {
            if g.is_lifetime {
                g.src.clone()
            } else if g.has_bounds {
                format!("{} + {}", g.src, mode.bound())
            } else {
                format!("{}: {}", g.src, mode.bound())
            }
        })
        .collect();
    format!("<{}>", parts.join(", "))
}

/// `<C, 'a>`-style type generics.
fn type_generics(input: &Input) -> String {
    if input.generics.is_empty() {
        return String::new();
    }
    let idents: Vec<&str> = input.generics.iter().map(|g| g.ident.as_str()).collect();
    format!("<{}>", idents.join(", "))
}

fn field_count(f: &Fields) -> usize {
    match f {
        Fields::Unit => 0,
        Fields::Named(names) => names.len(),
        Fields::Tuple(n) => *n,
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let ig = impl_generics(input, Mode::Ser);
    let tg = type_generics(input);
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut b = format!(
                "::serde::Serializer::begin_struct(__s, \"{name}\", {})?;\n",
                field_count(fields)
            );
            match fields {
                Fields::Unit => {}
                Fields::Named(names) => {
                    for f in names {
                        b.push_str(&format!(
                            "::serde::Serializer::field(__s, \"{f}\")?;\n\
                             ::serde::Serialize::serialize(&self.{f}, __s)?;\n"
                        ));
                    }
                }
                Fields::Tuple(n) => {
                    for idx in 0..*n {
                        b.push_str(&format!(
                            "::serde::Serializer::field(__s, \"{idx}\")?;\n\
                             ::serde::Serialize::serialize(&self.{idx}, __s)?;\n"
                        ));
                    }
                }
            }
            b.push_str("::serde::Serializer::end_struct(__s)\n");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let n = field_count(&v.fields);
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => {{\n\
                             ::serde::Serializer::begin_variant(__s, \"{name}\", {vi}u32, \"{vname}\", 0)?;\n\
                             ::serde::Serializer::end_variant(__s)\n}}\n"
                        ));
                    }
                    Fields::Named(names) => {
                        let pat = names.join(", ");
                        let mut inner = format!(
                            "::serde::Serializer::begin_variant(__s, \"{name}\", {vi}u32, \"{vname}\", {n})?;\n"
                        );
                        for f in names {
                            inner.push_str(&format!(
                                "::serde::Serializer::field(__s, \"{f}\")?;\n\
                                 ::serde::Serialize::serialize({f}, __s)?;\n"
                            ));
                        }
                        inner.push_str("::serde::Serializer::end_variant(__s)\n");
                        arms.push_str(&format!("{name}::{vname} {{ {pat} }} => {{\n{inner}}}\n"));
                    }
                    Fields::Tuple(count) => {
                        let binds: Vec<String> = (0..*count).map(|k| format!("__t{k}")).collect();
                        let pat = binds.join(", ");
                        let mut inner = format!(
                            "::serde::Serializer::begin_variant(__s, \"{name}\", {vi}u32, \"{vname}\", {n})?;\n"
                        );
                        for (k, bname) in binds.iter().enumerate() {
                            inner.push_str(&format!(
                                "::serde::Serializer::field(__s, \"{k}\")?;\n\
                                 ::serde::Serialize::serialize({bname}, __s)?;\n"
                            ));
                        }
                        inner.push_str("::serde::Serializer::end_variant(__s)\n");
                        arms.push_str(&format!("{name}::{vname}({pat}) => {{\n{inner}}}\n"));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Serialize for {name}{tg} {{\n\
         fn serialize<__S: ::serde::Serializer + ?Sized>(&self, __s: &mut __S)\n\
         -> ::core::result::Result<(), __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let ig = impl_generics(input, Mode::De);
    let tg = type_generics(input);
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut b = format!(
                "::serde::Deserializer::begin_struct(__d, \"{name}\", {})?;\n",
                field_count(fields)
            );
            let ctor = match fields {
                Fields::Unit => name.to_string(),
                Fields::Named(names) => {
                    let mut init = Vec::new();
                    for f in names {
                        b.push_str(&format!(
                            "::serde::Deserializer::field(__d, \"{f}\")?;\n\
                             let __f_{f} = ::serde::Deserialize::deserialize(__d)?;\n"
                        ));
                        init.push(format!("{f}: __f_{f}"));
                    }
                    format!("{name} {{ {} }}", init.join(", "))
                }
                Fields::Tuple(n) => {
                    let mut init = Vec::new();
                    for idx in 0..*n {
                        b.push_str(&format!(
                            "::serde::Deserializer::field(__d, \"{idx}\")?;\n\
                             let __f_{idx} = ::serde::Deserialize::deserialize(__d)?;\n"
                        ));
                        init.push(format!("__f_{idx}"));
                    }
                    format!("{name}({})", init.join(", "))
                }
            };
            b.push_str("::serde::Deserializer::end_struct(__d)?;\n");
            b.push_str(&format!("::core::result::Result::Ok({ctor})\n"));
            b
        }
        Shape::Enum(variants) => {
            let table: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let expr = match &v.fields {
                    Fields::Unit => format!("{name}::{vname}"),
                    Fields::Named(names) => {
                        let mut inner = String::new();
                        let mut init = Vec::new();
                        for f in names {
                            inner.push_str(&format!(
                                "::serde::Deserializer::field(__d, \"{f}\")?;\n\
                                 let __f_{f} = ::serde::Deserialize::deserialize(__d)?;\n"
                            ));
                            init.push(format!("{f}: __f_{f}"));
                        }
                        format!("{{\n{inner}{name}::{vname} {{ {} }}\n}}", init.join(", "))
                    }
                    Fields::Tuple(count) => {
                        let mut inner = String::new();
                        let mut init = Vec::new();
                        for k in 0..*count {
                            inner.push_str(&format!(
                                "::serde::Deserializer::field(__d, \"{k}\")?;\n\
                                 let __f_{k} = ::serde::Deserialize::deserialize(__d)?;\n"
                            ));
                            init.push(format!("__f_{k}"));
                        }
                        format!("{{\n{inner}{name}::{vname}({})\n}}", init.join(", "))
                    }
                };
                arms.push_str(&format!("{vi}u32 => {expr},\n"));
            }
            format!(
                "let __idx = ::serde::Deserializer::begin_variant(__d, \"{name}\", &[{}])?;\n\
                 let __value = match __idx {{\n{arms}\
                 _ => return ::core::result::Result::Err(\
                 ::serde::Deserializer::invalid(__d, \"variant index out of range\")),\n}};\n\
                 ::serde::Deserializer::end_variant(__d)?;\n\
                 ::core::result::Result::Ok(__value)\n",
                table.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Deserialize for {name}{tg} {{\n\
         fn deserialize<__D: ::serde::Deserializer + ?Sized>(__d: &mut __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
