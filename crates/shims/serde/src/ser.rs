//! Serialization half of the event-based data model.

/// An event-stream serializer. Backends (binary codec, JSON writer) decide
/// which events carry bytes; e.g. the binary codec ignores struct/field
/// names entirely while JSON ignores variant indices.
pub trait Serializer {
    /// Backend error type.
    type Error: std::fmt::Debug;

    /// Writes a boolean.
    fn ser_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Writes an unsigned integer (all widths funnel through `u64`).
    fn ser_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Writes a signed integer (all widths funnel through `i64`).
    fn ser_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Writes an `f32`.
    fn ser_f32(&mut self, v: f32) -> Result<(), Self::Error>;
    /// Writes an `f64`.
    fn ser_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Writes a string.
    fn ser_str(&mut self, v: &str) -> Result<(), Self::Error>;

    /// Starts a sequence of `len` elements.
    fn begin_seq(&mut self, len: usize) -> Result<(), Self::Error>;
    /// Marks the start of the next sequence element.
    fn seq_element(&mut self) -> Result<(), Self::Error>;
    /// Ends the current sequence.
    fn end_seq(&mut self) -> Result<(), Self::Error>;

    /// Starts a struct with `len` fields.
    fn begin_struct(&mut self, name: &'static str, len: usize) -> Result<(), Self::Error>;
    /// Marks the next struct or variant field; its value follows.
    fn field(&mut self, name: &'static str) -> Result<(), Self::Error>;
    /// Ends the current struct.
    fn end_struct(&mut self) -> Result<(), Self::Error>;

    /// Starts enum variant `variant` (number `index`) with `len` fields.
    fn begin_variant(
        &mut self,
        name: &'static str,
        index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<(), Self::Error>;
    /// Ends the current enum variant.
    fn end_variant(&mut self) -> Result<(), Self::Error>;

    /// Writes an absent `Option`.
    fn ser_none(&mut self) -> Result<(), Self::Error>;
    /// Announces a present `Option`; the value follows.
    fn begin_some(&mut self) -> Result<(), Self::Error>;
}

/// Types that can write themselves to any [`Serializer`].
pub trait Serialize {
    /// Streams `self` into `s`.
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                s.ser_u64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                s.ser_i64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.ser_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.ser_f32(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.ser_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.ser_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.ser_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        s.begin_seq(self.len())?;
        for item in self {
            s.seq_element()?;
            item.serialize(s)?;
        }
        s.end_seq()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            None => s.ser_none(),
            Some(v) => {
                s.begin_some()?;
                v.serialize(s)
            }
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:ident $idx:tt),+; $len:expr))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) -> Result<(), S::Error> {
                s.begin_seq($len)?;
                $(
                    s.seq_element()?;
                    self.$idx.serialize(s)?;
                )+
                s.end_seq()
            }
        }
    )*};
}
ser_tuple! {
    (A 0, B 1; 2)
    (A 0, B 1, C 2; 3)
    (A 0, B 1, C 2, D 3; 4)
}
