//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace carries its
//! own small serialization framework under the `serde` name. The data model
//! is deliberately simpler than real serde's: a [`Serializer`] /
//! [`Deserializer`] pair of *event stream* traits (primitives, sequences,
//! structs, enum variants, options) that both the binary wire codec in
//! `p2pfl-net` and the JSON writer in [`json`] implement.
//!
//! `#[derive(serde::Serialize, serde::Deserialize)]` works via the companion
//! `serde_derive` proc-macro crate, re-exported here.

pub use serde_derive::{Deserialize, Serialize};

mod de;
pub mod json;
mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(test)]
mod tests {
    use super::json;

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq, Clone)]
    struct Plain {
        id: u32,
        weight: f64,
        name: String,
        flags: Vec<bool>,
        note: Option<i64>,
    }

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq, Clone)]
    struct Pair(u64, f32);

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq, Clone)]
    enum Shape<T> {
        Empty,
        Dot { x: T, y: T },
        Path(Vec<T>, bool),
    }

    #[test]
    fn json_export_shapes() {
        let p = Plain {
            id: 7,
            weight: 2.5,
            name: "a\"b".into(),
            flags: vec![true, false],
            note: None,
        };
        let s = json::to_string(&p);
        assert_eq!(
            s,
            r#"{"id":7,"weight":2.5,"name":"a\"b","flags":[true,false],"note":null}"#
        );

        assert_eq!(json::to_string(&Shape::<u8>::Empty), r#""Empty""#);
        assert_eq!(
            json::to_string(&Shape::Dot { x: 1u8, y: 2 }),
            r#"{"Dot":{"x":1,"y":2}}"#
        );
        assert_eq!(
            json::to_string(&Shape::Path(vec![3u8], true)),
            r#"{"Path":{"0":[3],"1":true}}"#
        );
        assert_eq!(json::to_string(&Pair(1, 0.5)), r#"{"0":1,"1":0.5}"#);
        assert_eq!(json::to_string(&Some(4u8)), "4");
        assert_eq!(json::to_string(&(1u8, -2i64)), "[1,-2]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&f64::INFINITY), "null");
    }
}
