//! JSON export backend for the event-based data model.
//!
//! Write-only: used to dump traces and metrics for external tooling (e.g.
//! `simnet::Trace::to_json`). Structs become objects, sequences arrays, enum
//! variants externally-tagged objects (`{"Variant":{..}}`, bare `"Variant"`
//! when the variant is a unit), options become the value or `null`, and
//! non-finite floats serialize as `null`.

use crate::ser::{Serialize, Serializer};
use std::convert::Infallible;

#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    Struct { first: bool },
    Seq { first: bool },
    UnitVariant,
    StructVariant { first: bool },
}

/// Streams the event model into a JSON string.
pub struct JsonSerializer {
    out: String,
    stack: Vec<Ctx>,
}

impl JsonSerializer {
    /// An empty serializer.
    pub fn new() -> Self {
        JsonSerializer {
            out: String::new(),
            stack: Vec::new(),
        }
    }

    /// Returns the accumulated JSON.
    pub fn into_string(self) -> String {
        self.out
    }

    fn push_str_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl Default for JsonSerializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Serializer for JsonSerializer {
    type Error = Infallible;

    fn ser_bool(&mut self, v: bool) -> Result<(), Infallible> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn ser_u64(&mut self, v: u64) -> Result<(), Infallible> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn ser_i64(&mut self, v: i64) -> Result<(), Infallible> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn ser_f32(&mut self, v: f32) -> Result<(), Infallible> {
        self.ser_f64(v as f64)
    }

    fn ser_f64(&mut self, v: f64) -> Result<(), Infallible> {
        if v.is_finite() {
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn ser_str(&mut self, v: &str) -> Result<(), Infallible> {
        self.push_str_escaped(v);
        Ok(())
    }

    fn begin_seq(&mut self, _len: usize) -> Result<(), Infallible> {
        self.out.push('[');
        self.stack.push(Ctx::Seq { first: true });
        Ok(())
    }

    fn seq_element(&mut self) -> Result<(), Infallible> {
        if let Some(Ctx::Seq { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
        Ok(())
    }

    fn end_seq(&mut self) -> Result<(), Infallible> {
        self.stack.pop();
        self.out.push(']');
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _len: usize) -> Result<(), Infallible> {
        self.out.push('{');
        self.stack.push(Ctx::Struct { first: true });
        Ok(())
    }

    fn field(&mut self, name: &'static str) -> Result<(), Infallible> {
        if let Some(Ctx::Struct { first } | Ctx::StructVariant { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
        self.push_str_escaped(name);
        self.out.push(':');
        Ok(())
    }

    fn end_struct(&mut self) -> Result<(), Infallible> {
        self.stack.pop();
        self.out.push('}');
        Ok(())
    }

    fn begin_variant(
        &mut self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<(), Infallible> {
        if len == 0 {
            self.push_str_escaped(variant);
            self.stack.push(Ctx::UnitVariant);
        } else {
            self.out.push('{');
            self.push_str_escaped(variant);
            self.out.push_str(":{");
            self.stack.push(Ctx::StructVariant { first: true });
        }
        Ok(())
    }

    fn end_variant(&mut self) -> Result<(), Infallible> {
        match self.stack.pop() {
            Some(Ctx::StructVariant { .. }) => self.out.push_str("}}"),
            _ => {}
        }
        Ok(())
    }

    fn ser_none(&mut self) -> Result<(), Infallible> {
        self.out.push_str("null");
        Ok(())
    }

    fn begin_some(&mut self) -> Result<(), Infallible> {
        Ok(())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = JsonSerializer::new();
    match value.serialize(&mut s) {
        Ok(()) => {}
    }
    s.into_string()
}
