//! Deserialization half of the event-based data model.

/// An event-stream deserializer mirroring [`crate::Serializer`]. The caller
/// announces what it expects (field names, variant tables) so self-describing
/// backends can validate while compact binary backends just consume bytes.
pub trait Deserializer {
    /// Backend error type.
    type Error: std::fmt::Debug;

    /// Reads a boolean.
    fn de_bool(&mut self) -> Result<bool, Self::Error>;
    /// Reads an unsigned integer.
    fn de_u64(&mut self) -> Result<u64, Self::Error>;
    /// Reads a signed integer.
    fn de_i64(&mut self) -> Result<i64, Self::Error>;
    /// Reads an `f32`.
    fn de_f32(&mut self) -> Result<f32, Self::Error>;
    /// Reads an `f64`.
    fn de_f64(&mut self) -> Result<f64, Self::Error>;
    /// Reads a string.
    fn de_string(&mut self) -> Result<String, Self::Error>;

    /// Starts a sequence, returning its length.
    fn begin_seq(&mut self) -> Result<usize, Self::Error>;
    /// Marks the start of the next sequence element.
    fn seq_element(&mut self) -> Result<(), Self::Error>;
    /// Ends the current sequence.
    fn end_seq(&mut self) -> Result<(), Self::Error>;

    /// Starts a struct with `len` expected fields.
    fn begin_struct(&mut self, name: &'static str, len: usize) -> Result<(), Self::Error>;
    /// Positions at the named field; its value follows.
    fn field(&mut self, name: &'static str) -> Result<(), Self::Error>;
    /// Ends the current struct.
    fn end_struct(&mut self) -> Result<(), Self::Error>;

    /// Starts an enum value, returning the variant index within `variants`.
    fn begin_variant(
        &mut self,
        name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<u32, Self::Error>;
    /// Ends the current enum variant.
    fn end_variant(&mut self) -> Result<(), Self::Error>;

    /// Reads an `Option` discriminant: `true` means a value follows.
    fn de_option(&mut self) -> Result<bool, Self::Error>;

    /// Builds an error for data that parsed but is semantically invalid.
    fn invalid(&mut self, msg: &'static str) -> Self::Error;
}

/// Types that can be rebuilt from any [`Deserializer`].
pub trait Deserialize: Sized {
    /// Reads one value from `d`.
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error>;
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
                let raw = d.de_u64()?;
                <$t>::try_from(raw).map_err(|_| d.invalid("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, usize);

impl Deserialize for u64 {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_u64()
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
                let raw = d.de_i64()?;
                <$t>::try_from(raw).map_err(|_| d.invalid("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, isize);

impl Deserialize for i64 {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_i64()
    }
}

impl Deserialize for bool {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_bool()
    }
}

impl Deserialize for f32 {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_f32()
    }
}

impl Deserialize for f64 {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_f64()
    }
}

impl Deserialize for String {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        d.de_string()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        let n = d.begin_seq()?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            d.seq_element()?;
            out.push(T::deserialize(d)?);
        }
        d.end_seq()?;
        Ok(out)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize<D: Deserializer + ?Sized>(d: &mut D) -> Result<Self, D::Error> {
        if d.de_option()? {
            Ok(Some(T::deserialize(d)?))
        } else {
            Ok(None)
        }
    }
}

macro_rules! de_tuple {
    ($(($($n:ident),+; $len:expr))*) => {$(
        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {
            // `De`, not `D`: the 4-tuple impl uses `D` as an element type.
            fn deserialize<De: Deserializer + ?Sized>(d: &mut De) -> Result<Self, De::Error> {
                let n = d.begin_seq()?;
                if n != $len {
                    return Err(d.invalid("tuple arity mismatch"));
                }
                let out = ($(
                    {
                        d.seq_element()?;
                        <$n as Deserialize>::deserialize(d)?
                    },
                )+);
                d.end_seq()?;
                Ok(out)
            }
        }
    )*};
}
de_tuple! {
    (A, B; 2)
    (A, B, C; 3)
    (A, B, C, D; 4)
}
