//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_with_input` /
//! `Bencher::iter` surface the workspace benches use, backed by a simple
//! mean-of-N wall-clock timer instead of criterion's full statistical
//! machinery. Reports one line per benchmark to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded but only echoed in the report).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (after one untimed warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_and_report(full_name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {full_name:<50} {:>12.3} µs/iter", per_iter * 1e6);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            samples: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_and_report(&name.to_string(), 10, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Records the per-iteration throughput (echoed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.samples, &mut |b| f(b, input));
        self
    }

    /// Runs an unparameterized benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.samples, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("id", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| 9));
    }
}
