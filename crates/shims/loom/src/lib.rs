//! Offline stand-in for the `loom` crate.
//!
//! Implements the subset of loom's API the workspace's concurrency tests
//! use: [`model`], `loom::thread::{spawn, yield_now}`, and
//! `loom::sync::{Arc, Mutex}` plus the `AtomicBool`/`AtomicU64` cells.
//!
//! Real loom exhaustively enumerates thread interleavings by intercepting
//! every synchronization operation. This shim cannot do that offline;
//! instead it is a *stress-iteration* runner: [`model`] executes the
//! closure [`DEFAULT_ITERS`] times (override with `LOOM_MAX_ITERS`), and
//! every wrapped primitive operation injects a randomized
//! `std::thread::yield_now` with probability 1/4, so distinct OS-level
//! interleavings are actually exercised rather than the same lucky one
//! repeating. Tests written against this shim remain valid loom models:
//! swapping in the real crate tightens coverage without code changes.

use std::cell::Cell;

/// Iterations [`model`] runs when `LOOM_MAX_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 64;

thread_local! {
    static YIELD_RNG: Cell<u64> = const { Cell::new(0x9e37_79b9_7f4a_7c15) };
}

/// Randomly (p = 1/4) yields the OS scheduler. Called by every wrapped
/// primitive op to perturb interleavings across [`model`] iterations.
fn maybe_yield() {
    let r = YIELD_RNG.with(|c| {
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        x
    });
    if r & 3 == 0 {
        std::thread::yield_now();
    }
}

/// Runs `f` repeatedly, perturbing thread interleavings each iteration.
///
/// Real loom explores the interleaving space exhaustively; this shim
/// stress-iterates it. Panics (assertion failures inside the model)
/// propagate on the iteration that hit them.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        // Re-seed the per-iteration yield pattern so iterations differ.
        YIELD_RNG.with(|c| c.set(0x9e37_79b9_7f4a_7c15 ^ (i as u64).wrapping_mul(0x85eb_ca6b)));
        f();
    }
}

pub mod thread {
    //! Thread spawning with yield perturbation at spawn boundaries.

    pub use std::thread::JoinHandle;

    /// As `std::thread::spawn`, with a scheduling perturbation first.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::maybe_yield();
        std::thread::spawn(f)
    }

    /// Yields the OS scheduler (loom's explicit preemption point).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! Synchronization primitives with yield injection on every operation.

    use std::sync::LockResult;

    pub use std::sync::Arc;

    /// `std::sync::Mutex` with a scheduling perturbation before each lock.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a mutex holding `value`.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquires the lock, as `std::sync::Mutex::lock`.
        pub fn lock(&self) -> LockResult<std::sync::MutexGuard<'_, T>> {
            crate::maybe_yield();
            self.0.lock()
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    pub mod atomic {
        //! Atomic cells with yield injection on every access.

        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Std-backed atomic with scheduling perturbation per op.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates the cell holding `v`.
                    pub fn new(v: $val) -> Self {
                        $name(<$std>::new(v))
                    }

                    /// Atomic load.
                    pub fn load(&self, o: Ordering) -> $val {
                        crate::maybe_yield();
                        self.0.load(o)
                    }

                    /// Atomic store.
                    pub fn store(&self, v: $val, o: Ordering) {
                        crate::maybe_yield();
                        self.0.store(v, o);
                    }

                    /// Atomic swap.
                    pub fn swap(&self, v: $val, o: Ordering) -> $val {
                        crate::maybe_yield();
                        self.0.swap(v, o)
                    }
                }
            };
        }

        shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        impl AtomicU64 {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
                crate::maybe_yield();
                self.0.fetch_add(v, o)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: u64, o: Ordering) -> u64 {
                crate::maybe_yield();
                self.0.fetch_max(v, o)
            }
        }

        impl AtomicUsize {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
                crate::maybe_yield();
                self.0.fetch_add(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_counts() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), super::DEFAULT_ITERS as u64);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        *n.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
    }
}
