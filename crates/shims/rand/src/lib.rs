//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the rand 0.9 API it actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `random()` / `random_range()`, and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator the real crate uses. Streams are therefore *different* from
//! upstream rand, but every generator in the workspace is seeded explicitly,
//! so determinism within the workspace (simulation replay, share
//! reconstruction, test expectations) is fully preserved.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an rng ("standard" distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps a raw 64-bit draw onto `[0, span)` without modulo bias
/// (fixed-point multiply; bias is < 2^-64 per draw, irrelevant here).
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX || span.wrapping_add(1) == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit: $t = StandardSample::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                // 53 (or 24) uniform bits mapped onto the closed interval.
                let unit: $t = StandardSample::sample(rng);
                let v = lo + (hi - lo) * unit;
                if v > hi { hi } else { v }
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value from the standard (uniform) distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Name kept from the real crate so call sites (`rand::rngs::StdRng`)
    /// compile unchanged; the stream differs from upstream's ChaCha12.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0u64..=5);
            assert!(w <= 5);
            let s = r.random_range(-3i64..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = r.random_range(-0.25f64..=0.25);
            assert!(v.abs() <= 0.25);
            let w = r.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn range_mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_ref_and_dyn_style_bounds() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(1u64..=6)
        }
        let mut r = StdRng::seed_from_u64(21);
        let v = takes_generic(&mut r);
        assert!((1..=6).contains(&v));
    }
}
