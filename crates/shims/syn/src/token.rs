//! The token model: a lossy-but-faithful token-tree representation of
//! Rust source. Comments and whitespace are dropped; every remaining
//! token keeps its 1-based source line so lint findings stay clickable.

use std::fmt;

/// Bracket kind of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
}

/// A delimited subtree.
#[derive(Debug, Clone)]
pub struct Group {
    /// Which bracket pair delimits the subtree.
    pub delimiter: Delimiter,
    /// The tokens between the brackets.
    pub stream: TokenStream,
    /// Line of the opening bracket.
    pub line: usize,
}

/// An identifier or keyword (keywords are not distinguished lexically).
#[derive(Debug, Clone)]
pub struct Ident {
    /// The identifier text, without any `r#` raw prefix.
    pub text: String,
    /// Source line.
    pub line: usize,
}

/// A single punctuation character. Multi-character operators (`::`,
/// `->`, `=>`) appear as consecutive `Punct` tokens.
#[derive(Debug, Clone)]
pub struct Punct {
    /// The character.
    pub ch: char,
    /// Source line.
    pub line: usize,
}

/// A literal: string, byte string, char, byte, or number, kept verbatim.
#[derive(Debug, Clone)]
pub struct Literal {
    /// The literal text exactly as written (including quotes/prefixes).
    pub text: String,
    /// Source line.
    pub line: usize,
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited subtree.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// Source line of the token (opening bracket for groups).
    pub fn line(&self) -> usize {
        match self {
            TokenTree::Group(g) => g.line,
            TokenTree::Ident(i) => i.line,
            TokenTree::Punct(p) => p.line,
            TokenTree::Literal(l) => l.line,
        }
    }

    /// The identifier text, if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(&i.text),
            _ => None,
        }
    }

    /// The punctuation character, if this token is punctuation.
    pub fn as_punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(p) => Some(p.ch),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.as_punct() == Some(ch)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, text: &str) -> bool {
        self.as_ident() == Some(text)
    }

    /// The group, if this token is a delimited subtree.
    pub fn as_group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            _ => None,
        }
    }
}

/// A flat sequence of token trees.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    /// The trees, in source order.
    pub trees: Vec<TokenTree>,
}

impl TokenStream {
    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Iterates the top-level trees (no descent into groups).
    pub fn iter(&self) -> std::slice::Iter<'_, TokenTree> {
        self.trees.iter()
    }

    /// Visits every token in the stream, descending into groups in
    /// source order. The callback receives each tree exactly once;
    /// groups are visited before their contents.
    pub fn visit(&self, f: &mut dyn FnMut(&TokenTree)) {
        for t in &self.trees {
            f(t);
            if let TokenTree::Group(g) = t {
                g.stream.visit(f);
            }
        }
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match t {
                TokenTree::Group(g) => {
                    let (open, close) = match g.delimiter {
                        Delimiter::Parenthesis => ('(', ')'),
                        Delimiter::Brace => ('{', '}'),
                        Delimiter::Bracket => ('[', ']'),
                    };
                    write!(f, "{open}{}{close}", g.stream)?;
                }
                TokenTree::Ident(i) => write!(f, "{}", i.text)?,
                TokenTree::Punct(p) => write!(f, "{}", p.ch)?,
                TokenTree::Literal(l) => write!(f, "{}", l.text)?,
            }
        }
        Ok(())
    }
}
