//! Offline stand-in for the `syn` crate: a Rust lexer, token-tree
//! builder, and item-level parser. The build environment has no
//! crates.io access, so like the other `crates/shims/*` crates this
//! vendors exactly the API surface the workspace needs — here, enough
//! of `syn` for `p2pfl-lint` to walk every source file as a structured
//! AST (items, impls, attributes, function bodies as token streams)
//! instead of line-by-line string matching.
//!
//! What this is **not**: a full expression parser. Function bodies stay
//! as [`TokenStream`]s, which is the right granularity for the lint's
//! token-pattern rules and keeps the parser small enough to audit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lex;
pub mod parse;
pub mod token;

pub use parse::{
    parse_file, Attribute, File, Item, ItemEnum, ItemFn, ItemImpl, ItemMod, ItemStruct, ItemTrait,
};
pub use token::{Delimiter, Group, Ident, Literal, Punct, TokenStream, TokenTree};

/// A parse error with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Error {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        match parse_file(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parses_functions_and_bodies() {
        let f = parse("pub fn add(a: u32, b: u32) -> u32 { a + b }\nfn private() {}");
        assert_eq!(f.items.len(), 2);
        let Item::Fn(add) = &f.items[0] else {
            panic!("expected fn");
        };
        assert_eq!(add.ident, "add");
        assert!(add.vis_pub);
        assert!(add.block.is_some());
        assert_eq!(add.line, 1);
    }

    #[test]
    fn parses_impl_blocks_with_traits_and_generics() {
        let f = parse(
            "impl<M: Clone + 'static> p2pfl_simnet::Actor<M> for RaftActor<M>\nwhere M: Send {\n    fn on_message(&mut self, from: NodeId, msg: M) { self.n += 1; }\n}",
        );
        let Item::Impl(im) = &f.items[0] else {
            panic!("expected impl");
        };
        assert_eq!(im.trait_name.as_deref(), Some("Actor"));
        assert_eq!(im.self_ty, "RaftActor");
        assert_eq!(im.items.len(), 1);
        let Item::Fn(m) = &im.items[0] else {
            panic!("expected method");
        };
        assert_eq!(m.ident, "on_message");
    }

    #[test]
    fn parses_inherent_impls() {
        let f = parse("impl Foo { fn bar(&self) -> Result<(), E> { Ok(()) } }");
        let Item::Impl(im) = &f.items[0] else {
            panic!("expected impl");
        };
        assert!(im.trait_name.is_none());
        assert_eq!(im.self_ty, "Foo");
    }

    #[test]
    fn parses_structs_enums_and_derives() {
        let f = parse(
            "#[derive(Debug, serde::Serialize, serde::Deserialize)]\npub struct WireThing<T> { pub x: T }\n#[cfg(test)]\nmod tests { pub enum Hidden { A } }",
        );
        let Item::Struct(s) = &f.items[0] else {
            panic!("expected struct");
        };
        assert_eq!(s.ident, "WireThing");
        assert!(s.attrs[0].path_ident() == Some("derive"));
        let Item::Mod(m) = &f.items[1] else {
            panic!("expected mod");
        };
        assert!(m.attrs[0].is_cfg_test());
        assert!(matches!(
            m.content.as_deref(),
            Some([Item::Enum(e)]) if e.ident == "Hidden"
        ));
    }

    #[test]
    fn survives_trivia_strings_chars_lifetimes() {
        let f = parse(
            r##"
//! inner doc
/* block /* nested */ comment */
fn tricky<'a>(s: &'a str) -> char {
    let _raw = r#"not a " terminator"#;
    let _b = b"bytes\x00";
    let _c = '\'';
    let _q = b'"';
    let _f = 1.5e-3;
    let _r = 0..s.len();
    's'
}
"##,
        );
        let Item::Fn(t) = &f.items[0] else {
            panic!("expected fn");
        };
        assert_eq!(t.ident, "tricky");
        assert!(t.block.is_some());
    }

    #[test]
    fn keeps_verbatim_items_and_macros() {
        let f = parse(
            "use std::fmt::Write as _;\nconst LIMIT: usize = 4;\nmacro_rules! m { () => {} }\nthread_local! { static X: u8 = 0; }",
        );
        assert_eq!(f.items.len(), 4);
        assert!(f.items.iter().all(|i| matches!(i, Item::Verbatim(_))));
    }

    #[test]
    fn trait_items_parse_with_default_bodies() {
        let f = parse(
            "pub trait Actor<M> {\n    fn on_start(&mut self) {}\n    fn decode(&self, b: &[u8]) -> Result<M, E>;\n}",
        );
        let Item::Trait(tr) = &f.items[0] else {
            panic!("expected trait");
        };
        assert_eq!(tr.ident, "Actor");
        assert_eq!(tr.items.len(), 2);
        let Item::Fn(sig_only) = &tr.items[1] else {
            panic!("expected fn sig");
        };
        assert!(sig_only.block.is_none());
    }

    #[test]
    fn reports_unbalanced_delimiters() {
        assert!(parse_file("fn broken() { (").is_err());
        assert!(parse_file("fn broken() ]").is_err());
    }

    #[test]
    fn line_numbers_track_through_trivia() {
        let f = parse("// one\n// two\n\nfn late() {}\n");
        let Item::Fn(l) = &f.items[0] else {
            panic!("expected fn");
        };
        assert_eq!(l.line, 4);
    }
}
