//! The item-level parser: token trees to a [`File`] of items. Function
//! bodies are kept as raw [`TokenStream`]s — the lint rules that consume
//! this AST work on token patterns, not expression trees, which keeps
//! the parser small enough to audit while still giving exact item
//! attribution (crate / impl / fn / line) for every finding.

use crate::token::{Delimiter, TokenStream, TokenTree};
use crate::Error;

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner (`#![...]`) attributes.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// An outer attribute: the tokens inside the `#[...]` brackets.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Tokens between the brackets, e.g. `derive(Clone, Serialize)`.
    pub tokens: TokenStream,
    /// Source line of the attribute.
    pub line: usize,
}

impl Attribute {
    /// The attribute's leading path ident (`derive`, `cfg`, `serde`...).
    pub fn path_ident(&self) -> Option<&str> {
        self.tokens.trees.first()?.as_ident()
    }

    /// Whether this is `#[cfg(test)]`.
    pub fn is_cfg_test(&self) -> bool {
        self.path_ident() == Some("cfg")
            && self.tokens.trees.get(1).is_some_and(|t| {
                t.as_group()
                    .is_some_and(|g| g.stream.trees.iter().any(|t| t.is_ident("test")))
            })
    }
}

/// A top-level or nested item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A free function or method.
    Fn(ItemFn),
    /// An `impl` block.
    Impl(ItemImpl),
    /// An inline or out-of-line module.
    Mod(ItemMod),
    /// A struct declaration.
    Struct(ItemStruct),
    /// An enum declaration.
    Enum(ItemEnum),
    /// A trait declaration (default method bodies are parsed).
    Trait(ItemTrait),
    /// Anything else (consts, statics, uses, macros, type aliases),
    /// kept as raw tokens.
    Verbatim(TokenStream),
}

/// A function item. `block` is `None` for bodiless trait/extern sigs.
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the function is `pub`.
    pub vis_pub: bool,
    /// The function name.
    pub ident: String,
    /// Signature tokens between the name and the body (generics,
    /// arguments, return type, where clause).
    pub sig: TokenStream,
    /// The body tokens, if the function has a body.
    pub block: Option<TokenStream>,
    /// Source line of the `fn` keyword.
    pub line: usize,
}

impl ItemFn {
    /// The argument-list group from the signature, if present.
    pub fn inputs(&self) -> Option<&TokenStream> {
        self.sig.trees.iter().find_map(|t| {
            t.as_group()
                .filter(|g| g.delimiter == Delimiter::Parenthesis)
                .map(|g| &g.stream)
        })
    }
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Last path segment of the implemented trait, for `impl Trait for`.
    pub trait_name: Option<String>,
    /// Last path segment of the self type.
    pub self_ty: String,
    /// Items inside the block (functions, consts, ...).
    pub items: Vec<Item>,
    /// Source line of the `impl` keyword.
    pub line: usize,
}

/// A module. `content` is `None` for `mod name;` out-of-line modules.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The module name.
    pub ident: String,
    /// Inline module contents, if any.
    pub content: Option<Vec<Item>>,
    /// Source line of the `mod` keyword.
    pub line: usize,
}

/// A struct declaration.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the struct is `pub`.
    pub vis_pub: bool,
    /// The struct name.
    pub ident: String,
    /// Generics, fields, and where clause as raw tokens.
    pub body: TokenStream,
    /// Source line of the `struct` keyword.
    pub line: usize,
}

/// An enum declaration.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the enum is `pub`.
    pub vis_pub: bool,
    /// The enum name.
    pub ident: String,
    /// Generics and variants as raw tokens.
    pub body: TokenStream,
    /// Source line of the `enum` keyword.
    pub line: usize,
}

/// A trait declaration.
#[derive(Debug, Clone)]
pub struct ItemTrait {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The trait name.
    pub ident: String,
    /// Items inside the trait (method sigs and default bodies).
    pub items: Vec<Item>,
    /// Source line of the `trait` keyword.
    pub line: usize,
}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream = crate::lex::lex(src)?;
    let mut p = Parser {
        toks: stream.trees,
        pos: 0,
    };
    let attrs = p.inner_attrs();
    let items = p.items()?;
    Ok(File { attrs, items })
}

struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn peek(&self, ahead: usize) -> Option<&TokenTree> {
        self.toks.get(self.pos + ahead)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.peek(0).map_or(0, TokenTree::line)
    }

    /// `#![...]` inner attributes at the start of a stream.
    fn inner_attrs(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek(0).is_some_and(|t| t.is_punct('#'))
            && self.peek(1).is_some_and(|t| t.is_punct('!'))
            && self.peek(2).is_some_and(|t| {
                t.as_group()
                    .is_some_and(|g| g.delimiter == Delimiter::Bracket)
            })
        {
            let line = self.line();
            self.bump();
            self.bump();
            if let Some(TokenTree::Group(g)) = self.bump() {
                attrs.push(Attribute {
                    tokens: g.stream,
                    line,
                });
            }
        }
        attrs
    }

    /// `#[...]` outer attributes.
    fn outer_attrs(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek(0).is_some_and(|t| t.is_punct('#'))
            && self.peek(1).is_some_and(|t| {
                t.as_group()
                    .is_some_and(|g| g.delimiter == Delimiter::Bracket)
            })
        {
            let line = self.line();
            self.bump();
            if let Some(TokenTree::Group(g)) = self.bump() {
                attrs.push(Attribute {
                    tokens: g.stream,
                    line,
                });
            }
        }
        attrs
    }

    fn items(&mut self) -> Result<Vec<Item>, Error> {
        let mut items = Vec::new();
        while self.peek(0).is_some() {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<Item, Error> {
        let attrs = self.outer_attrs();
        let mut vis_pub = false;
        if self.peek(0).is_some_and(|t| t.is_ident("pub")) {
            vis_pub = true;
            self.bump();
            // pub(crate), pub(super), ...
            if self.peek(0).is_some_and(|t| {
                t.as_group()
                    .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
            }) {
                self.bump();
            }
        }
        // Function qualifiers: const/async/unsafe/extern "C" before `fn`.
        let mut ahead = 0;
        loop {
            match self.peek(ahead).and_then(TokenTree::as_ident) {
                Some("const" | "async" | "unsafe" | "extern") => {
                    ahead += 1;
                    if matches!(self.peek(ahead), Some(TokenTree::Literal(_))) {
                        ahead += 1; // the "C" in extern "C"
                    }
                }
                _ => break,
            }
        }
        let is_fn = self.peek(ahead).is_some_and(|t| t.is_ident("fn"));
        let kw = self.peek(0).and_then(TokenTree::as_ident).map(String::from);
        match kw.as_deref() {
            _ if is_fn => {
                for _ in 0..ahead {
                    self.bump();
                }
                self.item_fn(attrs, vis_pub)
            }
            Some("impl") => self.item_impl(attrs),
            Some("mod") => self.item_mod(attrs),
            Some("struct") => self.item_struct(attrs, vis_pub),
            Some("union") => self.item_struct(attrs, vis_pub),
            Some("enum") => self.item_enum(attrs, vis_pub),
            Some("trait") => self.item_trait(attrs),
            _ => Ok(Item::Verbatim(self.skip_verbatim())),
        }
    }

    /// Consumes a non-structural item. `use`/`const`/`static`/`type`
    /// items run to their terminating `;` (initializer expressions may
    /// contain `<<` shifts and `{...}` literals, so no angle tracking
    /// and no brace-body cutoff). Everything else (extern blocks,
    /// macro_rules!, `foo! { ... }` invocations) ends at the first `;`
    /// or top-level brace body.
    fn skip_verbatim(&mut self) -> TokenStream {
        let semicolon_only = matches!(
            self.peek(0).and_then(TokenTree::as_ident),
            Some("use" | "const" | "static" | "type")
        );
        let mut trees = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.is_punct(';') {
                if let Some(t) = self.bump() {
                    trees.push(t);
                }
                break;
            }
            let is_body = !semicolon_only
                && t.as_group()
                    .is_some_and(|g| g.delimiter == Delimiter::Brace);
            match self.bump() {
                Some(t) => trees.push(t),
                None => break,
            }
            if is_body {
                break;
            }
        }
        TokenStream { trees }
    }

    fn item_fn(&mut self, attrs: Vec<Attribute>, vis_pub: bool) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `fn`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text,
            other => {
                return Err(Error {
                    line,
                    msg: format!("expected fn name, found {other:?}"),
                })
            }
        };
        let mut sig = Vec::new();
        let mut angle = Angle::default();
        let mut block = None;
        while let Some(t) = self.peek(0) {
            if angle.depth == 0 {
                if t.is_punct(';') {
                    self.bump();
                    break;
                }
                if let Some(g) = t.as_group().filter(|g| g.delimiter == Delimiter::Brace) {
                    block = Some(g.stream.clone());
                    self.bump();
                    break;
                }
            }
            match self.bump() {
                Some(t) => {
                    angle.feed(&t);
                    sig.push(t);
                }
                None => break,
            }
        }
        Ok(Item::Fn(ItemFn {
            attrs,
            vis_pub,
            ident,
            sig: TokenStream { trees: sig },
            block,
            line,
        }))
    }

    fn item_impl(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `impl`
        let mut header = Vec::new();
        let mut angle = Angle::default();
        let mut body = None;
        while let Some(t) = self.peek(0) {
            if angle.depth == 0 {
                if let Some(g) = t.as_group().filter(|g| g.delimiter == Delimiter::Brace) {
                    body = Some(g.stream.clone());
                    self.bump();
                    break;
                }
            }
            match self.bump() {
                Some(t) => {
                    angle.feed(&t);
                    header.push(t);
                }
                None => break,
            }
        }
        let (trait_name, self_ty) = split_impl_header(&header);
        let items = match body {
            Some(stream) => {
                let mut inner = Parser {
                    toks: stream.trees,
                    pos: 0,
                };
                inner.items()?
            }
            None => Vec::new(),
        };
        Ok(Item::Impl(ItemImpl {
            attrs,
            trait_name,
            self_ty,
            items,
            line,
        }))
    }

    fn item_mod(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `mod`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text,
            other => {
                return Err(Error {
                    line,
                    msg: format!("expected mod name, found {other:?}"),
                })
            }
        };
        match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let stream = g.stream.clone();
                self.bump();
                let mut inner = Parser {
                    toks: stream.trees,
                    pos: 0,
                };
                let _ = inner.inner_attrs();
                let content = Some(inner.items()?);
                Ok(Item::Mod(ItemMod {
                    attrs,
                    ident,
                    content,
                    line,
                }))
            }
            _ => {
                // `mod name;`
                if self.peek(0).is_some_and(|t| t.is_punct(';')) {
                    self.bump();
                }
                Ok(Item::Mod(ItemMod {
                    attrs,
                    ident,
                    content: None,
                    line,
                }))
            }
        }
    }

    fn item_struct(&mut self, attrs: Vec<Attribute>, vis_pub: bool) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `struct`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text,
            other => {
                return Err(Error {
                    line,
                    msg: format!("expected struct name, found {other:?}"),
                })
            }
        };
        let body = self.skip_type_body();
        Ok(Item::Struct(ItemStruct {
            attrs,
            vis_pub,
            ident,
            body,
            line,
        }))
    }

    fn item_enum(&mut self, attrs: Vec<Attribute>, vis_pub: bool) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `enum`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text,
            other => {
                return Err(Error {
                    line,
                    msg: format!("expected enum name, found {other:?}"),
                })
            }
        };
        let body = self.skip_type_body();
        Ok(Item::Enum(ItemEnum {
            attrs,
            vis_pub,
            ident,
            body,
            line,
        }))
    }

    fn item_trait(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let line = self.line();
        self.bump(); // `trait`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.text,
            other => {
                return Err(Error {
                    line,
                    msg: format!("expected trait name, found {other:?}"),
                })
            }
        };
        let mut angle = Angle::default();
        let mut body = None;
        while let Some(t) = self.peek(0) {
            if angle.depth == 0 {
                if let Some(g) = t.as_group().filter(|g| g.delimiter == Delimiter::Brace) {
                    body = Some(g.stream.clone());
                    self.bump();
                    break;
                }
            }
            match self.bump() {
                Some(t) => angle.feed(&t),
                None => break,
            }
        }
        let items = match body {
            Some(stream) => {
                let mut inner = Parser {
                    toks: stream.trees,
                    pos: 0,
                };
                inner.items()?
            }
            None => Vec::new(),
        };
        Ok(Item::Trait(ItemTrait {
            attrs,
            ident,
            items,
            line,
        }))
    }

    /// Consumes a struct/enum body — generics, where clause, then either
    /// a brace group, a paren group + `;` (tuple struct), or a bare `;` —
    /// returning all of it as raw tokens.
    fn skip_type_body(&mut self) -> TokenStream {
        let mut trees = Vec::new();
        let mut angle = Angle::default();
        while let Some(t) = self.peek(0) {
            if angle.depth == 0 {
                if t.is_punct(';') {
                    self.bump();
                    break;
                }
                if t.as_group()
                    .is_some_and(|g| g.delimiter == Delimiter::Brace)
                {
                    if let Some(t) = self.bump() {
                        trees.push(t);
                    }
                    break;
                }
            }
            match self.bump() {
                Some(t) => {
                    angle.feed(&t);
                    trees.push(t);
                }
                None => break,
            }
        }
        TokenStream { trees }
    }
}

/// Angle-bracket depth tracking over generics in type position, with
/// `->` arrows excluded (their `>` is not a closing angle).
#[derive(Default)]
struct Angle {
    depth: usize,
    prev_dash: bool,
}

impl Angle {
    fn feed(&mut self, t: &TokenTree) {
        match t.as_punct() {
            Some('<') => {
                self.depth += 1;
                self.prev_dash = false;
            }
            Some('>') => {
                if !self.prev_dash {
                    self.depth = self.depth.saturating_sub(1);
                }
                self.prev_dash = false;
            }
            Some('-') => self.prev_dash = true,
            _ => self.prev_dash = false,
        }
    }
}

/// Splits an impl header into (trait name, self type name): the last
/// path ident at angle-depth 0 on each side of a depth-0 `for`.
fn split_impl_header(header: &[TokenTree]) -> (Option<String>, String) {
    let mut angle = Angle::default();
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    let mut seen_where = false;
    for t in header {
        if angle.depth == 0 {
            if t.is_ident("for") && !seen_for {
                seen_for = true;
                angle.feed(t);
                continue;
            }
            if t.is_ident("where") {
                seen_where = true;
            }
            if let Some(id) = t.as_ident() {
                if !seen_where && id != "dyn" && id != "mut" && id != "for" {
                    if seen_for {
                        after_for = Some(id.to_string());
                    } else {
                        before_for = Some(id.to_string());
                    }
                }
            }
        }
        angle.feed(t);
    }
    match (seen_for, before_for, after_for) {
        (true, trait_name, Some(ty)) => (trait_name, ty),
        (true, trait_name, None) => (trait_name, String::new()),
        (false, Some(ty), _) => (None, ty),
        (false, None, _) => (None, String::new()),
    }
}
