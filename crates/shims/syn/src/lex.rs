//! The lexer: source text to a flat token list, then delimiter matching
//! to build [`TokenStream`] trees. Handles the full trivia surface of
//! real Rust source — line/block comments (nested), doc comments,
//! strings with escapes, raw strings with `#` fences, byte strings and
//! byte chars, char-vs-lifetime disambiguation, raw identifiers, and
//! numeric literals with type suffixes.

use crate::token::{Delimiter, Group, Ident, Literal, Punct, TokenStream, TokenTree};
use crate::Error;

/// Lexes `src` into a single top-level token stream.
pub fn lex(src: &str) -> Result<TokenStream, Error> {
    let chars: Vec<char> = src.chars().collect();
    let mut lexer = Lexer {
        chars,
        pos: 0,
        line: 1,
    };
    let flat = lexer.run()?;
    build_trees(flat)
}

/// A token before delimiter matching: either a leaf or a raw bracket.
enum Flat {
    Leaf(TokenTree),
    Open(Delimiter, usize),
    Close(Delimiter, usize),
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, msg: &str) -> Error {
        Error {
            line: self.line,
            msg: msg.to_string(),
        }
    }

    fn run(&mut self) -> Result<Vec<Flat>, Error> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment()?,
                '"' => out.push(self.string_literal(0)?),
                'r' if self.raw_string_fence(1).is_some() => {
                    let fence = self.raw_string_fence(1).ok_or_else(|| self.err("fence"))?;
                    out.push(self.raw_string_literal(1, fence)?);
                }
                'b' if self.peek(1) == Some('"') => out.push(self.string_literal(1)?),
                'b' if self.peek(1) == Some('\'') => out.push(self.char_literal(1)?),
                'b' if self.peek(1) == Some('r') && self.raw_string_fence(2).is_some() => {
                    let fence = self.raw_string_fence(2).ok_or_else(|| self.err("fence"))?;
                    out.push(self.raw_string_literal(2, fence)?);
                }
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    out.push(self.ident(2));
                }
                c if is_ident_start(Some(c)) => out.push(self.ident(0)),
                c if c.is_ascii_digit() => out.push(self.number()),
                '\'' => out.push(self.char_or_lifetime()?),
                '(' => out.push(self.bracket(Flat::Open(Delimiter::Parenthesis, self.line))),
                ')' => out.push(self.bracket(Flat::Close(Delimiter::Parenthesis, self.line))),
                '{' => out.push(self.bracket(Flat::Open(Delimiter::Brace, self.line))),
                '}' => out.push(self.bracket(Flat::Close(Delimiter::Brace, self.line))),
                '[' => out.push(self.bracket(Flat::Open(Delimiter::Bracket, self.line))),
                ']' => out.push(self.bracket(Flat::Close(Delimiter::Bracket, self.line))),
                _ => {
                    let line = self.line;
                    self.bump();
                    out.push(Flat::Leaf(TokenTree::Punct(Punct { ch: c, line })));
                }
            }
        }
        Ok(out)
    }

    fn bracket(&mut self, tok: Flat) -> Flat {
        self.bump();
        tok
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) -> Result<(), Error> {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.err("unterminated block comment")),
            }
        }
        Ok(())
    }

    /// `"..."` or `b"..."` (prefix_len = chars before the quote).
    fn string_literal(&mut self, prefix_len: usize) -> Result<Flat, Error> {
        let line = self.line;
        let mut text = String::new();
        for _ in 0..prefix_len {
            text.push(self.bump().ok_or_else(|| self.err("eof in string"))?);
        }
        text.push(self.bump().ok_or_else(|| self.err("eof in string"))?); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    text.push(self.bump().ok_or_else(|| self.err("eof in escape"))?);
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
        self.literal_suffix(&mut text);
        Ok(Flat::Leaf(TokenTree::Literal(Literal { text, line })))
    }

    /// Number of `#` fence chars if position `at` begins a raw string
    /// (`"` or `#...#"`), else `None`.
    fn raw_string_fence(&self, at: usize) -> Option<usize> {
        let mut n = 0;
        while self.peek(at + n) == Some('#') {
            n += 1;
        }
        (self.peek(at + n) == Some('"')).then_some(n)
    }

    /// `r"..."`, `r#"..."#`, `br#"..."#` etc.
    fn raw_string_literal(&mut self, prefix_len: usize, fence: usize) -> Result<Flat, Error> {
        let line = self.line;
        let mut text = String::new();
        for _ in 0..prefix_len + fence + 1 {
            text.push(self.bump().ok_or_else(|| self.err("eof in raw string"))?);
        }
        loop {
            match self.bump() {
                Some('"') => {
                    text.push('"');
                    if (0..fence).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..fence {
                            text.push(self.bump().ok_or_else(|| self.err("eof"))?);
                        }
                        break;
                    }
                }
                Some(c) => text.push(c),
                None => return Err(self.err("unterminated raw string literal")),
            }
        }
        self.literal_suffix(&mut text);
        Ok(Flat::Leaf(TokenTree::Literal(Literal { text, line })))
    }

    /// `'x'`, `'\n'`, `b'x'` (prefix_len = chars before the quote).
    fn char_literal(&mut self, prefix_len: usize) -> Result<Flat, Error> {
        let line = self.line;
        let mut text = String::new();
        for _ in 0..prefix_len {
            text.push(self.bump().ok_or_else(|| self.err("eof in char"))?);
        }
        text.push(self.bump().ok_or_else(|| self.err("eof in char"))?); // opening quote
        match self.bump() {
            Some('\\') => {
                text.push('\\');
                // Consume the escape body up to the closing quote; covers
                // \n, \', \\, \u{...}, \x41.
                loop {
                    match self.bump() {
                        Some('\'') if text.len() > prefix_len + 2 => {
                            text.push('\'');
                            break;
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err("unterminated char literal")),
                    }
                }
            }
            Some(c) => {
                text.push(c);
                match self.bump() {
                    Some('\'') => text.push('\''),
                    _ => return Err(self.err("unterminated char literal")),
                }
            }
            None => return Err(self.err("eof in char literal")),
        }
        Ok(Flat::Leaf(TokenTree::Literal(Literal { text, line })))
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime). A lifetime is
    /// emitted as a `'` punct followed by an ident.
    fn char_or_lifetime(&mut self) -> Result<Flat, Error> {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if is_ident_start(Some(c)) || c == '_' => after == Some('\''),
            Some(_) => true,
            None => return Err(self.err("stray quote at eof")),
        };
        if is_char {
            self.char_literal(0)
        } else {
            let line = self.line;
            self.bump();
            Ok(Flat::Leaf(TokenTree::Punct(Punct { ch: '\'', line })))
        }
    }

    fn ident(&mut self, prefix_len: usize) -> Flat {
        let line = self.line;
        for _ in 0..prefix_len {
            self.bump(); // discard the r# raw prefix
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Flat::Leaf(TokenTree::Ident(Ident { text, line }))
    }

    fn number(&mut self) -> Flat {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: consume `.` only when followed by a digit, so
        // `0..n` ranges and `x.method()` stay punctuation.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign: `1e-3` lexes its `-3` here to stay one literal.
        if text.ends_with(['e', 'E'])
            && text.starts_with(|c: char| c.is_ascii_digit())
            && matches!(self.peek(0), Some('+') | Some('-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            text.push(self.bump().unwrap_or('-'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Flat::Leaf(TokenTree::Literal(Literal { text, line }))
    }

    fn literal_suffix(&mut self, text: &mut String) {
        // Type suffixes on string-ish literals are rare but legal.
        while is_ident_continue(self.peek(0)) {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Matches brackets in the flat token list, producing nested groups.
fn build_trees(flat: Vec<Flat>) -> Result<TokenStream, Error> {
    let mut stack: Vec<(Delimiter, usize, Vec<TokenTree>)> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();
    for tok in flat {
        match tok {
            Flat::Leaf(t) => match stack.last_mut() {
                Some((_, _, trees)) => trees.push(t),
                None => top.push(t),
            },
            Flat::Open(d, line) => stack.push((d, line, Vec::new())),
            Flat::Close(d, line) => {
                let Some((open_d, open_line, trees)) = stack.pop() else {
                    return Err(Error {
                        line,
                        msg: "unmatched closing bracket".to_string(),
                    });
                };
                if open_d != d {
                    return Err(Error {
                        line,
                        msg: format!("mismatched bracket opened on line {open_line}"),
                    });
                }
                let group = TokenTree::Group(Group {
                    delimiter: d,
                    stream: TokenStream { trees },
                    line: open_line,
                });
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(group),
                    None => top.push(group),
                }
            }
        }
    }
    if let Some((_, line, _)) = stack.last() {
        return Err(Error {
            line: *line,
            msg: "unclosed bracket".to_string(),
        });
    }
    Ok(TokenStream { trees: top })
}
