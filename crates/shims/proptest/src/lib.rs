//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`strategy::Strategy`] trait (with `prop_map`), numeric range and
//! `any::<T>()` strategies, `collection::vec`, `sample::Index`, the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header, and
//! the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test function runs `cases` deterministic random cases (seeded from
//! the test's name) and panics on the first failing case. That keeps the
//! tests meaningful as randomized property checks while staying dependency
//! free.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy choosing uniformly among boxed alternatives — the backend
    /// of [`prop_oneof!`](crate::prop_oneof). Real proptest supports
    /// per-arm weights; the workspace's tests don't use them.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`prop_oneof!`](crate::prop_oneof) to mix differently-typed arms).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod option {
    //! `prop::option::of`, mirroring proptest's optional-value strategy.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `None` a quarter of the time and `Some` of the
    /// inner strategy otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Optional values drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_prims {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    arbitrary_prims!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite values only; property tests here reason about arithmetic.
            rng.random_range(-1.0e9..=1.0e9)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random_range(-1.0e6f32..=1.0e6)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Sampling helpers.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// An abstract index, resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Maps this abstract index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl crate::arbitrary::Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.random::<u64>() as usize)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vector-length specification.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for vectors of values drawn from `elem`.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with element strategy `elem` and length `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod test_runner {
    //! Runner configuration and deterministic seeding.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The rng driving case generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Deterministic rng for a named test.
    pub fn new_rng(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    /// Stable seed derived from a test name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path (`prop::sample::Index`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }` item
/// becomes a zero-argument function running `cases` random cases; annotate
/// with `#[test]` inside the macro exactly as with real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::new_rng($crate::test_runner::seed_for(stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Chooses uniformly among the given strategies, which may have different
/// concrete types as long as they produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and map through `prop_map`.
        #[test]
        fn ranges_and_map(x in 5usize..10, e in evens(), _b in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vectors_and_index(
            v in crate::collection::vec(0i32..100, 1..8),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty());
            let i = pick.index(v.len());
            prop_assert!(v[i] < 100);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            let _ = x;
        }

        #[test]
        fn oneof_and_option(
            v in prop_oneof![Just(1u8), 10u8..20, Just(99u8)],
            o in prop::option::of(0u32..5),
        ) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v == 99);
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }
}
