//! Fixture self-tests: every rule family must fire on a known-bad
//! snippet and stay quiet on a known-good one. These pin the lint's
//! *sensitivity* — a refactor of the scanner that silently stops
//! detecting a class of violation fails here, not in production.

use p2pfl_lint::walk::Workspace;
use p2pfl_lint::{allow, panics, pins, purity, secrets, wire, AllowEntry, Finding, Rule};

fn ws(sources: &[(&str, &str, &str)]) -> Workspace {
    let ws = Workspace::from_sources(sources);
    assert!(
        ws.parse_errors.is_empty(),
        "fixture must parse: {:?}",
        ws.parse_errors
    );
    ws
}

fn rule_findings(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------------
// Rule 1: sans-IO purity
// ---------------------------------------------------------------------

#[test]
fn purity_fires_on_wall_clock_in_actor() {
    let ws = ws(&[(
        "hierraft",
        "crates/hierraft/src/actor.rs",
        r#"
        pub struct A;
        impl A {
            pub fn on_message(&mut self) {
                let t = std::time::Instant::now();
                let _ = t;
            }
        }
        "#,
    )]);
    let findings = purity::check(&ws);
    let hits = rule_findings(&findings, Rule::Purity);
    assert_eq!(hits.len(), 1, "exactly the Instant use: {findings:?}");
    assert!(hits[0].msg.contains("Instant"));
    assert_eq!(hits[0].item, "A::on_message");
}

#[test]
fn purity_fires_on_os_entropy_and_stdout() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/engine.rs",
        r#"
        pub fn bad_entropy() -> u64 {
            let mut rng = rand::thread_rng();
            rng.next()
        }
        pub fn bad_print(x: u64) {
            println!("{x}");
        }
        "#,
    )]);
    let findings = purity::check(&ws);
    let hits = rule_findings(&findings, Rule::Purity);
    assert_eq!(hits.len(), 2, "{findings:?}");
    assert!(hits.iter().any(|f| f.msg.contains("thread_rng")));
    assert!(hits.iter().any(|f| f.msg.contains("println")));
}

#[test]
fn purity_allows_seeded_rng_and_test_code() {
    let ws = ws(&[(
        "raft",
        "crates/raft/src/node.rs",
        r#"
        pub fn jitter(seed: u64) -> u64 {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            rng.gen_range(0..10)
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn timing() {
                let _ = std::time::Instant::now();
                println!("test output is fine");
            }
        }
        "#,
    )]);
    let findings = purity::check(&ws);
    assert!(
        rule_findings(&findings, Rule::Purity).is_empty(),
        "seeded StdRng and #[cfg(test)] code are allowed: {findings:?}"
    );
}

#[test]
fn purity_covers_pinned_reactor_files_in_io_crate() {
    // queue.rs is pinned pure even though `net` as a crate does IO.
    let ws = ws(&[
        (
            "net",
            "crates/net/src/reactor/queue.rs",
            r#"
            pub fn bad_clock() -> u64 {
                let _ = std::time::Instant::now();
                0
            }
            "#,
        ),
        (
            "net",
            "crates/net/src/reactor/timer.rs",
            r#"
            pub fn pure_wheel(deadline_ns: u64) -> u64 {
                deadline_ns / 2
            }
            "#,
        ),
        // A non-pinned net file with IO stays out of scope.
        (
            "net",
            "crates/net/src/reactor/conn.rs",
            r#"
            pub fn io_is_fine() {
                let _ = std::time::Instant::now();
            }
            "#,
        ),
    ]);
    let findings = purity::check(&ws);
    let hits = rule_findings(&findings, Rule::Purity);
    assert_eq!(
        hits.len(),
        1,
        "only the pinned queue.rs fires: {findings:?}"
    );
    assert!(hits[0].file.ends_with("queue.rs"));
    assert!(hits[0].msg.contains("Instant"));
}

#[test]
fn purity_reports_scope_rot_when_pinned_reactor_file_vanishes() {
    // `net` crate present but the pinned files are missing (renamed
    // away) — the rule must flag scope rot, not pass silently.
    let ws = ws(&[(
        "net",
        "crates/net/src/lib.rs",
        r#"
        pub fn io_is_fine() {}
        "#,
    )]);
    let findings = purity::check(&ws);
    let rot = rule_findings(&findings, Rule::SelfCheck);
    assert!(
        rot.iter().any(|f| f.file.ends_with("queue.rs"))
            && rot.iter().any(|f| f.file.ends_with("timer.rs")),
        "missing pinned files must surface as scope rot: {findings:?}"
    );
}

// ---------------------------------------------------------------------
// Rule 2: wire-path panic-freedom
// ---------------------------------------------------------------------

fn fixture_panic_cfg() -> panics::Config {
    panics::Config {
        roots: vec![panics::RootMatcher {
            crate_name: None,
            file_suffix: None,
            self_ty: None,
            fn_name: Some("on_message"),
        }],
        decode_layer: vec!["src/codec.rs"],
        dot_blocklist: vec!["get", "insert", "len"],
        required_roots: vec![],
    }
}

#[test]
fn panic_fires_on_unwrap_reachable_from_decode_root() {
    let ws = ws(&[(
        "fake",
        "crates/fake/src/actor.rs",
        r#"
        pub struct A;
        impl A {
            pub fn on_message(&mut self, msg: u64) {
                helper(msg);
            }
        }
        fn helper(x: u64) -> u64 {
            deeper(x)
        }
        fn deeper(x: u64) -> u64 {
            let v: Option<u64> = Some(x);
            v.unwrap()
        }
        fn unreachable_helper() {
            let v: Option<u64> = None;
            v.expect("never flagged: not reachable from a root");
        }
        "#,
    )]);
    let out = panics::check(&ws, &fixture_panic_cfg());
    let hits = rule_findings(&out.findings, Rule::WirePanic);
    assert_eq!(
        hits.len(),
        1,
        "only the reachable unwrap: {:?}",
        out.findings
    );
    assert_eq!(hits[0].item, "deeper");
    assert!(
        hits[0].msg.contains("on_message"),
        "witness path names the root: {}",
        hits[0].msg
    );
    assert_eq!(out.reachable_fns, 3, "root + helper + deeper");
}

#[test]
fn panic_decode_layer_flags_indexing_and_asserts() {
    let ws = ws(&[(
        "fake",
        "crates/fake/src/codec.rs",
        r#"
        pub struct D;
        impl D {
            pub fn on_message(&mut self, bytes: &[u8]) -> u8 {
                assert!(!bytes.is_empty(), "decode layer must not assert");
                bytes[0]
            }
        }
        "#,
    )]);
    let out = panics::check(&ws, &fixture_panic_cfg());
    let hits = rule_findings(&out.findings, Rule::WirePanic);
    assert_eq!(hits.len(), 2, "{:?}", out.findings);
    assert!(hits.iter().any(|f| f.msg.contains("assert")));
    assert!(hits.iter().any(|f| f.msg.contains("indexing")));
}

#[test]
fn panic_quiet_on_total_decode_code() {
    let ws = ws(&[(
        "fake",
        "crates/fake/src/codec.rs",
        r#"
        pub struct D;
        impl D {
            pub fn on_message(&mut self, bytes: &[u8]) -> Option<u8> {
                let [first] = bytes.first_chunk::<1>()?;
                Some(*first)
            }
        }
        "#,
    )]);
    let out = panics::check(&ws, &fixture_panic_cfg());
    assert!(
        rule_findings(&out.findings, Rule::WirePanic).is_empty(),
        "get/first_chunk-based decode is total: {:?}",
        out.findings
    );
}

#[test]
fn panic_scope_rot_when_required_root_vanishes() {
    let mut cfg = fixture_panic_cfg();
    cfg.required_roots = vec!["D::on_message"];
    let ws = ws(&[(
        "fake",
        "crates/fake/src/codec.rs",
        r#"
        pub struct D;
        impl D {
            pub fn handle_renamed(&mut self) {}
        }
        "#,
    )]);
    let out = panics::check(&ws, &cfg);
    let rot = rule_findings(&out.findings, Rule::SelfCheck);
    assert_eq!(rot.len(), 1, "{:?}", out.findings);
    assert!(rot[0].msg.contains("D::on_message"));
}

// ---------------------------------------------------------------------
// Rule 3: secret-flow confinement
// ---------------------------------------------------------------------

#[test]
fn secret_flow_fires_on_raw_weights_into_wire_constructor() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/engine.rs",
        r#"
        pub struct E { model: Vec<f64> }
        pub enum SacMsg { ShareBlock { parts: Vec<f64> } }
        impl E {
            pub fn leak(&self) -> SacMsg {
                SacMsg::ShareBlock { parts: self.model.clone() }
            }
        }
        "#,
    )]);
    let findings = secrets::check(&ws, &secrets::Config::production());
    let hits = rule_findings(&findings, Rule::SecretFlow);
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].item, "E::leak");
    assert!(hits[0].msg.contains("SacMsg::ShareBlock"));
}

#[test]
fn secret_flow_tracks_let_bindings() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/engine.rs",
        r#"
        pub struct E { model: Vec<f64> }
        pub enum RingMsg { StageShare(Vec<f64>) }
        impl E {
            pub fn leak_via_local(&self) -> RingMsg {
                let weights = self.model.clone();
                let renamed = weights;
                RingMsg::StageShare(renamed)
            }
        }
        "#,
    )]);
    let findings = secrets::check(&ws, &secrets::Config::production());
    let hits = rule_findings(&findings, Rule::SecretFlow);
    assert_eq!(hits.len(), 1, "taint must survive let chains: {findings:?}");
}

#[test]
fn secret_flow_quiet_on_approved_laundering() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/engine.rs",
        r#"
        pub struct E { model: Vec<f64> }
        pub enum SacMsg { ShareBlock { parts: Vec<f64> }, Commit { digest: u64 } }
        fn divide(w: &[f64], n: usize) -> Vec<f64> { let _ = n; w.to_vec() }
        impl E {
            pub fn share(&self) -> SacMsg {
                SacMsg::ShareBlock { parts: divide(&self.model, 4) }
            }
            pub fn commit(&self) -> SacMsg {
                SacMsg::Commit { digest: self.model.digest() }
            }
        }
        "#,
    )]);
    let findings = secrets::check(&ws, &secrets::Config::production());
    assert!(
        rule_findings(&findings, Rule::SecretFlow).is_empty(),
        "divide()/digest() launder the flow: {findings:?}"
    );
    // And the scope-rot self-check stayed quiet: sinks were seen.
    assert!(rule_findings(&findings, Rule::SelfCheck).is_empty());
}

#[test]
fn secret_flow_scope_rot_when_no_sinks_seen() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/engine.rs",
        "pub fn nothing_here() {}",
    )]);
    let findings = secrets::check(&ws, &secrets::Config::production());
    let rot = rule_findings(&findings, Rule::SelfCheck);
    assert_eq!(rot.len(), 1, "{findings:?}");
    assert!(rot[0].msg.contains("scope rot"));
}

// ---------------------------------------------------------------------
// Rule 4: pinned security fixes
// ---------------------------------------------------------------------

const PLAN_WITH_FIX: &str = r#"
    pub fn ceil_log2(n: usize) -> usize { n }
    pub struct RingPlan { stages: usize }
    impl RingPlan {
        pub fn new(n: usize, k: usize) -> RingPlan {
            let _ = k;
            RingPlan { stages: ceil_log2(n).max(2) }
        }
        pub fn stage_k(&self, k: usize) -> usize {
            (k / self.stages).max(2)
        }
    }
"#;

#[test]
fn pins_pass_while_fix_is_present() {
    let ws = ws(&[("secagg", "crates/secagg/src/ring/plan.rs", PLAN_WITH_FIX)]);
    let findings = pins::check(&ws, pins::PRODUCTION);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn pins_fire_when_share_confinement_fix_reverted() {
    // The PR 6 fix reverted: thresholds and stage counts lose their
    // `.max(2)` floors — exactly the singleton-stage leak shape.
    let reverted = PLAN_WITH_FIX.replace(".max(2)", "");
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/ring/plan.rs",
        reverted.as_str(),
    )]);
    let findings = pins::check(&ws, pins::PRODUCTION);
    let hits = rule_findings(&findings, Rule::Pin);
    assert_eq!(hits.len(), 2, "both pins must fire: {findings:?}");
    assert!(hits.iter().any(|f| f.item == "stage_k"));
    assert!(hits.iter().any(|f| f.item == "new"));
}

#[test]
fn pins_fire_when_pinned_function_disappears() {
    let ws = ws(&[(
        "secagg",
        "crates/secagg/src/ring/plan.rs",
        "pub fn unrelated() {}",
    )]);
    let findings = pins::check(&ws, pins::PRODUCTION);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.msg.contains("not found")));
}

// ---------------------------------------------------------------------
// Allowlist policy
// ---------------------------------------------------------------------

fn synthetic(rule: Rule, file: &str, item: &str) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: 1,
        item: item.to_string(),
        msg: "synthetic".to_string(),
    }
}

#[test]
fn allowlist_suppresses_matching_findings() {
    let entries = [AllowEntry {
        rule: Rule::Purity,
        file_suffix: "src/parallel.rs",
        item: "*",
        justification: "fixture",
    }];
    let findings = vec![
        synthetic(Rule::Purity, "crates/fed/src/parallel.rs", "local_updates"),
        synthetic(Rule::Purity, "crates/fed/src/lib.rs", "other"),
        synthetic(
            Rule::WirePanic,
            "crates/fed/src/parallel.rs",
            "local_updates",
        ),
    ];
    let (active, suppressed) = allow::apply(findings, &entries);
    assert_eq!(suppressed.len(), 1, "only (rule, file) matches suppress");
    assert_eq!(active.len(), 2, "{active:?}");
}

#[test]
fn allowlist_stale_entry_is_a_finding() {
    let entries = [AllowEntry {
        rule: Rule::WirePanic,
        file_suffix: "src/gone.rs",
        item: "Fixed::long_ago",
        justification: "fixture",
    }];
    let (active, suppressed) = allow::apply(Vec::new(), &entries);
    assert!(suppressed.is_empty());
    assert_eq!(active.len(), 1);
    assert!(active[0].msg.contains("stale"), "{:?}", active[0]);
}

#[test]
fn allowlist_over_cap_is_a_finding() {
    let entry = |i: &'static str| AllowEntry {
        rule: Rule::Purity,
        file_suffix: "src/x.rs",
        item: i,
        justification: "fixture",
    };
    let entries = [
        entry("a"),
        entry("b"),
        entry("c"),
        entry("d"),
        entry("e"),
        entry("f"),
    ];
    let findings: Vec<Finding> = ["a", "b", "c", "d", "e", "f"]
        .iter()
        .map(|i| synthetic(Rule::Purity, "crates/k/src/x.rs", i))
        .collect();
    let (active, suppressed) = allow::apply(findings, &entries);
    assert_eq!(suppressed.len(), 6);
    assert!(
        active.iter().any(|f| f.msg.contains("cap is")),
        "oversize list must fail even when every entry is used: {active:?}"
    );
    assert!(allow::ALLOWLIST.len() <= allow::MAX_ENTRIES);
}

// ---------------------------------------------------------------------
// Wire-surface lint (migrated from the xtask line scanner)
// ---------------------------------------------------------------------

#[test]
fn wire_surface_flags_missing_derives_and_registry() {
    let ws = ws(&[(
        "fake",
        "crates/fake/src/msg.rs",
        r#"
        pub enum FooMsg { Ping }
        "#,
    )]);
    let report = wire::check(&ws, &[("reg.rs".to_string(), String::new())]);
    let hits = rule_findings(&report.findings, Rule::WireSurface);
    assert_eq!(hits.len(), 2, "derives + registry: {:?}", report.findings);
    assert!(hits.iter().any(|f| f.msg.contains("serde")));
    assert!(hits.iter().any(|f| f.msg.contains("round-trip")));
    assert_eq!(report.checked, 1);
}

#[test]
fn wire_surface_quiet_on_derived_and_registered_type() {
    let ws = ws(&[(
        "fake",
        "crates/fake/src/msg.rs",
        r#"
        #[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
        pub enum FooMsg { Ping }
        struct PrivateHelper;
        #[cfg(test)]
        mod tests {
            pub enum TestOnlyMsg { X }
        }
        "#,
    )]);
    let report = wire::check(
        &ws,
        &[("reg.rs".to_string(), "roundtrip::<FooMsg>()".to_string())],
    );
    assert!(
        rule_findings(&report.findings, Rule::WireSurface).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(report.checked, 1, "private and test-only types are skipped");
}

#[test]
fn wire_surface_scope_rot_when_must_find_types_vanish() {
    let ws = ws(&[("fake", "crates/fake/src/lib.rs", "pub struct NotAMsg;")]);
    let report = wire::check(&ws, &[]);
    let rot = rule_findings(&report.findings, Rule::SelfCheck);
    assert_eq!(
        rot.len(),
        3,
        "RaftMsg/SacMsg/HierMsg: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------
// End-to-end: the production lint over the real workspace
// ---------------------------------------------------------------------

#[test]
fn production_lint_is_green_on_this_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = p2pfl_lint::run_at(&root).expect("workspace loads");
    assert!(
        report.is_clean(),
        "production lint must stay green:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.suppressed.len() <= 2 * allow::MAX_ENTRIES);
    let wire = wire::run_at(&root).expect("workspace loads");
    assert!(wire.findings.is_empty(), "{:?}", wire.findings);
    assert!(wire.checked >= 22, "wire surface shrank: {}", wire.checked);
}
