//! Rule family 2: **wire-path panic-freedom**.
//!
//! Builds an intra-workspace call graph and walks it from the hostile-
//! input roots — the binary codec decode surface, the `FrameBuffer`
//! feed, the hub/runtime socket loops, and every actor callback
//! (`on_start`/`on_message`/`on_timer`, plus raft's `Node::handle`).
//! Any `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`, or
//! `unimplemented!` inside a reachable function is a finding: a peer
//! that can steer execution into one of these has a remote crash.
//!
//! Byte-level decode files ([`Config::decode_layer`]) are held to a
//! stricter standard: slice indexing and `assert!` also flag there,
//! because the decode layer faces raw attacker bytes and must be total.
//! Protocol layers above it may keep invariant asserts — those guard
//! locally-established state, and the dynamic gates (p2pfl-check,
//! soaks) exercise them.
//!
//! Call-graph resolution is name-based: `Type::method(...)` paths
//! resolve exactly; bare `f(...)` calls resolve to workspace free
//! functions named `f`; `.m(...)` dot calls resolve to every workspace
//! method named `m` *except* names on [`Config::dot_blocklist`] —
//! std-trait names (`sum`, `extend`, ...) that would otherwise alias
//! iterator/collection calls onto unrelated workspace methods. That
//! makes the analysis an over-approximation everywhere except the
//! blocklist, which is small and audited.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use syn::token::{TokenStream, TokenTree};

use crate::scan;
use crate::walk::Workspace;
use crate::{Finding, Rule};

/// Selects root functions: all present fields must match.
pub struct RootMatcher {
    /// Crate directory name (`net`, `simnet`, ...), if constrained.
    pub crate_name: Option<&'static str>,
    /// Workspace-relative path suffix, if constrained.
    pub file_suffix: Option<&'static str>,
    /// Impl self type, if constrained.
    pub self_ty: Option<&'static str>,
    /// Function name, if constrained.
    pub fn_name: Option<&'static str>,
}

/// Panic-rule configuration.
pub struct Config {
    /// Hostile-input entry points.
    pub roots: Vec<RootMatcher>,
    /// File suffixes forming the byte-level decode layer (stricter
    /// rules: indexing + asserts).
    pub decode_layer: Vec<&'static str>,
    /// Method names excluded from dot-call edge resolution because they
    /// collide with std trait/collection methods.
    pub dot_blocklist: Vec<&'static str>,
    /// Root functions that must exist — if the matcher stops matching,
    /// the lint reports scope rot instead of passing silently.
    pub required_roots: Vec<&'static str>,
}

impl Config {
    /// The production configuration for this workspace.
    pub fn production() -> Config {
        Config {
            roots: vec![
                // The whole binary codec: decode AND encode must be total.
                RootMatcher {
                    crate_name: Some("simnet"),
                    file_suffix: Some("src/codec.rs"),
                    self_ty: None,
                    fn_name: None,
                },
                // Socket-facing loops in the TCP runtime.
                root_fn("net", "reader_loop"),
                root_fn("net", "accept_loop"),
                root_fn("net", "writer_loop"),
                root_fn("net", "event_loop"),
                root_fn("net", "parse_hello"),
                // The async reactor's single event loop: every byte any
                // peer sends is processed inside this call tree.
                root_fn("net", "reactor_loop"),
                // Actor callbacks: every message a peer sends lands here.
                root_cb("on_start"),
                root_cb("on_message"),
                root_cb("on_timer"),
                // Raft's synchronous entry point and WAL recovery.
                RootMatcher {
                    crate_name: Some("raft"),
                    file_suffix: None,
                    self_ty: Some("RaftNode"),
                    fn_name: Some("handle"),
                },
                RootMatcher {
                    crate_name: Some("raft"),
                    file_suffix: None,
                    self_ty: Some("FileStorage"),
                    fn_name: Some("load"),
                },
            ],
            decode_layer: vec!["crates/simnet/src/codec.rs", "crates/net/src/"],
            dot_blocklist: vec![
                // Iterator/collection methods; workspace types also name
                // methods like these, but every such workspace method is
                // still tracked via `Type::method(...)` path calls.
                "sum", "get", "insert", "push", "extend", "take", "len", "is_empty", "contains",
                "remove", "iter", "next", "clone", "min", "max", "abs",
                // std collisions hit by the reactor: `str::parse` and
                // poller/condvar `wait` vs Args/Json::parse and
                // Deployment::wait (all path-called where it matters).
                "parse", "wait",
            ],
            required_roots: vec![
                "BinDeserializer::take",
                "FrameBuffer::next_frame",
                "reactor_loop",
                "RaftNode::handle",
                "SacPeerActor::on_message",
                "RingSacActor::on_message",
                "HierActor::on_message",
            ],
        }
    }
}

fn root_fn(crate_name: &'static str, fn_name: &'static str) -> RootMatcher {
    RootMatcher {
        crate_name: Some(crate_name),
        file_suffix: None,
        self_ty: None,
        fn_name: Some(fn_name),
    }
}

fn root_cb(fn_name: &'static str) -> RootMatcher {
    RootMatcher {
        crate_name: None,
        file_suffix: None,
        self_ty: None,
        fn_name: Some(fn_name),
    }
}

/// Output of the panic pass.
pub struct Output {
    /// Findings (panic-capable tokens in reachable functions).
    pub findings: Vec<Finding>,
    /// Number of functions reachable from the roots.
    pub reachable_fns: usize,
}

struct FnNode {
    rel_path: String,
    crate_name: String,
    self_ty: Option<String>,
    name: String,
    body: Option<TokenStream>,
}

impl FnNode {
    fn qual(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Runs the panic-freedom pass.
pub fn check(ws: &Workspace, cfg: &Config) -> Output {
    // 1. Collect every non-test function as a graph node.
    let mut nodes: Vec<FnNode> = Vec::new();
    for f in ws.functions() {
        if f.test_only {
            continue;
        }
        nodes.push(FnNode {
            rel_path: f.file.rel_path.clone(),
            crate_name: f.file.crate_name.clone(),
            self_ty: f.self_ty.clone(),
            name: f.f.ident.clone(),
            body: f.f.block.clone(),
        });
    }

    // 2. Name-resolution tables.
    let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        match &n.self_ty {
            Some(t) => {
                by_method.entry(n.name.as_str()).or_default().push(i);
                by_typed
                    .entry((t.as_str(), n.name.as_str()))
                    .or_default()
                    .push(i);
            }
            None => free_fns.entry(n.name.as_str()).or_default().push(i),
        }
    }

    // 3. Edges from call-shaped token patterns.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let Some(body) = &n.body else { continue };
        let mut calls = Vec::new();
        collect_calls(body, &mut calls);
        for c in calls {
            match c {
                Call::Qualified(ty, name) => {
                    let ty = if ty == "Self" {
                        n.self_ty.clone().unwrap_or(ty)
                    } else {
                        ty
                    };
                    if let Some(tgts) = by_typed.get(&(ty.as_str(), name.as_str())) {
                        edges[i].extend(tgts.iter().copied());
                    } else if let Some(tgts) = free_fns.get(name.as_str()) {
                        // `module::function(...)` paths.
                        edges[i].extend(tgts.iter().copied());
                    }
                }
                Call::Bare(name) => {
                    if let Some(tgts) = free_fns.get(name.as_str()) {
                        edges[i].extend(tgts.iter().copied());
                    }
                }
                Call::Method(name) => {
                    if cfg.dot_blocklist.contains(&name.as_str()) {
                        continue;
                    }
                    if let Some(tgts) = by_method.get(name.as_str()) {
                        edges[i].extend(tgts.iter().copied());
                    }
                }
            }
        }
    }

    // 4. Reachability from the roots, remembering one witness path.
    let mut queue = VecDeque::new();
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached = vec![false; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        if cfg.roots.iter().any(|r| root_matches(r, n)) {
            reached[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &edges[i] {
            if !reached[j] {
                reached[j] = true;
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }

    // 5. Flag panic-capable tokens in reachable functions.
    let mut findings = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        let Some(body) = &n.body else { continue };
        let strict = cfg
            .decode_layer
            .iter()
            .any(|d| n.rel_path.starts_with(d) || n.rel_path.ends_with(d));
        let mut hits = Vec::new();
        scan::method_calls(body, &["unwrap", "expect"], &mut hits);
        scan::macro_calls(
            body,
            &["panic", "unreachable", "todo", "unimplemented"],
            &mut hits,
        );
        if strict {
            scan::macro_calls(body, &["assert", "assert_eq", "assert_ne"], &mut hits);
            scan::index_exprs(body, &mut hits);
        }
        if hits.is_empty() {
            continue;
        }
        let via = witness_path(&nodes, &parent, i);
        for h in hits {
            findings.push(Finding {
                rule: Rule::WirePanic,
                file: n.rel_path.clone(),
                line: h.line,
                item: n.qual(),
                msg: format!(
                    "{} reachable from hostile input (via {})",
                    h.what,
                    via.join(" -> ")
                ),
            });
        }
    }

    // 6. Scope-rot self-check: the roots the analysis depends on must
    // still exist under their expected names.
    for req in &cfg.required_roots {
        let found = nodes
            .iter()
            .enumerate()
            .any(|(i, n)| reached[i] && n.qual() == *req);
        if !found {
            findings.push(Finding {
                rule: Rule::SelfCheck,
                file: "<workspace>".to_string(),
                line: 0,
                item: "wire-panic".to_string(),
                msg: format!("expected wire root/function `{req}` not found — scope rot"),
            });
        }
    }

    Output {
        reachable_fns: reached.iter().filter(|r| **r).count(),
        findings,
    }
}

fn root_matches(r: &RootMatcher, n: &FnNode) -> bool {
    r.crate_name.is_none_or(|c| n.crate_name == c)
        && r.file_suffix.is_none_or(|s| n.rel_path.ends_with(s))
        && r.self_ty.is_none_or(|t| n.self_ty.as_deref() == Some(t))
        && r.fn_name.is_none_or(|f| n.name == f)
}

/// Reconstructs the BFS witness path root → ... → `i` (shortened to the
/// last few hops for readability).
fn witness_path(nodes: &[FnNode], parent: &[Option<usize>], i: usize) -> Vec<String> {
    let mut path = vec![nodes[i].qual()];
    let mut cur = i;
    while let Some(p) = parent[cur] {
        path.push(nodes[p].qual());
        cur = p;
        if path.len() > 6 {
            path.push("...".to_string());
            break;
        }
    }
    path.reverse();
    path
}

/// A call-shaped token pattern.
enum Call {
    /// `Type::name(...)` or `module::name(...)`.
    Qualified(String, String),
    /// `name(...)` with no path or receiver.
    Bare(String),
    /// `.name(...)`.
    Method(String),
}

fn collect_calls(stream: &TokenStream, out: &mut Vec<Call>) {
    scan::each_level(stream, &mut |toks| {
        for i in 0..toks.len() {
            let Some(name) = toks[i].as_ident() else {
                continue;
            };
            // `name ( ... )` or `name::<T>( ... )` — qualified, method,
            // or bare depending on what precedes. Macro invocations
            // (`name!(...)`) never match: the `!` sits between the
            // ident and the group.
            if scan::call_args_after(toks, i + 1).is_none() {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            let prev2 = i.checked_sub(2).map(|p| &toks[p]);
            let prev3 = i.checked_sub(3).map(|p| &toks[p]);
            if prev.is_some_and(|t| t.is_punct('.')) {
                out.push(Call::Method(name.to_string()));
            } else if prev.is_some_and(|t| t.is_punct(':'))
                && prev2.is_some_and(|t| t.is_punct(':'))
            {
                if let Some(ty) = prev3.and_then(TokenTree::as_ident) {
                    out.push(Call::Qualified(ty.to_string(), name.to_string()));
                }
            } else {
                out.push(Call::Bare(name.to_string()));
            }
        }
    });
}
