//! Rule family 3: **secret-flow confinement** in `p2pfl-secagg`.
//!
//! The paper's k-of-n secrecy argument rests on one structural fact:
//! raw model weights never cross the wire — only `divide()`-produced
//! additive shares (and their digests) do. This pass codifies that as a
//! per-function taint check: a value derived from `self.model` (or a
//! `model` parameter) may appear inside a `SacMsg::...` / `RingMsg::...`
//! constructor only after passing through one of the [`APPROVED`]
//! masking/sharing functions. The `RingShareConfinement` oracle checks
//! the same property dynamically; this rule makes the obvious
//! violations (cleartext weights in a message) unrepresentable in
//! merged code.
//!
//! The taint model is intentionally simple and local: sources are the
//! `self.model` field and `model`-named bindings; `let` chains
//! propagate taint within a function; an approved call anywhere in a
//! value's prefix (`divide(tainted)`) or postfix chain
//! (`tainted.digest()`) launders it. Cross-function flows are covered
//! by the rule running over *every* secagg function — a helper that
//! smuggles weights into a message is itself flagged.

use std::collections::BTreeSet;

use syn::token::{Delimiter, TokenStream, TokenTree};

use crate::walk::Workspace;
use crate::{Finding, Rule};

/// Functions whose output is safe to put on the wire even when fed raw
/// weights: share-splitting, masking, and commitment digests, plus
/// shape accessors that reveal only the (public) dimension.
pub const APPROVED: &[&str] = &[
    "divide",
    "divide_masked",
    "divide_scaled",
    "masked_update",
    "digest",
    "dim",
    "len",
    "is_empty",
];

/// Secret-flow configuration.
pub struct Config {
    /// The crate holding the secure-aggregation engines.
    pub crate_name: &'static str,
    /// Wire-message type names whose constructors are the sinks.
    pub sinks: Vec<&'static str>,
    /// Field/binding names that carry raw weights.
    pub source_idents: Vec<&'static str>,
}

impl Config {
    /// The production configuration.
    pub fn production() -> Config {
        Config {
            crate_name: "secagg",
            sinks: vec!["SacMsg", "RingMsg"],
            source_idents: vec!["model"],
        }
    }
}

/// Runs the secret-flow pass.
pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut sink_sites = 0usize;
    for f in ws.functions() {
        if f.file.crate_name != cfg.crate_name || f.test_only || f.file.is_bin() {
            continue;
        }
        let Some(body) = &f.f.block else { continue };

        // Taint seeds: `model`-named parameters, plus `self.model` which
        // is matched structurally during the scan.
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        if let Some(inputs) = f.f.inputs() {
            let names = param_names(inputs);
            for n in names {
                if cfg.source_idents.contains(&n.as_str()) {
                    tainted.insert(n);
                }
            }
        }

        // Propagate through `let` bindings to a fixpoint (bounded).
        for _ in 0..4 {
            let before = tainted.len();
            propagate_lets(&body.trees, cfg, &mut tainted);
            if tainted.len() == before {
                break;
            }
        }

        // Check every sink constructor group.
        let mut sinks = Vec::new();
        find_sinks(&body.trees, cfg, &mut sinks);
        sink_sites += sinks.len();
        for (variant, group_line, group) in sinks {
            if let Some(line) = first_taint(&group.stream.trees, cfg, &tainted) {
                findings.push(Finding {
                    rule: Rule::SecretFlow,
                    file: f.file.rel_path.clone(),
                    line: if line > 0 { line } else { group_line },
                    item: f.qual_name(),
                    msg: format!(
                        "model-derived value flows into wire constructor `{variant}` without an approved masking/sharing call ({})",
                        APPROVED.join("/")
                    ),
                });
            }
        }
    }
    // Scope-rot self-check: the engines build wire messages; finding
    // zero sink sites means the pass is no longer looking at them.
    if sink_sites == 0 && ws.files.iter().any(|f| f.crate_name == cfg.crate_name) {
        findings.push(Finding {
            rule: Rule::SelfCheck,
            file: "<workspace>".to_string(),
            line: 0,
            item: "secret-flow".to_string(),
            msg: "no wire-message constructor sites found in the secagg crate — scope rot"
                .to_string(),
        });
    }
    findings
}

/// Extracts parameter names from an argument-list token stream:
/// idents immediately followed by `:` at paren depth 0.
fn param_names(inputs: &TokenStream) -> Vec<String> {
    let toks = &inputs.trees;
    let mut names = Vec::new();
    let mut angle = 0usize;
    for i in 0..toks.len() {
        match toks[i].as_punct() {
            Some('<') => angle += 1,
            Some('>') => angle = angle.saturating_sub(1),
            _ => {}
        }
        if angle > 0 {
            continue;
        }
        let Some(name) = toks[i].as_ident() else {
            continue;
        };
        let prev_ok = i == 0 || toks[i - 1].is_punct(',') || toks[i - 1].as_ident() == Some("mut");
        if prev_ok && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            names.push(name.to_string());
        }
    }
    names
}

/// One pass over `let <ident> = <expr>;` statements at every group
/// level, adding `ident` to the taint set when `expr` carries taint.
fn propagate_lets(toks: &[TokenTree], cfg: &Config, tainted: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            // Pattern: let [mut] NAME [: ty] = expr ;
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(TokenTree::as_ident) {
                // Find the `=` (skipping a `: Type` ascription) and the
                // terminating `;` at this level.
                let mut k = j + 1;
                let mut eq = None;
                while let Some(t) = toks.get(k) {
                    if t.is_punct('=')
                        && !toks.get(k + 1).is_some_and(|n| n.is_punct('='))
                        && !toks
                            .get(k.wrapping_sub(1))
                            .is_some_and(|p| matches!(p.as_punct(), Some('!' | '<' | '>')))
                    {
                        eq = Some(k);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(eq) = eq {
                    let end = (eq + 1..toks.len())
                        .find(|&k| toks[k].is_punct(';'))
                        .unwrap_or(toks.len());
                    if first_taint(&toks[eq + 1..end], cfg, tainted).is_some() {
                        tainted.insert(name.to_string());
                    }
                    i = end;
                    continue;
                }
            }
        }
        // Descend into nested blocks/closures.
        if let TokenTree::Group(g) = &toks[i] {
            propagate_lets(&g.stream.trees, cfg, tainted);
        }
        i += 1;
    }
}

/// Finds `Sink::Variant { ... }` / `Sink::Variant ( ... )` constructor
/// groups, descending into nested groups.
fn find_sinks<'a>(
    toks: &'a [TokenTree],
    cfg: &Config,
    out: &mut Vec<(String, usize, &'a syn::Group)>,
) {
    for i in 0..toks.len() {
        if let TokenTree::Group(g) = &toks[i] {
            find_sinks(&g.stream.trees, cfg, out);
        }
        let Some(sink) = toks[i].as_ident() else {
            continue;
        };
        if !cfg.sinks.contains(&sink) {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
        {
            continue;
        }
        let Some(variant) = toks.get(i + 3).and_then(TokenTree::as_ident) else {
            continue;
        };
        if let Some(TokenTree::Group(g)) = toks.get(i + 4) {
            if matches!(g.delimiter, Delimiter::Brace | Delimiter::Parenthesis) {
                out.push((format!("{sink}::{variant}"), g.line, g));
            }
        }
    }
}

/// Returns the line of the first tainted value in `toks` that is not
/// laundered by an approved call, or `None` if the region is clean.
fn first_taint(toks: &[TokenTree], cfg: &Config, tainted: &BTreeSet<String>) -> Option<usize> {
    let mut i = 0;
    while i < toks.len() {
        // Approved prefix call: `approved(...)` — everything inside the
        // argument group is laundered, skip it.
        if let Some(name) = toks[i].as_ident() {
            if APPROVED.contains(&name)
                && toks.get(i + 1).is_some_and(|t| {
                    t.as_group()
                        .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
                })
            {
                i += 2;
                continue;
            }
            // A source mention: `self.model`, a tainted local, or a
            // source ident field access.
            let is_source = if name == "self" {
                toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(i + 2)
                        .and_then(TokenTree::as_ident)
                        .is_some_and(|f| cfg.source_idents.contains(&f))
            } else {
                tainted.contains(name)
            };
            if is_source {
                let line = toks[i].line();
                // Postfix laundering: walk the `.method(...)` chain; if
                // any link is approved, the value is clean.
                let mut j = if name == "self" { i + 3 } else { i + 1 };
                let mut laundered = false;
                while toks.get(j).is_some_and(|t| t.is_punct('.')) {
                    let Some(m) = toks.get(j + 1).and_then(TokenTree::as_ident) else {
                        break;
                    };
                    match crate::scan::call_args_after(toks, j + 2) {
                        Some(args) => {
                            if APPROVED.contains(&m) {
                                laundered = true;
                            }
                            j = args + 1;
                        }
                        None => {
                            // Bare field access continues the chain.
                            j += 2;
                        }
                    }
                }
                if !laundered {
                    return Some(line);
                }
                i = j;
                continue;
            }
        }
        if let TokenTree::Group(g) = &toks[i] {
            if let Some(line) = first_taint(&g.stream.trees, cfg, tainted) {
                return Some(line);
            }
        }
        i += 1;
    }
    None
}
