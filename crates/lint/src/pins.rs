//! Rule family 4: **pinned invariants** — source patterns that encode
//! past security fixes. The share-confinement leak fixed in PR 6 (a
//! singleton ring stage hands one curious peer a complete additive
//! share set) is guarded by two expressions in `ring/plan.rs`; if a
//! refactor deletes either, this rule fails the lint directly instead
//! of waiting for a soak to stumble over the leak.
//!
//! A pin is a (file, function, required token sequence) triple. Token
//! sequences are matched against the function's body tokens at any
//! nesting depth, so formatting changes cannot break a pin — only
//! removing the expression can.

use syn::token::TokenTree;

use crate::walk::Workspace;
use crate::{Finding, Rule};

/// One pinned pattern.
pub struct Pin {
    /// Path suffix of the file that must contain the pattern.
    pub file_suffix: &'static str,
    /// Function whose body must contain the pattern.
    pub fn_name: &'static str,
    /// The required token sequence, as space-separated token texts.
    /// Group delimiters match structurally: `( 2 )` matches a paren
    /// group whose content is the literal `2`.
    pub pattern: &'static [&'static str],
    /// What the pattern guards.
    pub why: &'static str,
}

/// Production pins: the PR 6 Ring-SAC share-confinement fix.
pub const PRODUCTION: &[Pin] = &[
    Pin {
        file_suffix: "crates/secagg/src/ring/plan.rs",
        fn_name: "stage_k",
        pattern: &[".", "max", "(", "2", ")"],
        why: "Ring-SAC privacy floor: every stage threshold k_m >= 2, so no peer ever holds \
              a complete share set of a neighbour (PR 6 share-confinement fix)",
    },
    Pin {
        file_suffix: "crates/secagg/src/ring/plan.rs",
        fn_name: "new",
        pattern: &[".", "max", "(", "2", ")"],
        why: "Ring-SAC stage layout floor: stage count keeps every stage >= 2 members, \
              refusing singleton stages (PR 6 share-confinement fix)",
    },
];

/// Runs the pin pass: every pin must match, a missing pin is a finding.
pub fn check(ws: &Workspace, pins: &[Pin]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pin in pins {
        let mut found = false;
        let mut file_seen = false;
        for f in ws.functions() {
            if !f.file.rel_path.ends_with(pin.file_suffix) || f.f.ident != pin.fn_name {
                continue;
            }
            file_seen = true;
            if let Some(block) = &f.f.block {
                if contains_sequence(&block.trees, pin.pattern) {
                    found = true;
                    break;
                }
            }
        }
        if !found {
            findings.push(Finding {
                rule: Rule::Pin,
                file: pin.file_suffix.to_string(),
                line: 0,
                item: pin.fn_name.to_string(),
                msg: if file_seen {
                    format!(
                        "pinned security-fix pattern `{}` missing from `{}` — {}",
                        pin.pattern.join(" "),
                        pin.fn_name,
                        pin.why
                    )
                } else {
                    format!(
                        "pinned function `{}` not found in `{}` — pin cannot be checked ({})",
                        pin.fn_name, pin.file_suffix, pin.why
                    )
                },
            });
        }
    }
    findings
}

/// Whether `toks` (at any nesting depth) contains the token sequence.
/// `(`/`)`-style entries in the pattern step into/out of groups.
fn contains_sequence(toks: &[TokenTree], pattern: &[&str]) -> bool {
    if matches_at_any_start(toks, pattern) {
        return true;
    }
    toks.iter().any(|t| {
        t.as_group()
            .is_some_and(|g| contains_sequence(&g.stream.trees, pattern))
    })
}

fn matches_at_any_start(toks: &[TokenTree], pattern: &[&str]) -> bool {
    (0..toks.len()).any(|start| matches_here(&toks[start..], pattern))
}

fn matches_here(toks: &[TokenTree], pattern: &[&str]) -> bool {
    let Some((first, rest)) = pattern.split_first() else {
        return true;
    };
    let Some(t) = toks.first() else {
        return false;
    };
    match (*first, t) {
        ("(", TokenTree::Group(g)) => {
            // The group must contain the prefix of `rest` up to the
            // matching ")" and the remainder must follow the group.
            let Some(close) = rest.iter().position(|p| *p == ")") else {
                return false;
            };
            let inner = &rest[..close];
            let after = &rest[close + 1..];
            matches_exact(&g.stream.trees, inner) && matches_here(&toks[1..], after)
        }
        (p, TokenTree::Ident(i)) if i.text == p => matches_here(&toks[1..], rest),
        (p, TokenTree::Literal(l)) if l.text == p => matches_here(&toks[1..], rest),
        (p, TokenTree::Punct(pc)) if p.len() == 1 && p.starts_with(pc.ch) => {
            matches_here(&toks[1..], rest)
        }
        _ => false,
    }
}

fn matches_exact(toks: &[TokenTree], pattern: &[&str]) -> bool {
    toks.len() == pattern.len() && matches_here(toks, pattern)
}
