//! Token-pattern primitives shared by the rule passes: adjacency-aware
//! scanning over [`syn::TokenStream`]s with recursive descent into
//! groups. All rules work on token shapes (`. unwrap ( )`,
//! `Ident :: Ident ( ... )`, `std :: thread`), which is robust against
//! formatting and comments because the lexer already dropped trivia.

use syn::token::{Delimiter, TokenStream, TokenTree};

/// A token match with its source line.
#[derive(Debug, Clone)]
pub struct Hit {
    /// 1-based source line of the match.
    pub line: usize,
    /// What matched (rule-specific label).
    pub what: String,
}

/// Walks every group level of `stream` (the slice of each level is seen
/// with true adjacency) and calls `f` with the token slice.
pub fn each_level(stream: &TokenStream, f: &mut dyn FnMut(&[TokenTree])) {
    f(&stream.trees);
    for t in &stream.trees {
        if let TokenTree::Group(g) = t {
            each_level(&g.stream, f);
        }
    }
}

/// Finds `.name(` method-call tokens for any `name` in `names`,
/// including turbofish forms (`.sum::<f64>(`).
pub fn method_calls(stream: &TokenStream, names: &[&str], out: &mut Vec<Hit>) {
    each_level(stream, &mut |toks| {
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name) = toks.get(i + 1).and_then(TokenTree::as_ident) else {
                continue;
            };
            if !names.contains(&name) {
                continue;
            }
            if call_args_after(toks, i + 2).is_some() {
                out.push(Hit {
                    line: toks[i + 1].line(),
                    what: format!(".{name}()"),
                });
            }
        }
    });
}

/// If `toks[at..]` starts with call arguments — either a parenthesis
/// group, or a `::<...>` turbofish followed by one — returns the index
/// of the argument group.
pub fn call_args_after(toks: &[TokenTree], at: usize) -> Option<usize> {
    let t = toks.get(at)?;
    if t.as_group()
        .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
    {
        return Some(at);
    }
    // Turbofish: `::< ... >` then the argument group.
    if t.is_punct(':') && toks.get(at + 1)?.is_punct(':') && toks.get(at + 2)?.is_punct('<') {
        let mut depth = 1usize;
        let mut j = at + 3;
        while depth > 0 {
            match toks.get(j)?.as_punct() {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if toks
            .get(j)?
            .as_group()
            .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
        {
            return Some(j);
        }
    }
    None
}

/// Finds `name!` macro invocations for any `name` in `names`.
pub fn macro_calls(stream: &TokenStream, names: &[&str], out: &mut Vec<Hit>) {
    each_level(stream, &mut |toks| {
        for i in 0..toks.len() {
            let Some(name) = toks[i].as_ident() else {
                continue;
            };
            if names.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                out.push(Hit {
                    line: toks[i].line(),
                    what: format!("{name}!"),
                });
            }
        }
    });
}

/// Finds bare identifier references for any `name` in `names`,
/// excluding macro invocations (`name!`).
pub fn ident_refs(stream: &TokenStream, names: &[&str], out: &mut Vec<Hit>) {
    each_level(stream, &mut |toks| {
        for i in 0..toks.len() {
            let Some(name) = toks[i].as_ident() else {
                continue;
            };
            if names.contains(&name) && !toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                out.push(Hit {
                    line: toks[i].line(),
                    what: name.to_string(),
                });
            }
        }
    });
}

/// Finds `a::b` path references (two idents joined by `::`) matching
/// any `(a, b)` pair in `paths`.
pub fn path_refs(stream: &TokenStream, paths: &[(&str, &str)], out: &mut Vec<Hit>) {
    each_level(stream, &mut |toks| {
        for i in 0..toks.len() {
            let Some(a) = toks[i].as_ident() else {
                continue;
            };
            if !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                continue;
            }
            let Some(b) = toks.get(i + 3).and_then(TokenTree::as_ident) else {
                continue;
            };
            if paths.iter().any(|(pa, pb)| *pa == a && *pb == b) {
                out.push(Hit {
                    line: toks[i].line(),
                    what: format!("{a}::{b}"),
                });
            }
        }
    });
}

/// Finds slice/array indexing: an expression token (identifier, call
/// result, or prior index) immediately followed by a bracket group.
/// Attribute groups (preceded by `#`) and array literals/types
/// (preceded by punctuation) do not match.
pub fn index_exprs(stream: &TokenStream, out: &mut Vec<Hit>) {
    each_level(stream, &mut |toks| {
        for i in 1..toks.len() {
            let is_bracket = toks[i]
                .as_group()
                .is_some_and(|g| g.delimiter == Delimiter::Bracket);
            if !is_bracket {
                continue;
            }
            let prev_is_expr = match &toks[i - 1] {
                TokenTree::Ident(id) => {
                    // `vec![...]`-style macros lex as ident `!` group and
                    // never reach here (the `!` sits between); `let [a, b]`
                    // is a slice *pattern*, which is total, not an index;
                    // keyword positions that precede blocks can't precede
                    // `[`.
                    !matches!(
                        id.text.as_str(),
                        "as" | "in" | "return" | "break" | "let" | "mut"
                    )
                }
                TokenTree::Group(g) => g.delimiter != Delimiter::Brace,
                _ => false,
            };
            if prev_is_expr {
                out.push(Hit {
                    line: toks[i].line(),
                    what: "slice/array indexing".to_string(),
                });
            }
        }
    });
}
