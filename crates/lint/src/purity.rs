//! Rule family 1: **sans-IO / determinism purity**.
//!
//! The protocol crates run identically under the deterministic simnet
//! and the real TCP runtime; that only holds if nothing in them reads a
//! wall clock, OS entropy, a socket, a thread, or writes to stdout.
//! Seeded randomness (`StdRng::seed_from_u64` / `from_seed`) is part of
//! the recorded schedule and stays allowed — only the *nondeterministic*
//! entry points are banned.
//!
//! Scope: non-test code in [`PURITY_CRATES`], excluding `src/bin/`
//! binaries (CLI drivers legitimately print and measure time).

use crate::scan::{self, Hit};
use crate::walk::Workspace;
use crate::{Finding, Rule};

/// Crates whose `src` must stay sans-IO end to end.
pub const PURITY_CRATES: &[&str] = &["raft", "hierraft", "secagg", "fed", "simnet", "check"];

/// Individual files inside IO crates that must nonetheless stay pure.
/// The async reactor keeps its bounded send queue and timer wheel free
/// of clocks/sockets so their behaviour is testable (and loom-checkable)
/// without a live reactor; the IO lives in `mod.rs`/`conn.rs`/`sys.rs`.
pub const PURITY_FILES: &[&str] = &[
    "crates/net/src/reactor/queue.rs",
    "crates/net/src/reactor/timer.rs",
];

fn in_scope(file: &crate::walk::SourceFile) -> bool {
    PURITY_CRATES.contains(&file.crate_name.as_str())
        || PURITY_FILES.contains(&file.rel_path.as_str())
}

/// Identifiers that reach nondeterminism no matter how they are pathed.
const BANNED_IDENTS: &[(&str, &str)] = &[
    ("Instant", "wall clock (breaks deterministic replay)"),
    ("SystemTime", "wall clock (breaks deterministic replay)"),
    ("thread_rng", "OS entropy (unseeded randomness)"),
    ("OsRng", "OS entropy (unseeded randomness)"),
    ("from_entropy", "OS entropy (unseeded randomness)"),
];

/// Stdout/stderr macros: protocol code reports through counters and
/// effects, never the console.
const BANNED_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// `std::` module paths that are IO or scheduling, not computation.
const BANNED_PATHS: &[(&str, &str)] = &[("std", "net"), ("std", "thread")];

/// Runs the purity rule over every non-test function, type body, and
/// verbatim item of the protocol crates.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen_protocol_file = false;
    let mut seen_files: Vec<&str> = Vec::new();
    for f in ws.functions() {
        if !in_scope(f.file) || f.test_only || f.file.is_bin() {
            continue;
        }
        seen_protocol_file = true;
        if PURITY_FILES.contains(&f.file.rel_path.as_str())
            && !seen_files.contains(&f.file.rel_path.as_str())
        {
            seen_files.push(f.file.rel_path.as_str());
        }
        let mut hits = Vec::new();
        scan_stream(&f.f.sig, &mut hits);
        if let Some(block) = &f.f.block {
            scan_stream(block, &mut hits);
        }
        for h in hits {
            findings.push(Finding {
                rule: Rule::Purity,
                file: f.file.rel_path.clone(),
                line: h.line,
                item: f.qual_name(),
                msg: h.what,
            });
        }
    }
    // Type bodies and verbatim items (consts, statics) can smuggle the
    // same nondeterminism in field types or initializers.
    for file in &ws.files {
        if !in_scope(file) || file.is_bin() {
            continue;
        }
        scan_non_fn_items(&file.ast.items, false, &mut |item, stream| {
            let mut hits = Vec::new();
            scan_stream(stream, &mut hits);
            for h in hits {
                findings.push(Finding {
                    rule: Rule::Purity,
                    file: file.rel_path.clone(),
                    line: h.line,
                    item: item.to_string(),
                    msg: h.what,
                });
            }
        });
    }
    if !seen_protocol_file {
        findings.push(Finding {
            rule: Rule::SelfCheck,
            file: "<workspace>".to_string(),
            line: 0,
            item: "purity".to_string(),
            msg: "purity rule scanned no protocol functions — scope rot".to_string(),
        });
    }
    // Pinned pure files must actually be scanned — a rename would
    // otherwise silently drop them from the rule's scope. Only enforced
    // when the owning crate is present (fixture workspaces are partial).
    if ws.files.iter().any(|f| f.crate_name == "net") {
        for want in PURITY_FILES {
            if !seen_files.contains(want) {
                findings.push(Finding {
                    rule: Rule::SelfCheck,
                    file: (*want).to_string(),
                    line: 0,
                    item: "purity".to_string(),
                    msg: "pinned pure file scanned no functions — scope rot".to_string(),
                });
            }
        }
    }
    findings
}

fn scan_stream(stream: &syn::TokenStream, hits: &mut Vec<Hit>) {
    let mut raw = Vec::new();
    scan::ident_refs(
        stream,
        &BANNED_IDENTS.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        &mut raw,
    );
    for h in &mut raw {
        if let Some((_, why)) = BANNED_IDENTS.iter().find(|(n, _)| *n == h.what) {
            h.what = format!("references `{}`: {}", h.what, why);
        }
    }
    hits.append(&mut raw);
    let mut macros = Vec::new();
    scan::macro_calls(stream, BANNED_MACROS, &mut macros);
    for mut h in macros {
        h.what = format!(
            "console output `{}`: protocol code reports through counters/effects",
            h.what
        );
        hits.push(h);
    }
    let mut paths = Vec::new();
    scan::path_refs(stream, BANNED_PATHS, &mut paths);
    for mut h in paths {
        h.what = format!(
            "reaches `{}`: IO/scheduling outside the sans-IO boundary",
            h.what
        );
        hits.push(h);
    }
}

/// Visits struct/enum bodies and verbatim item streams outside test
/// code, attributing each to its item name.
fn scan_non_fn_items(
    items: &[syn::Item],
    in_test: bool,
    f: &mut dyn FnMut(&str, &syn::TokenStream),
) {
    for item in items {
        match item {
            syn::Item::Struct(s) if !in_test && !is_test_marked(&s.attrs) => {
                f(&s.ident, &s.body);
            }
            syn::Item::Enum(e) if !in_test && !is_test_marked(&e.attrs) => {
                f(&e.ident, &e.body);
            }
            syn::Item::Verbatim(v) if !in_test => {
                f("<item>", v);
            }
            syn::Item::Mod(m) => {
                if let Some(content) = &m.content {
                    let test = in_test || is_test_marked(&m.attrs) || m.ident == "tests";
                    scan_non_fn_items(content, test, f);
                }
            }
            syn::Item::Impl(im) => {
                // Non-fn impl items (assoc consts) ride along as Verbatim.
                let test = in_test || is_test_marked(&im.attrs);
                scan_non_fn_items(&im.items, test, f);
            }
            _ => {}
        }
    }
}

fn is_test_marked(attrs: &[syn::Attribute]) -> bool {
    attrs
        .iter()
        .any(|a| a.is_cfg_test() || a.path_ident() == Some("test"))
}
