//! The wire-surface registry lint, migrated from xtask's line scanner
//! onto the syn AST walk. Every wire-facing type — an enum or struct
//! that crosses a socket or a storage file — must (a) carry
//! `serde::Serialize` *and* `serde::Deserialize` derives, and (b)
//! appear in a registered round-trip test file, so a type added to the
//! wire surface without a codec round-trip test fails CI instead of
//! failing in production.
//!
//! "Wire-facing" is any `pub enum`/`pub struct` whose name ends in
//! `Msg`, plus the explicit [`EXTRA_WIRE_TYPES`] manifest of payload
//! and persistence types. Unlike the old line scanner, the AST walk
//! sees derives regardless of formatting and correctly skips
//! `#[cfg(test)]` modules.

use std::path::Path;

use crate::walk::Workspace;
use crate::{Finding, Rule};

/// Types that cross the wire or the storage layer without a `Msg`
/// suffix. Grow this list when adding a new payload/persistence type.
pub const EXTRA_WIRE_TYPES: &[&str] = &[
    "Blob",         // simnet's generic payload
    "NodeId",       // embedded in every routed message
    "TimerId",      // persisted inside simnet traces
    "Entry",        // raft log entries, shipped in AppendEntries
    "LogCmd",       // command half of an entry
    "PersistOp",    // raft write-ahead records (FileStorage)
    "FedConfig",    // replicated FedAvg-layer membership
    "SubCmd",       // subgroup log commands
    "SubMembers",   // replicated aggregation roster (self-healing)
    "SacEngine",    // engine selector, replicated inside FedConfig
    "WeightVector", // SAC share payloads
    "FaultPlan",    // declarative fault schedules (chaos + check replay)
    "FaultEntry",
    "FaultAction",
    "PoisonMode",     // Byzantine update-poisoning selector inside FaultAction
    "RobustCombiner", // combining rule selector, replicated inside FedConfig
    "CxStep",         // p2pfl-check counterexample schedules (JSON)
    "Counterexample", // ditto
    "FedCmd",         // FedAvg-layer log commands (round markers + topology)
    "TopologyCmd",    // elastic split/merge/admit/depart operations
    "Topology",       // the versioned elastic layout, shipped in syncs/acks
    "ElasticGroup",   // one subgroup of a Topology
];

/// Files in which a wire type must be mentioned to count as having a
/// registered round-trip test.
pub const REGISTRIES: &[&str] = &[
    "crates/net/tests/codec_props.rs", // binary codec round-trips
    "crates/check/src/schedule.rs",    // counterexample JSON round-trips
];

/// Message enums the scanner must keep finding; losing one is a lint
/// bug, not a clean pass.
const MUST_FIND: &[&str] = &["RaftMsg", "SacMsg", "HierMsg"];

/// Wire-lint result.
pub struct WireReport {
    /// Violations (missing derives / missing registry entries /
    /// self-check failures).
    pub findings: Vec<Finding>,
    /// Wire-facing types checked.
    pub checked: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

fn is_wire_type(name: &str) -> bool {
    name.ends_with("Msg") || EXTRA_WIRE_TYPES.contains(&name)
}

/// Runs the wire-surface lint over a loaded workspace. `registries`
/// maps registry path → file contents (loaded by [`run_at`], injected
/// directly by fixture tests).
pub fn check(ws: &Workspace, registries: &[(String, String)]) -> WireReport {
    let mut findings = Vec::new();
    let mut checked = 0usize;
    let mut found_names: Vec<&str> = Vec::new();
    for t in ws.type_decls() {
        if t.test_only || !t.vis_pub || !is_wire_type(t.ident) {
            continue;
        }
        checked += 1;
        found_names.push(t.ident);
        let derive_idents: Vec<String> = t
            .attrs
            .iter()
            .filter(|a| a.path_ident() == Some("derive"))
            .flat_map(|a| {
                let mut idents = Vec::new();
                a.tokens.visit(&mut |tok| {
                    if let Some(id) = tok.as_ident() {
                        idents.push(id.to_string());
                    }
                });
                idents
            })
            .collect();
        let has_serde = derive_idents.iter().any(|i| i == "Serialize")
            && derive_idents.iter().any(|i| i == "Deserialize");
        if !has_serde {
            findings.push(Finding {
                rule: Rule::WireSurface,
                file: t.file.rel_path.clone(),
                line: t.line,
                item: t.ident.to_string(),
                msg: "wire type lacks serde::Serialize / serde::Deserialize derives".to_string(),
            });
        }
        if !registries.iter().any(|(_, text)| text.contains(t.ident)) {
            findings.push(Finding {
                rule: Rule::WireSurface,
                file: t.file.rel_path.clone(),
                line: t.line,
                item: t.ident.to_string(),
                msg: format!(
                    "wire type has no registered round-trip test (add one to {})",
                    REGISTRIES.join(" or ")
                ),
            });
        }
    }
    for must in MUST_FIND {
        if !found_names.contains(must) {
            findings.push(Finding {
                rule: Rule::SelfCheck,
                file: "<workspace>".to_string(),
                line: 0,
                item: "wire-surface".to_string(),
                msg: format!("scanner no longer finds `{must}` — scope rot"),
            });
        }
    }
    for (path, err) in &ws.parse_errors {
        findings.push(Finding {
            rule: Rule::SelfCheck,
            file: path.clone(),
            line: 0,
            item: "<parse>".to_string(),
            msg: format!("file does not parse, wire surface may be under-scanned: {err}"),
        });
    }
    WireReport {
        findings,
        checked,
        files_scanned: ws.files.len(),
    }
}

/// Loads the workspace and registry files at `root` and runs the
/// wire-surface lint.
pub fn run_at(root: &Path) -> std::io::Result<WireReport> {
    let ws = Workspace::load(root)?;
    let registries: Vec<(String, String)> = REGISTRIES
        .iter()
        .map(|r| {
            (
                (*r).to_string(),
                std::fs::read_to_string(root.join(r)).unwrap_or_default(),
            )
        })
        .collect();
    Ok(check(&ws, &registries))
}
