//! `p2pfl-lint`: the workspace's static-analysis pass, run as
//! `cargo run -p xtask -- lint` and gated in `ci.sh`.
//!
//! Four rule families over a [`syn`]-parsed AST of every protocol crate:
//!
//! 1. **Sans-IO purity** ([`purity`]) — protocol crates must not reach
//!    wall clocks, OS entropy, sockets, threads, or stdout. A replayable
//!    round is only replayable if every input is part of the recorded
//!    schedule.
//! 2. **Wire-path panic-freedom** ([`panics`]) — an intra-workspace call
//!    graph rooted at the codec decode surface and the actor callbacks;
//!    `unwrap`/`expect`/`panic!`-family tokens reachable from hostile
//!    input are findings. Byte-level decode files additionally ban slice
//!    indexing and asserts: the decode layer must be *total*, protocol
//!    layers above it may keep invariant asserts (those guard local
//!    state, not attacker-controlled bytes).
//! 3. **Secret-flow confinement** ([`secrets`]) — in `p2pfl-secagg`,
//!    model weights may only reach a wire-message constructor through
//!    the approved masking/sharing functions ([`secrets::APPROVED`]).
//! 4. **Pinned invariants** ([`pins`]) — source patterns that encode
//!    past security fixes (the Ring-SAC privacy floor) must stay
//!    present; deleting the fix fails the lint, not just the soaks.
//!
//! Plus the wire-surface registry lint ([`wire`]), migrated here from
//! xtask's line scanner.
//!
//! Suppressions go through one [`allow::ALLOWLIST`] with a justification
//! string per entry, a hard cap on its size, and staleness detection
//! (an entry that no longer matches any finding fails the lint).

#![forbid(unsafe_code)]

pub mod allow;
pub mod panics;
pub mod pins;
pub mod purity;
pub mod scan;
pub mod secrets;
pub mod walk;
pub mod wire;

use std::fmt;
use std::path::Path;

pub use allow::AllowEntry;
pub use walk::Workspace;

/// Which rule family produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Sans-IO/determinism purity.
    Purity,
    /// Wire-path panic-freedom.
    WirePanic,
    /// Secret-flow confinement.
    SecretFlow,
    /// Pinned security-fix patterns.
    Pin,
    /// Wire-surface serde/registry lint.
    WireSurface,
    /// The lint's own self-checks (scope rot, parse failures,
    /// allowlist policy).
    SelfCheck,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::Purity => "purity",
            Rule::WirePanic => "wire-panic",
            Rule::SecretFlow => "secret-flow",
            Rule::Pin => "pin",
            Rule::WireSurface => "wire-surface",
            Rule::SelfCheck => "self-check",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule family.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// The item the finding is attributed to (function or type name);
    /// allowlist entries match on this.
    pub item: String,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.file, self.line, self.rule, self.item, self.msg
        )
    }
}

/// The outcome of a full protocol-lint run.
pub struct LintReport {
    /// Findings that survived the allowlist: any entry here fails CI.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry, with its
    /// justification.
    pub suppressed: Vec<(Finding, String)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Functions reachable from wire roots.
    pub reachable_fns: usize,
}

impl LintReport {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs the purity, panic, secret-flow, and pin rules with the
/// production configuration and allowlist against a loaded workspace.
pub fn run_protocol_lints(ws: &Workspace) -> LintReport {
    run_protocol_lints_with(ws, allow::ALLOWLIST)
}

/// As [`run_protocol_lints`] but with a caller-supplied allowlist
/// (fixture tests exercise suppression and staleness with their own).
pub fn run_protocol_lints_with(ws: &Workspace, allowlist: &[AllowEntry]) -> LintReport {
    let mut raw = Vec::new();
    for (path, err) in &ws.parse_errors {
        raw.push(Finding {
            rule: Rule::SelfCheck,
            file: path.clone(),
            line: 0,
            item: "<parse>".to_string(),
            msg: format!("file does not parse, lint coverage is incomplete: {err}"),
        });
    }
    raw.extend(purity::check(ws));
    let panic_out = panics::check(ws, &panics::Config::production());
    raw.extend(panic_out.findings);
    raw.extend(secrets::check(ws, &secrets::Config::production()));
    raw.extend(pins::check(ws, pins::PRODUCTION));
    let (findings, suppressed) = allow::apply(raw, allowlist);
    LintReport {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
        reachable_fns: panic_out.reachable_fns,
    }
}

/// Loads the workspace at `root` and runs the full protocol lint.
pub fn run_at(root: &Path) -> std::io::Result<LintReport> {
    let ws = Workspace::load(root)?;
    Ok(run_protocol_lints(&ws))
}
