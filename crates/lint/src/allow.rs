//! The lint allowlist: the only sanctioned way to ship code that trips
//! a rule. Every entry carries a justification string, matching is by
//! (rule, file suffix, item) so entries survive line drift, and two
//! policy checks keep the list honest:
//!
//! * **hard cap** — at most [`MAX_ENTRIES`] entries; a workspace that
//!   needs more has a design problem, not an allowlist problem;
//! * **staleness** — an entry that suppresses nothing fails the lint,
//!   so fixed violations cannot leave a dangling hole behind.

use crate::{Finding, Rule};

/// Hard cap on allowlist size.
pub const MAX_ENTRIES: usize = 5;

/// One sanctioned suppression.
pub struct AllowEntry {
    /// Rule family the entry applies to.
    pub rule: Rule,
    /// Workspace-relative path suffix the finding's file must end with.
    pub file_suffix: &'static str,
    /// Item name to match, or `"*"` to cover the whole file.
    pub item: &'static str,
    /// Why this violation is sound. Shown in lint output.
    pub justification: &'static str,
}

/// The production allowlist.
pub const ALLOWLIST: &[AllowEntry] = &[
    AllowEntry {
        rule: Rule::Purity,
        file_suffix: "crates/fed/src/parallel.rs",
        item: "*",
        justification: "deterministic fork-join training: std::thread::scope over a fixed \
                        partition, results joined in index order — bit-identical to the serial \
                        path, pinned by the parallel-vs-serial equivalence tests",
    },
    AllowEntry {
        rule: Rule::WirePanic,
        file_suffix: "crates/secagg/src/ring/plan.rs",
        item: "RingPlan::stage_of",
        justification: "expect on a constructor-established invariant: RingPlan::new builds \
                        stages as a partition of 0..n, so every id has a stage; the plan is \
                        never built from wire input",
    },
    AllowEntry {
        rule: Rule::WirePanic,
        file_suffix: "crates/raft/src/storage.rs",
        item: "FileStorage::record",
        justification: "durability loss is fatal by design: a node whose write-ahead log stops \
                        persisting must halt rather than vote/ack from volatile state (raft \
                        safety argument requires stable storage)",
    },
];

/// Splits findings into (active, suppressed-with-justification), and
/// appends policy findings for oversize or stale allowlists.
pub fn apply(
    findings: Vec<Finding>,
    allowlist: &[AllowEntry],
) -> (Vec<Finding>, Vec<(Finding, String)>) {
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; allowlist.len()];
    for f in findings {
        let hit = allowlist.iter().enumerate().find(|(_, a)| {
            a.rule == f.rule
                && f.file.ends_with(a.file_suffix)
                && (a.item == "*" || a.item == f.item)
        });
        match hit {
            Some((idx, a)) => {
                used[idx] = true;
                suppressed.push((f, a.justification.to_string()));
            }
            None => active.push(f),
        }
    }
    if allowlist.len() > MAX_ENTRIES {
        active.push(Finding {
            rule: Rule::SelfCheck,
            file: "<allowlist>".to_string(),
            line: 0,
            item: "policy".to_string(),
            msg: format!(
                "allowlist has {} entries, cap is {MAX_ENTRIES}: fix violations instead of \
                 growing the list",
                allowlist.len()
            ),
        });
    }
    for (idx, a) in allowlist.iter().enumerate() {
        if !used[idx] {
            active.push(Finding {
                rule: Rule::SelfCheck,
                file: "<allowlist>".to_string(),
                line: 0,
                item: "policy".to_string(),
                msg: format!(
                    "stale allowlist entry ({} / {} / {}): it suppresses nothing — remove it",
                    a.rule, a.file_suffix, a.item
                ),
            });
        }
    }
    (active, suppressed)
}
