//! Workspace loading and AST flattening: reads every `crates/*/src`
//! source file into a parsed [`syn::File`], then offers flattened views
//! (all functions with their impl context, all type declarations) that
//! the rule passes consume. Fixture tests build the same [`Workspace`]
//! from in-memory sources, so every rule is testable without touching
//! the real tree.

use std::path::{Path, PathBuf};

/// Source trees the walker skips: vendored shims (external API surface,
/// not ours), the lint machinery itself, and the xtask driver.
pub const SKIP_DIRS: &[&str] = &["shims", "xtask", "lint"];

/// One parsed source file.
pub struct SourceFile {
    /// The crate's directory name under `crates/` (e.g. `secagg`).
    pub crate_name: String,
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw source text (the wire-surface registry check greps it).
    pub text: String,
    /// The parsed item tree.
    pub ast: syn::File,
}

impl SourceFile {
    /// Whether this file is a CLI binary (`src/bin/...`) — binaries sit
    /// outside the sans-IO protocol surface.
    pub fn is_bin(&self) -> bool {
        self.rel_path.contains("/src/bin/")
    }
}

/// All parsed sources, plus parse failures (reported as lint findings —
/// a file the linter cannot read is not a clean pass).
pub struct Workspace {
    /// Parsed files in path order.
    pub files: Vec<SourceFile>,
    /// Files that failed to parse: (rel_path, error).
    pub parse_errors: Vec<(String, String)>,
}

impl Workspace {
    /// Loads every `crates/*/src/**/*.rs` under `root`, skipping
    /// [`SKIP_DIRS`].
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut parse_errors = Vec::new();
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let mut paths = Vec::new();
            collect_rs(&dir.join("src"), &mut paths);
            paths.sort();
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&p)?;
                match syn::parse_file(&text) {
                    Ok(ast) => files.push(SourceFile {
                        crate_name: name.clone(),
                        rel_path: rel,
                        text,
                        ast,
                    }),
                    Err(e) => parse_errors.push((rel, e.to_string())),
                }
            }
        }
        Ok(Workspace {
            files,
            parse_errors,
        })
    }

    /// Builds a workspace from in-memory sources: `(crate_name,
    /// rel_path, source)` triples. Used by the fixture self-tests.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Workspace {
        let mut files = Vec::new();
        let mut parse_errors = Vec::new();
        for (crate_name, rel_path, src) in sources {
            match syn::parse_file(src) {
                Ok(ast) => files.push(SourceFile {
                    crate_name: (*crate_name).to_string(),
                    rel_path: (*rel_path).to_string(),
                    text: (*src).to_string(),
                    ast,
                }),
                Err(e) => parse_errors.push(((*rel_path).to_string(), e.to_string())),
            }
        }
        Workspace {
            files,
            parse_errors,
        }
    }

    /// Every function in the workspace, flattened out of impls, traits,
    /// and nested modules, with test-code marking.
    pub fn functions(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        for file in &self.files {
            walk_items(
                &file.ast.items,
                file,
                None,
                false,
                &mut out,
                &mut Vec::new(),
            );
        }
        out
    }

    /// Every struct/enum declaration, flattened, with test-code marking.
    pub fn type_decls(&self) -> Vec<TypeRef<'_>> {
        let mut out = Vec::new();
        for file in &self.files {
            walk_types(&file.ast.items, file, false, &mut out);
        }
        out
    }
}

/// A function with its location and impl context.
pub struct FnRef<'a> {
    /// The file the function lives in.
    pub file: &'a SourceFile,
    /// Enclosing impl's self type or trait name, if any.
    pub self_ty: Option<String>,
    /// Trait being implemented, for trait impls.
    pub trait_name: Option<String>,
    /// The function item.
    pub f: &'a syn::ItemFn,
    /// Whether the function is test-only (`#[cfg(test)]` / `#[test]` on
    /// itself or any enclosing item).
    pub test_only: bool,
}

impl FnRef<'_> {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.f.ident),
            None => self.f.ident.clone(),
        }
    }
}

/// A struct/enum declaration with its location.
pub struct TypeRef<'a> {
    /// The file the type lives in.
    pub file: &'a SourceFile,
    /// The type name.
    pub ident: &'a str,
    /// Whether the declaration is `pub`.
    pub vis_pub: bool,
    /// Outer attributes.
    pub attrs: &'a [syn::Attribute],
    /// Source line of the declaration.
    pub line: usize,
    /// Whether the type is declared inside test-only code.
    pub test_only: bool,
}

fn attrs_mark_test(attrs: &[syn::Attribute]) -> bool {
    attrs.iter().any(|a| {
        a.is_cfg_test() || a.path_ident() == Some("test") || a.path_ident() == Some("bench")
    })
}

fn walk_items<'a>(
    items: &'a [syn::Item],
    file: &'a SourceFile,
    ctx: Option<(&'a str, Option<&'a str>)>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
    _mods: &mut Vec<String>,
) {
    for item in items {
        match item {
            syn::Item::Fn(f) => {
                let test_only = in_test || attrs_mark_test(&f.attrs);
                out.push(FnRef {
                    file,
                    self_ty: ctx.map(|(t, _)| t.to_string()),
                    trait_name: ctx.and_then(|(_, tr)| tr.map(str::to_string)),
                    f,
                    test_only,
                });
            }
            syn::Item::Impl(im) => {
                let test = in_test || attrs_mark_test(&im.attrs);
                walk_items(
                    &im.items,
                    file,
                    Some((&im.self_ty, im.trait_name.as_deref())),
                    test,
                    out,
                    _mods,
                );
            }
            syn::Item::Trait(tr) => {
                let test = in_test || attrs_mark_test(&tr.attrs);
                walk_items(&tr.items, file, Some((&tr.ident, None)), test, out, _mods);
            }
            syn::Item::Mod(m) => {
                if let Some(content) = &m.content {
                    let test = in_test || attrs_mark_test(&m.attrs) || m.ident == "tests";
                    walk_items(content, file, None, test, out, _mods);
                }
            }
            _ => {}
        }
    }
}

fn walk_types<'a>(
    items: &'a [syn::Item],
    file: &'a SourceFile,
    in_test: bool,
    out: &mut Vec<TypeRef<'a>>,
) {
    for item in items {
        match item {
            syn::Item::Struct(s) => out.push(TypeRef {
                file,
                ident: &s.ident,
                vis_pub: s.vis_pub,
                attrs: &s.attrs,
                line: s.line,
                test_only: in_test || attrs_mark_test(&s.attrs),
            }),
            syn::Item::Enum(e) => out.push(TypeRef {
                file,
                ident: &e.ident,
                vis_pub: e.vis_pub,
                attrs: &e.attrs,
                line: e.line,
                test_only: in_test || attrs_mark_test(&e.attrs),
            }),
            syn::Item::Mod(m) => {
                if let Some(content) = &m.content {
                    let test = in_test || attrs_mark_test(&m.attrs) || m.ident == "tests";
                    walk_types(content, file, test, out);
                }
            }
            syn::Item::Impl(im) => walk_types(&im.items, file, in_test, out),
            _ => {}
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
