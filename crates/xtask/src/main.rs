//! Workspace lint tasks. The only task today is the **wire-surface
//! lint** (`cargo run -p xtask` or `cargo run -p xtask -- wire-lint`):
//!
//! Every wire-facing type — an enum or struct that crosses a socket or a
//! storage file — must (a) carry `serde::Serialize` *and*
//! `serde::Deserialize` derives, and (b) appear in a registered
//! round-trip test file, so a type added to the wire surface without a
//! codec round-trip test fails CI instead of failing in production.
//!
//! "Wire-facing" is decided textually (the workspace has no `syn`):
//! any `pub enum`/`pub struct` whose name ends in `Msg`, plus the
//! explicit manifest below of payload and persistence types. The scanner
//! walks `crates/*/src`, skipping the vendored shims and this crate.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Types that cross the wire or the storage layer without a `Msg` suffix.
/// Grow this list when adding a new payload/persistence type.
const EXTRA_WIRE_TYPES: &[&str] = &[
    "Blob",         // simnet's generic payload
    "NodeId",       // embedded in every routed message
    "TimerId",      // persisted inside simnet traces
    "Entry",        // raft log entries, shipped in AppendEntries
    "LogCmd",       // command half of an entry
    "PersistOp",    // raft write-ahead records (FileStorage)
    "FedConfig",    // replicated FedAvg-layer membership
    "SubCmd",       // subgroup log commands
    "SubMembers",   // replicated aggregation roster (self-healing)
    "SacEngine",    // engine selector, replicated inside FedConfig
    "WeightVector", // SAC share payloads
    "FaultPlan",    // declarative fault schedules (chaos + check replay)
    "FaultEntry",
    "FaultAction",
    "PoisonMode",     // Byzantine update-poisoning selector inside FaultAction
    "RobustCombiner", // combining rule selector, replicated inside FedConfig
    "CxStep",         // p2pfl-check counterexample schedules (JSON)
    "Counterexample", // ditto
];

/// Files in which a wire type must be mentioned to count as having a
/// registered round-trip test.
const REGISTRIES: &[&str] = &[
    "crates/net/tests/codec_props.rs", // binary codec round-trips
    "crates/check/src/schedule.rs",    // counterexample JSON round-trips
];

/// Source trees the scanner skips: vendored shims (external API surface,
/// not ours) and this crate.
const SKIP_DIRS: &[&str] = &["crates/shims", "crates/xtask"];

struct Decl {
    file: PathBuf,
    line: usize,
    name: String,
    has_serde: bool,
}

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wire-lint".into());
    if mode != "wire-lint" {
        eprintln!("unknown xtask '{mode}' (available: wire-lint)");
        std::process::exit(2);
    }
    let root = workspace_root();
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("read crates/") {
        let dir = entry.expect("dir entry").path();
        if SKIP_DIRS
            .iter()
            .any(|s| dir.ends_with(Path::new(s).file_name().unwrap()))
        {
            continue;
        }
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut decls = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f).expect("read source file");
        scan_file(f, &src, &mut decls);
    }

    let registries: Vec<String> = REGISTRIES
        .iter()
        .map(|r| std::fs::read_to_string(root.join(r)).unwrap_or_default())
        .collect();

    let mut report = String::new();
    let mut checked = 0;
    for d in &decls {
        checked += 1;
        let rel = d.file.strip_prefix(&root).unwrap_or(&d.file).display();
        if !d.has_serde {
            writeln!(
                report,
                "{rel}:{}: wire type `{}` lacks serde::Serialize / serde::Deserialize derives",
                d.line, d.name
            )
            .unwrap();
        }
        if !registries.iter().any(|r| r.contains(&d.name)) {
            writeln!(
                report,
                "{rel}:{}: wire type `{}` has no registered round-trip test (add one to {})",
                d.line,
                d.name,
                REGISTRIES.join(" or ")
            )
            .unwrap();
        }
    }

    // The lint must actually be looking at the protocol: if the scanner
    // stops finding the known message enums, that is a lint bug, not a
    // clean pass.
    for must in ["RaftMsg", "SacMsg", "HierMsg"] {
        if !decls.iter().any(|d| d.name == must) {
            writeln!(report, "lint self-check: scanner no longer finds `{must}`").unwrap();
        }
    }

    if report.is_empty() {
        println!(
            "wire-lint: {checked} wire-facing types OK ({} files scanned)",
            files.len()
        );
    } else {
        eprint!("{report}");
        eprintln!("wire-lint: FAILED");
        std::process::exit(1);
    }
}

fn workspace_root() -> PathBuf {
    // xtask always runs via cargo from somewhere inside the workspace.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "not inside the workspace");
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Extracts the type name from a `pub enum Foo<T> {` / `pub struct Foo(`
/// declaration line.
fn decl_name(line: &str) -> Option<String> {
    let rest = line
        .trim_start()
        .strip_prefix("pub enum ")
        .or_else(|| line.trim_start().strip_prefix("pub struct "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn is_wire_type(name: &str) -> bool {
    name.ends_with("Msg") || EXTRA_WIRE_TYPES.contains(&name)
}

/// Whether the attribute block immediately above `lines[idx]` mentions
/// both serde derives. Walks upward over attributes, their continuation
/// lines, and doc comments.
fn serde_derived(lines: &[&str], idx: usize) -> bool {
    let mut text = String::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim();
        let attrish = t.starts_with("#[")
            || t.starts_with("///")
            || t.starts_with("//")
            || t.starts_with(")]")
            || t.ends_with(',')
            || t.ends_with("(");
        if t.is_empty() || !attrish {
            break;
        }
        text.push_str(t);
        text.push('\n');
    }
    text.contains("Serialize") && text.contains("Deserialize")
}

fn scan_file(file: &Path, src: &str, out: &mut Vec<Decl>) {
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        // Skip declarations inside test modules: scanner-level heuristic —
        // test-only types are not wire surface.
        let Some(name) = decl_name(line) else {
            continue;
        };
        if !is_wire_type(&name) {
            continue;
        }
        out.push(Decl {
            file: file.to_path_buf(),
            line: i + 1,
            name,
            has_serde: serde_derived(&lines, i),
        });
    }
}
