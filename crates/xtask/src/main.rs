//! Workspace lint tasks, all backed by the `p2pfl-lint` syn AST walk:
//!
//! * `cargo run -p xtask -- wire-lint` — the wire-surface lint: every
//!   wire-facing type must carry both serde derives and appear in a
//!   registered codec round-trip test file.
//! * `cargo run -p xtask -- lint` — the protocol static-analysis pass:
//!   sans-IO purity, wire-path panic-freedom (call graph from the
//!   hostile-input roots), secret-flow confinement in `p2pfl-secagg`,
//!   and the pinned security-fix patterns, governed by the audited
//!   allowlist in `p2pfl-lint::allow`.
//!
//! Both are CI gates (see `ci.sh`); a non-empty report exits 1.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wire-lint".into());
    let root = workspace_root();
    match mode.as_str() {
        "wire-lint" => wire_lint(&root),
        "lint" => protocol_lint(&root),
        _ => {
            eprintln!("unknown xtask '{mode}' (available: wire-lint, lint)");
            std::process::exit(2);
        }
    }
}

fn wire_lint(root: &Path) {
    let report = match p2pfl_lint::wire::run_at(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wire-lint: cannot load workspace: {e}");
            std::process::exit(1);
        }
    };
    if report.findings.is_empty() {
        println!(
            "wire-lint: {} wire-facing types OK ({} files scanned)",
            report.checked, report.files_scanned
        );
    } else {
        for f in &report.findings {
            eprintln!("{f}");
        }
        eprintln!("wire-lint: FAILED");
        std::process::exit(1);
    }
}

fn protocol_lint(root: &Path) {
    let report = match p2pfl_lint::run_at(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot load workspace: {e}");
            std::process::exit(1);
        }
    };
    for (f, why) in &report.suppressed {
        println!("lint: allowed  {f}\n      justification: {why}");
    }
    if report.is_clean() {
        println!(
            "lint: OK — {} files, {} wire-reachable fns, {} allowlisted",
            report.files_scanned,
            report.reachable_fns,
            report.suppressed.len()
        );
    } else {
        for f in &report.findings {
            eprintln!("{f}");
        }
        eprintln!("lint: FAILED ({} findings)", report.findings.len());
        std::process::exit(1);
    }
}

fn workspace_root() -> PathBuf {
    // xtask always runs via cargo from somewhere inside the workspace.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "not inside the workspace");
    }
}
