#!/usr/bin/env bash
# The full local CI gate: formatting, lints (warnings are errors), a
# release build, and the complete test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos soak (bounded smoke, fixed seed)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --smoke --seed 7

echo "ci: all green"
