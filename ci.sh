#!/usr/bin/env bash
# The full local CI gate: formatting, lints (warnings are errors), the
# wire-surface lint, the protocol static-analysis pass (p2pfl-lint), a
# release build, the complete test suite, the bounded model-checking
# explorer with its mutation self-check, the loom concurrency models,
# and (where the tools exist) sanitizers, Miri, and cargo-deny.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> wire-surface lint (serde derives + codec round-trip registry)"
cargo run --release -p xtask -- wire-lint

echo "==> protocol static analysis (sans-IO purity, wire-path panic-freedom, secret flow, pins)"
cargo run --release -p xtask -- lint

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> p2pfl-check: bounded exhaustive exploration (invariant oracles)"
cargo run --release -p p2pfl-check --bin explore -- --ci

echo "==> p2pfl-check: mutation self-check (seeded mutants must be caught)"
cargo run --release -p p2pfl-check --features mutants --bin mutation_check

echo "==> loom models over the hub's and reactor's shared state"
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    cargo test -p p2pfl-net --test loom_hub --test loom_reactor -q

# Sanitizers (nightly-only, soft gates). ThreadSanitizer needs an
# *instrumented* std (-Zbuild-std, which needs the rust-src component):
# std's sync primitives use futexes directly, so against a prebuilt std
# TSan cannot see their synchronization and reports false races.
# AddressSanitizer tolerates an uninstrumented std, so the heap-safety
# smoke on the hostile-input tests runs wherever a nightly exists. The
# explicit --target keeps RUSTFLAGS off host proc-macro builds.
HOST_TARGET="$(rustc --version --verbose | sed -n 's/^host: //p')"
NIGHTLY_SRC="$(rustc +nightly --print sysroot 2>/dev/null || true)/lib/rustlib/src/rust/library/Cargo.lock"
if [ -f "$NIGHTLY_SRC" ]; then
    echo "==> ThreadSanitizer (p2pfl-net TCP runtime tests)"
    RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
        cargo +nightly test -Zbuild-std --target "$HOST_TARGET" -p p2pfl-net --lib -q
else
    echo "==> ThreadSanitizer: SKIPPED (nightly rust-src not installed; TSan needs an instrumented std)"
fi

if rustc +nightly --version >/dev/null 2>&1; then
    echo "==> AddressSanitizer smoke (codec + runtime malformed-input tests)"
    RUSTFLAGS="-Zsanitizer=address" CARGO_TARGET_DIR=target/asan \
        cargo +nightly test --target "$HOST_TARGET" -p p2pfl-net --test malformed_input -q
else
    echo "==> AddressSanitizer: SKIPPED (no nightly toolchain installed)"
fi

if cargo +nightly miri --version >/dev/null 2>&1; then
    echo "==> miri (UB check on secagg + simnet)"
    cargo +nightly miri test -p p2pfl-secagg -p p2pfl-simnet -q
else
    echo "==> miri: SKIPPED (cargo-miri not installed for the nightly toolchain)"
fi

if command -v cargo-deny >/dev/null 2>&1; then
    # Soft gate: report but do not fail CI (offline images lack the
    # advisory DB; see deny.toml).
    echo "==> cargo deny (soft gate)"
    cargo deny check || echo "==> cargo deny reported issues (soft gate, not fatal)"
else
    echo "==> cargo deny: SKIPPED (cargo-deny not installed)"
fi

echo "==> chaos soak (bounded smoke, fixed seed)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --smoke --seed 7

echo "==> churn soak (per-round kill/restart vs crash-free twin, fixed seed)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --churn --quick --seed 7

echo "==> ring-engine chaos soak (crash cases + mid-round ring recovery, fixed seed)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --smoke --engine ring --skip-tcp --seed 7

echo "==> byzantine soak (commit-then-skew attacker on sim + TCP, fixed seed)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --byzantine --seed 7

echo "==> flash-crowd soak (elastic burst join + mass leave, twin digest + TCP re-key replay)"
cargo run --release -p p2pfl-bench --bin chaos_soak -- --flash-crowd --seed 7

# Perf gate: quick hotpath run compared against the checked-in baseline;
# fails on a >2x median regression in any benchmark, and the in-binary
# crossover gate fails if Ring-SAC is not strictly cheaper than pairwise
# beyond the measured crossover subgroup size. Soft-skips when the
# baseline is absent (fresh checkout without BENCH_hotpath.json). To
# refresh the baseline after an intentional perf change, run the full
# benchmark on a quiet machine: cargo run --release -p p2pfl-bench --bin hotpath
if [ -f BENCH_hotpath.json ]; then
    echo "==> perf gate (hotpath --quick vs BENCH_hotpath.json)"
    mkdir -p target/bench
    cargo run --release -p p2pfl-bench --bin hotpath -- \
        --quick --baseline BENCH_hotpath.json --out target/bench/hotpath_quick.json
else
    echo "==> perf gate: SKIPPED (no BENCH_hotpath.json baseline checked in)"
fi

# Scale gate: quick two-layer round (64 peers on the async reactor)
# digest-checked against the simulator twin and compared against the
# checked-in 1000-peer baseline's _quick entries; fails on a >2x median
# regression above an absolute 250ms floor (1-core scheduler noise).
# Refresh after an intentional change with the full run on a quiet
# machine: cargo run --release -p p2pfl-bench --bin scale
if [ -f BENCH_scale.json ]; then
    echo "==> scale gate (scale --quick vs BENCH_scale.json)"
    mkdir -p target/bench
    cargo run --release -p p2pfl-bench --bin scale -- \
        --quick --baseline BENCH_scale.json --out target/bench/scale_quick.json
else
    echo "==> scale gate: SKIPPED (no BENCH_scale.json baseline checked in)"
fi

echo "==> scale chaos soak (fault-injected round + connection massacre, digest-checked)"
cargo run --release -p p2pfl-bench --bin scale -- --quick --soak --out target/bench/scale_soak.json

echo "ci: all green"
