//! Umbrella crate for the p2pfl workspace.
//!
//! This crate exists to host the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. Downstream users should
//! depend on the individual crates (`p2pfl`, `p2pfl-raft`, ...) directly.

pub use p2pfl;
pub use p2pfl_fed as fed;
pub use p2pfl_hierraft as hierraft;
pub use p2pfl_ml as ml;
pub use p2pfl_raft as raft;
pub use p2pfl_secagg as secagg;
pub use p2pfl_simnet as simnet;
