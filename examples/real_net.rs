//! A full two-layer aggregation round over real localhost TCP.
//!
//! Six peers in two subgroups ({0,1,2} and {3,4,5}) run the paper's
//! two-layer protocol outside the simulator:
//!
//! 1. **Election** — every peer runs `HierActor` (subgroup Raft + FedAvg
//!    layer) over sockets until each subgroup has a leader and the two
//!    leaders form the FedAvg layer.
//! 2. **Crash** — the subgroup leader that is a FedAvg-layer *follower*
//!    is killed mid-round. (With only two subgroups the FedAvg layer has
//!    two members, so losing its leader leaves no quorum to admit a
//!    replacement — that flow needs ≥3 subgroups and is exercised by
//!    `p2pfl-hierraft`'s experiments.) The survivors elect a replacement,
//!    which joins the FedAvg layer in the dead peer's place.
//! 3. **Rejoin** — the killed peer restarts *at a new port*; every other
//!    peer is re-pointed via `add_peer` and the transport's reconnect
//!    machinery picks it back up. It rejoins as a plain follower and
//!    retires its stale FedAvg membership from the replicated subgroup log.
//! 4. **SAC** — each subgroup runs fault-tolerant secure aggregation over
//!    TCP with the *elected* leaders (including the rejoined peer as a
//!    contributor).
//! 5. **FedAvg** — subgroup results are combined size-weighted, and the
//!    final model digest is compared against a simulator run of the same
//!    aggregation with the same seeds and models: they must be equal
//!    bit for bit.
//!
//! Run with `cargo run --example real_net`.

use p2pfl_hierraft::{HierActor, HierMsg, HierPeerConfig, RobustCombiner};
use p2pfl_net::{NetStats, PeerRuntime};
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const SEED: u64 = 2024;
const DIM: usize = 1000;
const K: usize = 2;

const GROUP_A: [u32; 3] = [0, 1, 2];
const GROUP_B: [u32; 3] = [3, 4, 5];
const FOUNDING: [u32; 2] = [0, 3];

fn ids(raw: &[u32]) -> Vec<NodeId> {
    raw.iter().map(|&i| NodeId(i)).collect()
}

fn hier_config(id: u32) -> HierPeerConfig {
    let (subgroup, subgroup_index) = if GROUP_A.contains(&id) {
        (ids(&GROUP_A), 0)
    } else {
        (ids(&GROUP_B), 1)
    };
    HierPeerConfig {
        id: NodeId(id),
        subgroup,
        subgroup_index,
        founding_fed: ids(&FOUNDING),
        t: SimDuration::from_millis(150),
        heartbeat: SimDuration::from_millis(40),
        config_commit_interval: SimDuration::from_millis(200),
        join_poll_interval: SimDuration::from_millis(100),
        probe_interval: SimDuration::from_millis(40),
        suspect_after: SimDuration::from_millis(150),
        dead_after: SimDuration::from_millis(450),
        engine: SacEngine::Pairwise,
        combiner: RobustCombiner::FedAvg,
        seed: SEED + id as u64,
        elastic: None,
    }
}

type HierRt = PeerRuntime<HierMsg, HierActor>;
type SacRt = PeerRuntime<SacMsg, SacPeerActor>;

/// Polls `pred` across the live runtimes until it holds or `what` times out.
fn wait_for(runtimes: &[Option<HierRt>], what: &str, pred: impl Fn(&[Option<HierRt>]) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred(runtimes) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("  ok: {what}");
}

fn sub_leader_of(runtimes: &[Option<HierRt>], group: &[u32]) -> Option<u32> {
    let leaders: Vec<u32> = group
        .iter()
        .filter(|&&i| {
            runtimes[i as usize]
                .as_ref()
                .is_some_and(|rt| rt.with(|a, _| a.is_sub_leader() && a.is_fed_member()))
        })
        .copied()
        .collect();
    (leaders.len() == 1).then(|| leaders[0])
}

fn fed_leader_count(runtimes: &[Option<HierRt>]) -> usize {
    runtimes
        .iter()
        .flatten()
        .filter(|rt| rt.with(|a, _| a.is_fed_leader()))
        .count()
}

/// Deterministic per-peer models — the same closure feeds the simulator
/// mirror, so the two worlds aggregate identical inputs.
fn models() -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xbeef);
    (0..6)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

fn sac_config(group: &[u32], position: usize, leader_pos: usize, deadline_ms: u64) -> SacConfig {
    SacConfig {
        group: ids(group),
        position,
        leader_pos,
        k: K,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: SimDuration::from_millis(deadline_ms),
        collect_deadline: SimDuration::from_millis(deadline_ms),
        round_deadline: None,
        seed: SEED ^ group[0] as u64,
    }
}

/// Runs one SAC round per subgroup plus the FedAvg combine under the
/// deterministic simulator and returns the final digest.
fn simulator_digest(leader_a: usize, leader_b: usize) -> u64 {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let models = models();
    for i in 0..6u32 {
        let (group, pos, leader) = if GROUP_A.contains(&i) {
            (&GROUP_A, i as usize, leader_a)
        } else {
            (&GROUP_B, i as usize - 3, leader_b)
        };
        sim.add_node(SacPeerActor::new(
            sac_config(group, pos, leader, 500),
            models[i as usize].clone(),
        ));
    }
    sim.run_until_quiet(100);
    for leader in [NodeId(GROUP_A[leader_a]), NodeId(GROUP_B[leader_b])] {
        sim.exec::<SacPeerActor, _, _>(leader, |a, ctx| a.start_round(ctx, 1));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let results: Vec<WeightVector> = [NodeId(GROUP_A[leader_a]), NodeId(GROUP_B[leader_b])]
        .iter()
        .map(|&l| {
            let a = sim.actor::<SacPeerActor>(l);
            assert_eq!(a.phase, SacPhase::Done, "sim leader {l:?}: {:?}", a.phase);
            a.result.clone().unwrap()
        })
        .collect();
    WeightVector::weighted_mean(&results, &[3.0, 3.0]).digest()
}

fn wait_sac_done(leader: &SacRt) -> WeightVector {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let state = leader.with(|a, _| (a.phase.clone(), a.result.clone()));
        match state {
            (SacPhase::Done, Some(r)) => return r,
            (SacPhase::Failed(e), _) => panic!("SAC round failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "SAC round stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    // ---- Phase 1: bring up the two-layer Raft over TCP -----------------
    println!("[1/5] electing subgroup + FedAvg leaders over TCP");
    let mut hier: Vec<Option<HierRt>> = (0..6u32)
        .map(|i| {
            Some(
                PeerRuntime::start(
                    NodeId(i),
                    "127.0.0.1:0",
                    &[],
                    HierActor::new(hier_config(i)),
                )
                .expect("bind"),
            )
        })
        .collect();
    let addrs: Vec<_> = hier
        .iter()
        .map(|rt| rt.as_ref().unwrap().local_addr())
        .collect();
    for rt in hier.iter().flatten() {
        for (j, &addr) in addrs.iter().enumerate() {
            if NodeId(j as u32) != rt.node_id() {
                rt.add_peer(NodeId(j as u32), addr);
            }
        }
    }
    wait_for(&hier, "stable two-layer leadership", |rts| {
        sub_leader_of(rts, &GROUP_A).is_some()
            && sub_leader_of(rts, &GROUP_B).is_some()
            && fed_leader_count(rts) == 1
    });

    // ---- Phase 2: kill a subgroup leader mid-round ---------------------
    // Kill whichever subgroup leader is a FedAvg-layer follower: the
    // two-member FedAvg layer keeps its quorum, so the replacement's join
    // can commit (see module docs).
    let la = sub_leader_of(&hier, &GROUP_A).unwrap();
    let lb = sub_leader_of(&hier, &GROUP_B).unwrap();
    let a_leads_fed = hier[la as usize]
        .as_ref()
        .unwrap()
        .with(|actor, _| actor.is_fed_leader());
    let (victim, victim_group): (u32, &[u32; 3]) = if a_leads_fed {
        (lb, &GROUP_B)
    } else {
        (la, &GROUP_A)
    };
    println!("[2/5] killing subgroup leader {victim} (a FedAvg follower)");
    drop(hier[victim as usize].take());
    wait_for(&hier, "replacement leader joined the FedAvg layer", |rts| {
        sub_leader_of(rts, victim_group).is_some_and(|l| l != victim) && fed_leader_count(rts) == 1
    });

    // ---- Phase 3: rejoin the dead peer at a NEW port -------------------
    println!("[3/5] rejoining peer {victim} at a fresh port");
    let rejoined = PeerRuntime::start(
        NodeId(victim),
        "127.0.0.1:0",
        &[],
        HierActor::new(hier_config(victim)),
    )
    .expect("bind");
    for (j, &addr) in addrs.iter().enumerate() {
        if j as u32 != victim {
            rejoined.add_peer(NodeId(j as u32), addr);
        }
    }
    let new_addr = rejoined.local_addr();
    for rt in hier.iter().flatten() {
        rt.add_peer(NodeId(victim), new_addr); // re-point the mesh
    }
    hier[victim as usize] = Some(rejoined);
    wait_for(&hier, "rejoined peer settled as follower", |rts| {
        let back = rts[victim as usize].as_ref().unwrap();
        // It must have caught up (retired its stale FedAvg membership via
        // the replicated config) without disturbing the new leadership.
        !back.with(|a, _| a.is_sub_leader() || a.is_fed_member())
            && sub_leader_of(rts, victim_group).is_some_and(|l| l != victim)
            && fed_leader_count(rts) == 1
    });

    let leader_a = sub_leader_of(&hier, &GROUP_A).unwrap();
    let leader_b = sub_leader_of(&hier, &GROUP_B).unwrap();
    let leader_a_pos = GROUP_A.iter().position(|&i| i == leader_a).unwrap();
    let leader_b_pos = GROUP_B.iter().position(|&i| i == leader_b).unwrap();

    // ---- Phase 4: secure aggregation per subgroup over TCP -------------
    println!("[4/5] running SAC in both subgroups (leaders: {leader_a}, {leader_b})");
    let models = models();
    let sac: Vec<SacRt> = (0..6u32)
        .map(|i| {
            let (group, pos, leader) = if GROUP_A.contains(&i) {
                (&GROUP_A, i as usize, leader_a_pos)
            } else {
                (&GROUP_B, i as usize - 3, leader_b_pos)
            };
            // Wall-clock deadlines: generous, so reconnect backoff can
            // never shrink the contributor set (the leader freezes early
            // once all blocks are in, so this costs nothing when healthy).
            let actor = SacPeerActor::new(
                sac_config(group, pos, leader, 10_000),
                models[i as usize].clone(),
            );
            PeerRuntime::start(NodeId(i), "127.0.0.1:0", &[], actor).expect("bind")
        })
        .collect();
    for rt in &sac {
        let group: &[u32] = if GROUP_A.contains(&rt.node_id().0) {
            &GROUP_A
        } else {
            &GROUP_B
        };
        for &j in group {
            if NodeId(j) != rt.node_id() {
                rt.add_peer(NodeId(j), sac[j as usize].local_addr());
            }
        }
    }
    for leader in [leader_a, leader_b] {
        sac[leader as usize].with(|a, ctx| a.start_round(ctx, 1));
    }
    let result_a = wait_sac_done(&sac[leader_a as usize]);
    let result_b = wait_sac_done(&sac[leader_b as usize]);

    // ---- Phase 5: FedAvg combine + parity check ------------------------
    // Both subgroups aggregated 3 contributors, so the size-weighted
    // FedAvg combine is an equal-weight mean of the two subtotals.
    let global = WeightVector::weighted_mean(&[result_a, result_b], &[3.0, 3.0]);
    let real = global.digest();
    let sim = simulator_digest(leader_a_pos, leader_b_pos);
    println!("[5/5] FedAvg combine: real digest {real:#018x}, simulator {sim:#018x}");
    assert_eq!(
        real, sim,
        "real-network aggregate diverged from the simulator"
    );

    let mut total = NetStats::default();
    let mut reconnects = 0;
    for rt in hier.iter().flatten() {
        let s = rt.stats();
        reconnects += s.reconnects;
        total.frames_sent += s.frames_sent;
        total.bytes_sent += s.bytes_sent;
    }
    for rt in &sac {
        let s = rt.stats();
        total.frames_sent += s.frames_sent;
        total.bytes_sent += s.bytes_sent;
    }
    println!(
        "done: digest match; {} frames / {} bytes sent, {} reconnects after the crash",
        total.frames_sent, total.bytes_sent, reconnects
    );
}
