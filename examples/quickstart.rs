//! Quickstart: train a shared model across 9 peers with the two-layer
//! secure aggregation system, end to end, in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Nine peers are split into three subgroups of three. Every round each
//! peer trains on its private shard; subgroups combine their members'
//! models with fault-tolerant Secure Average Computation (2-out-of-3
//! additive secret sharing, so no peer ever reveals its raw model); the
//! FedAvg leader merges the subgroup aggregates weighted by sample count
//! and broadcasts the new global model.

use p2pfl::system::{SystemKind, TwoLayerConfig, TwoLayerSystem};
use p2pfl_fed::{Client, LocalTrainConfig};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_secagg::ShareScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const PEERS: usize = 9;
    const ROUNDS: usize = 40;

    // 1. Data: a synthetic 10-class problem, split IID across the peers.
    let (train, test) = train_test_split(&features_like(32, PEERS * 80 + 400, 7), PEERS * 80);
    let shards = partition_dataset(&train, PEERS, Partition::Iid, 8);

    // 2. Peers: each holds a private shard and an MLP.
    let mut rng = StdRng::seed_from_u64(9);
    let clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| Client::new(i, mlp(&[32, 24, 10], &mut rng), shard, 3e-3, 10 + i as u64))
        .collect();

    // 3. The two-layer system: subgroups of 3 with 2-out-of-3 secret
    //    sharing (any single peer may drop out of a round).
    let cfg = TwoLayerConfig {
        kind: SystemKind::TwoLayer,
        subgroup_size: 3,
        threshold: Some(2),
        scheme: ShareScheme::Masked,
        fraction: 1.0,
        train: LocalTrainConfig {
            epochs: 1,
            batch_size: 32,
        },
        seed: 11,
        dp: None,
        fed_layer_sac: false,
    };
    let eval = mlp(&[32, 24, 10], &mut rng);
    let mut system = TwoLayerSystem::new(clients, eval, cfg);

    println!("round  test_acc  test_loss  bytes/round");
    for record in system.run(ROUNDS, &test) {
        if record.round % 5 == 0 || record.round == 1 {
            println!(
                "{:>5}  {:>8.3}  {:>9.4}  {:>10}",
                record.round, record.test_accuracy, record.test_loss, record.bytes
            );
        }
    }
    println!(
        "\ntotal communication: {} bytes over {ROUNDS} rounds",
        system.log.bytes()
    );
    println!("per-phase breakdown:");
    for (phase, (msgs, bytes)) in system.log.phases() {
        println!("  {phase:<16} {msgs:>6} msgs  {bytes:>12} bytes");
    }
}
