//! A hospital consortium with strongly non-IID data — the workload class
//! the paper's introduction motivates (its P2P-FL ancestor BrainTorrent
//! targets medical applications).
//!
//! ```text
//! cargo run --release --example medical_consortium
//! ```
//!
//! Twelve "hospitals" each see mostly two disease classes (Non-IID 5%:
//! 95% of each site's data comes from its two specialties). No site will
//! upload raw models to a central server — secret-shared subgroup
//! aggregation means even a curious peer only ever sees masked shares —
//! and the run compares the privacy-preserving two-layer system against
//! the one-layer SAC baseline on both accuracy and bytes moved.

use p2pfl::experiment::final_accuracy;
use p2pfl::system::{SystemKind, TwoLayerConfig, TwoLayerSystem};
use p2pfl_fed::{Client, LocalTrainConfig};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_secagg::ShareScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SITES: usize = 12;
const ROUNDS: usize = 60;

fn build(kind: SystemKind, subgroup: usize) -> (TwoLayerSystem, p2pfl_ml::data::Dataset) {
    let (train, test) = train_test_split(&features_like(32, SITES * 90 + 500, 100), SITES * 90);
    // Non-IID(5%): each site concentrates on two "specialty" classes.
    let shards = partition_dataset(&train, SITES, Partition::NON_IID_5, 101);
    let mut rng = StdRng::seed_from_u64(102);
    let clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| Client::new(i, mlp(&[32, 32, 10], &mut rng), shard, 3e-3, 103 + i as u64))
        .collect();
    let eval = mlp(&[32, 32, 10], &mut rng);
    let cfg = TwoLayerConfig {
        kind,
        subgroup_size: subgroup,
        threshold: Some(subgroup.saturating_sub(1).max(1)),
        scheme: ShareScheme::Masked,
        fraction: 1.0,
        train: LocalTrainConfig {
            epochs: 1,
            batch_size: 30,
        },
        seed: 104,
        dp: None,
        fed_layer_sac: false,
    };
    (TwoLayerSystem::new(clients, eval, cfg), test)
}

fn main() {
    println!("== hospital consortium: {SITES} sites, Non-IID(5%) specialties ==\n");

    let (mut two_layer, test) = build(SystemKind::TwoLayer, 4);
    let two_records = two_layer.run(ROUNDS, &test);
    let (mut baseline, _) = build(SystemKind::OriginalSac, SITES);
    let base_records = baseline.run(ROUNDS, &test);

    let acc2 = final_accuracy(&p2pfl::experiment::Series {
        label: "two-layer".into(),
        records: two_records.clone(),
    });
    let acc1 = final_accuracy(&p2pfl::experiment::Series {
        label: "baseline".into(),
        records: base_records,
    });

    println!("final accuracy  two-layer (n=4, k=3): {acc2:.3}");
    println!("final accuracy  one-layer SAC:        {acc1:.3}");
    println!();
    let b2 = two_layer.log.bytes();
    let b1 = baseline.log.bytes();
    println!("bytes moved     two-layer: {b2:>14}");
    println!("bytes moved     baseline:  {b1:>14}");
    println!("communication reduction: {:.2}x", b1 as f64 / b2 as f64);
    println!();
    println!("privacy: every cross-site transfer below is a masked share or a");
    println!("SAC subtotal — no site's raw model ever leaves the machine:");
    for (phase, (msgs, bytes)) in two_layer.log.phases() {
        println!("  {phase:<16} {msgs:>6} msgs  {bytes:>12} bytes");
    }

    // A site drops mid-round: the k-out-of-n subgroup still aggregates.
    println!("\n-- site 5 crashes after sharing this round --");
    two_layer.inject_dropouts(&[(5, p2pfl_secagg::DropPhase::AfterShare)]);
    let rec = two_layer.run_round(ROUNDS + 1, &test);
    println!(
        "round {} still used {}/{} subgroups, accuracy {:.3}",
        rec.round,
        rec.groups_used,
        two_layer.groups().len(),
        rec.test_accuracy
    );
}
