//! An edge-device fleet with stragglers and deep hierarchy — exercising
//! the fraction-p timeout policy (Figs. 8–9) and the X-layer
//! generalization (Sec. VII-C).
//!
//! ```text
//! cargo run --release --example edge_fleet
//! ```
//!
//! Twenty battery-powered devices train in subgroups of five. Half the
//! subgroups are "slow" each round — the FedAvg leader times them out
//! rather than stalling (p = 0.5) — and the run shows the accuracy cost
//! of that policy. The second part scales the same fleet shape to a
//! 3-layer aggregation tree and compares measured bytes against the
//! paper's Eq. 10.

use p2pfl::cost::{gigabits, multilayer_units_eq10, sac_baseline_units, ModelSize};
use p2pfl::experiment::{final_accuracy, fraction_sweep, Series, SweepSpec};
use p2pfl::multilayer::MultilayerTree;
use p2pfl_ml::data::Partition;
use p2pfl_secagg::{ShareScheme, WeightVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== part 1: stragglers (N = 20, n = 5, p = 0.5 vs 1.0) ==\n");
    let spec = SweepSpec {
        n_total: 20,
        rounds: 60,
        seed: 7,
        ..SweepSpec::default()
    };
    let series: Vec<Series> = fraction_sweep(
        &spec,
        5,
        &[0.5, 1.0],
        &[Partition::Iid, Partition::NON_IID_5],
    );
    for pair in series.chunks(2) {
        let half = &pair[0];
        let full = &pair[1];
        let (a_half, a_full) = (final_accuracy(half), final_accuracy(full));
        let dist = full.label.split_whitespace().last().unwrap();
        println!(
            "{dist:<14} p=1.0: {a_full:.3}   p=0.5: {a_half:.3}   gap {:+.3}",
            a_full - a_half
        );
        let b_half: u64 = half.records.iter().map(|r| r.bytes).sum();
        let b_full: u64 = full.records.iter().map(|r| r.bytes).sum();
        println!(
            "{:<14} bytes: p=1.0 {b_full}, p=0.5 {b_half} ({:.0}% saved waiting on stragglers)",
            "",
            100.0 * (1.0 - b_half as f64 / b_full as f64)
        );
    }
    println!("\npaper: average p=0.5 vs p=1 accuracy gap is 2.18% — timing out");
    println!("slow subgroups is safe, and rounds never stall on a straggler.\n");

    println!("== part 2: deep hierarchy (X-layer aggregation, Sec. VII-C) ==\n");
    let mut rng = StdRng::seed_from_u64(11);
    let model = ModelSize { params: 20_000 };
    println!("degree n = 3 tree, SAC at every layer:");
    println!("layers  peers  measured_bytes  eq10_bytes  vs one-layer SAC");
    for layers in 1..=4usize {
        let tree = MultilayerTree::build(3, layers);
        let peers = tree.total_peers();
        let models: Vec<WeightVector> = (0..peers)
            .map(|_| WeightVector::random(model.params as usize, 0.5, &mut rng))
            .collect();
        let (avg, log) = tree.aggregate(&models, ShareScheme::Masked, &mut rng);
        assert!(avg.is_finite());
        let eq10 = multilayer_units_eq10(3, layers) * model.bytes() as f64;
        let sac = sac_baseline_units(peers) * model.bytes() as f64;
        println!(
            "{layers:>6}  {peers:>5}  {:>14}  {:>10.0}  {:>8.2}x cheaper",
            log.bytes(),
            eq10,
            sac / log.bytes() as f64
        );
    }
    println!(
        "\ncommunication stays O(nN) at any depth; at the Fig. 5 CNN size a\n\
         4-layer, 45-peer fleet would move {:.1} Gb per round instead of the\n\
         one-layer SAC's {:.1} Gb.",
        gigabits(multilayer_units_eq10(3, 4) * ModelSize::PAPER_CNN.bits()),
        gigabits(
            sac_baseline_units(MultilayerTree::build(3, 4).total_peers())
                * ModelSize::PAPER_CNN.bits()
        ),
    );
}
