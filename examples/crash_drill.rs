//! Crash drill: the full Raft-backed system under fire.
//!
//! ```text
//! cargo run --release --example crash_drill
//! ```
//!
//! Runs the integrated system — two-layer Raft on the discrete-event
//! network simulator electing every aggregation leader — and then kills,
//! in order: a follower, a subgroup leader, and finally the FedAvg leader
//! itself. Training continues throughout; the transcript shows which
//! leaders each round used and how the backend healed.

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ResilientConfig::small(42);
    let n_total = cfg.deployment.total_peers();

    let (train, test) = train_test_split(&features_like(16, n_total * 60 + 300, 1), n_total * 60);
    let shards = partition_dataset(&train, n_total, Partition::Iid, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(i, d)| Client::new(i, mlp(&[16, 24, 10], &mut rng), d, 5e-3, 4 + i as u64))
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);

    println!("building 3x3 deployment, waiting for Raft to stabilize...");
    let mut session = ResilientSession::new(cfg, clients, eval);
    println!("stable. FedAvg leader: {:?}\n", session.dep.fed_leader());

    let print = |tag: &str, r: &p2pfl::runner::ResilientRound| {
        println!(
            "round {:>2} [{tag:<22}] acc {:.3}  groups {}/3  leaders {:?}  fed {:?}",
            r.record.round, r.record.test_accuracy, r.record.groups_used, r.leaders, r.fed_leader
        );
    };

    for r in 1..=3 {
        let rec = session.run_round(r, &test);
        print("healthy", &rec);
    }

    // Drill 1: kill a follower. k-out-of-n SAC absorbs it silently.
    let leader0 = session.dep.sub_leader_of(0).unwrap();
    let follower = *session.dep.subgroups[0]
        .iter()
        .find(|&&m| m != leader0)
        .unwrap();
    println!("\n>>> crashing follower {follower}");
    session.crash(follower);
    for r in 4..=5 {
        let rec = session.run_round(r, &test);
        print("follower down", &rec);
    }

    // Drill 2: kill a subgroup leader. Raft elects a replacement, which
    // joins the FedAvg layer via membership change.
    let victim = session.dep.sub_leader_of(1).unwrap();
    println!("\n>>> crashing subgroup-1 leader {victim}");
    session.crash(victim);
    for r in 6..=8 {
        let rec = session.run_round(r, &test);
        print("sub leader down", &rec);
    }

    // Drill 3: kill the FedAvg leader (a double role). Both layers elect.
    let fed = session.dep.fed_leader().unwrap();
    println!("\n>>> crashing FedAvg leader {fed}");
    session.crash(fed);
    for r in 9..=12 {
        let rec = session.run_round(r, &test);
        print("fed leader down", &rec);
    }

    // Recovery: restart everyone who died.
    println!("\n>>> restarting {follower}, {victim}, {fed}");
    session.restart(follower);
    session.restart(victim);
    session.restart(fed);
    for r in 13..=15 {
        let rec = session.run_round(r, &test);
        print("all restarted", &rec);
    }

    println!("\naggregation traffic: {} bytes", session.log.bytes());
    let raft = session.dep.sim.metrics().total();
    println!(
        "raft control traffic: {} msgs, {} bytes",
        raft.msgs, raft.bytes
    );
}
