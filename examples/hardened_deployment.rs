//! The hardened configuration: every optional privacy/robustness feature
//! switched on at once —
//!
//! * k-out-of-n fault-tolerant SAC in the subgroups (paper Alg. 4),
//! * SAC *between* the subgroup leaders too, instead of plain FedAvg
//!   (the "stronger privacy in the higher layer" variant of Sec. IV-D),
//! * per-peer differential privacy (clipping + Gaussian mechanism),
//!
//! and, separately, the exact fixed-point ring backend and the
//! Bonawitz-style pairwise-mask baseline for comparison.
//!
//! ```text
//! cargo run --release --example hardened_deployment
//! ```

use p2pfl::cost::{two_layer_units_eq4, two_layer_units_fed_sac};
use p2pfl::system::{SystemKind, TwoLayerConfig, TwoLayerSystem};
use p2pfl_fed::{Client, LocalTrainConfig};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_secagg::dp::GaussianDp;
use p2pfl_secagg::{fixed, pairwise, ShareScheme, WeightVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PEERS: usize = 9;
const ROUNDS: usize = 50;

fn main() {
    let (train, test) = train_test_split(&features_like(32, PEERS * 80 + 400, 7), PEERS * 80);
    let shards = partition_dataset(&train, PEERS, Partition::NON_IID_5, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(i, s)| Client::new(i, mlp(&[32, 24, 10], &mut rng), s, 3e-3, 10 + i as u64))
        .collect();
    let eval = mlp(&[32, 24, 10], &mut rng);

    let cfg = TwoLayerConfig {
        kind: SystemKind::TwoLayer,
        subgroup_size: 3,
        threshold: Some(2),          // any one peer per subgroup may drop
        scheme: ShareScheme::Masked, // real secrecy for the shares
        fraction: 1.0,
        train: LocalTrainConfig {
            epochs: 1,
            batch_size: 32,
        },
        seed: 11,
        // (0.8, 1e-5)-DP per round, updates clipped to L2 <= 20.
        dp: Some(GaussianDp {
            epsilon: 0.8,
            delta: 1e-5,
            sensitivity: 20.0,
        }),
        fed_layer_sac: true, // SAC among the leaders as well
    };
    let mut system = TwoLayerSystem::new(clients, eval, cfg);

    println!("== hardened two-layer deployment: k-of-n + fed-layer SAC + DP ==\n");
    let records = system.run(ROUNDS, &test);
    let last = records.last().unwrap();
    println!(
        "rounds: {ROUNDS}   final accuracy: {:.3}   final loss: {:.3}",
        last.test_accuracy, last.test_loss
    );
    println!("(DP noise costs some accuracy — that is the privacy/utility trade)");

    println!(
        "\nupper-layer SAC premium: {:.0} vs {:.0} model-units per round (closed form)",
        two_layer_units_fed_sac(3, 3),
        two_layer_units_eq4(3, 3)
    );
    println!(
        "measured aggregation traffic: {} bytes over {ROUNDS} rounds",
        system.log.bytes()
    );

    // ------------------------------------------------------------------
    println!("\n== alternative share backends on the same 9 models ==\n");
    let models: Vec<WeightVector> = (0..PEERS)
        .map(|i| WeightVector::random(658, 0.5, &mut StdRng::seed_from_u64(50 + i as u64)))
        .collect();
    let plain = WeightVector::mean(models.iter());

    let mut rng = StdRng::seed_from_u64(60);
    let exact = fixed::secure_average_exact(&models, &mut rng);
    println!(
        "fixed-point ring SAC   error vs plain mean: {:.2e}  (exact, info-theoretic hiding)",
        exact.linf_distance(&plain)
    );

    let seeds = pairwise::PairwiseSeeds::deal(PEERS, &mut rng);
    let subs: Vec<(usize, WeightVector)> = (0..PEERS)
        .map(|i| (i, pairwise::masked_update(&seeds, i, &models[i])))
        .collect();
    let bona = pairwise::aggregate(&seeds, &subs, &[]);
    println!(
        "pairwise-mask baseline error vs plain mean: {:.2e}  (Bonawitz-style, needs a server)",
        bona.linf_distance(&plain)
    );
    println!("\nboth agree with the two-layer SAC result; the two-layer system is the");
    println!("only one of the three that needs no server and no pairwise key setup.");
}
